use crate::{EncMask, PixelStatus};
use serde::{Deserialize, Serialize};

/// The per-row offset table (paper §3.3): entry `y` counts the encoded
/// (`R`) pixels in all rows strictly above `y`, so the decoder can jump
/// to a row's span of the packed encoded frame in O(1).
///
/// A final entry equal to the total encoded pixel count is appended so
/// `row_span` needs no special casing for the last row.
///
/// # Example
///
/// ```
/// use rpr_core::RowOffsets;
///
/// // Rows containing 3, 0, and 2 encoded pixels.
/// let offsets = RowOffsets::from_row_counts(&[3, 0, 2]);
/// assert_eq!(offsets.offset_of_row(0), 0);
/// assert_eq!(offsets.offset_of_row(2), 3);
/// assert_eq!(offsets.row_span(2), 3..5);
/// assert_eq!(offsets.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowOffsets {
    /// `offsets[y]` = encoded pixels before row `y`; length = rows + 1.
    offsets: Vec<u32>,
}

impl RowOffsets {
    /// Builds the table from the number of encoded pixels in each row.
    pub fn from_row_counts(counts: &[u32]) -> Self {
        Self::from_row_counts_in(counts, Vec::new())
    }

    /// [`RowOffsets::from_row_counts`] into a recycled buffer (cleared
    /// first), so a [`crate::BufferPool`] can recycle the allocation.
    pub fn from_row_counts_in(counts: &[u32], mut offsets: Vec<u32>) -> Self {
        offsets.clear();
        offsets.reserve(counts.len() + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &c in counts {
            acc += c;
            offsets.push(acc);
        }
        RowOffsets { offsets }
    }

    /// Number of rows covered.
    pub fn rows(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Encoded pixels before row `y`.
    ///
    /// # Panics
    ///
    /// Panics when `y > rows()`.
    #[inline]
    pub fn offset_of_row(&self, y: u32) -> u32 {
        self.offsets[y as usize]
    }

    /// The encoded-frame index range holding row `y`'s pixels.
    ///
    /// # Panics
    ///
    /// Panics when `y >= rows()`.
    #[inline]
    pub fn row_span(&self, y: u32) -> std::ops::Range<u32> {
        self.offsets[y as usize]..self.offsets[y as usize + 1]
    }

    /// Total number of encoded pixels.
    pub fn total(&self) -> u32 {
        // rpr-check: allow(panic-reach): every constructor stores rows+1 >= 1 entries, so last() is always Some
        *self.offsets.last().expect("offsets always non-empty")
    }

    /// The raw cumulative offset entries (length = rows + 1, first
    /// entry 0 for tables built by [`RowOffsets::from_row_counts`]).
    pub fn as_slice(&self) -> &[u32] {
        &self.offsets
    }

    /// Reassembles a table from raw cumulative entries — the shape a
    /// corrupted or tampered table read back from DRAM can have. No
    /// monotonicity or leading-zero invariant is enforced (that is
    /// [`crate::EncodedFrame::validate`]'s job); an empty vector is
    /// normalized to the canonical empty table `[0]`.
    pub fn from_raw_offsets(mut offsets: Vec<u32>) -> Self {
        if offsets.is_empty() {
            offsets.push(0);
        }
        RowOffsets { offsets }
    }

    /// Dismantles the table into its raw entry vector, so a
    /// [`crate::BufferPool`] can recycle the allocation.
    pub fn into_raw_offsets(self) -> Vec<u32> {
        self.offsets
    }

    /// True when the cumulative entries never decrease — the invariant
    /// that keeps every [`RowOffsets::row_span`] a forward range.
    pub fn is_monotonic(&self) -> bool {
        self.offsets.windows(2).all(|w| w[0] <= w[1])
    }

    /// Byte size of the table in DRAM (4 bytes per row, matching the
    /// paper's metadata accounting; the sentinel entry is an
    /// implementation convenience and is not charged).
    pub fn size_bytes(&self) -> usize {
        (self.offsets.len() - 1) * std::mem::size_of::<u32>()
    }

    /// True when every row is empty.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

/// The complete decoder-facing metadata for one encoded frame: the
/// per-row offsets and the [`EncMask`] (paper §3.3). Stored alongside
/// the encoded framebuffer in DRAM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameMetadata {
    /// Per-row offsets into the packed encoded frame.
    pub row_offsets: RowOffsets,
    /// Two-bit sampling status per original pixel.
    pub mask: EncMask,
}

impl FrameMetadata {
    /// Builds metadata from a finished mask by counting `R` pixels per
    /// row. Primarily for tests; the encoder produces both in one pass.
    pub fn from_mask(mask: EncMask) -> Self {
        let counts: Vec<u32> = (0..mask.height())
            .map(|y| {
                mask.row_iter(y).filter(|&s| s == PixelStatus::Regional).count() as u32
            })
            .collect();
        FrameMetadata { row_offsets: RowOffsets::from_row_counts(&counts), mask }
    }

    /// Total metadata footprint in bytes (mask + offset table), the
    /// overhead the paper quotes as ~8 % of a 1080p frame.
    pub fn size_bytes(&self) -> usize {
        self.mask.size_bytes() + self.row_offsets.size_bytes()
    }

    /// Consistency check: the offset table's totals must match the
    /// mask's per-row `R` counts. The encoder maintains this invariant;
    /// property tests assert it.
    pub fn is_consistent(&self) -> bool {
        if self.row_offsets.rows() != self.mask.height() {
            return false;
        }
        (0..self.mask.height()).all(|y| {
            let expected =
                self.mask.row_iter(y).filter(|&s| s == PixelStatus::Regional).count() as u32;
            self.row_offsets.row_span(y).len() as u32 == expected
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_accumulate() {
        let o = RowOffsets::from_row_counts(&[2, 0, 5, 1]);
        assert_eq!(o.rows(), 4);
        assert_eq!(o.offset_of_row(0), 0);
        assert_eq!(o.offset_of_row(1), 2);
        assert_eq!(o.offset_of_row(3), 7);
        assert_eq!(o.total(), 8);
    }

    #[test]
    fn row_span_covers_row_pixels() {
        let o = RowOffsets::from_row_counts(&[2, 0, 5]);
        assert_eq!(o.row_span(0), 0..2);
        assert_eq!(o.row_span(1), 2..2);
        assert_eq!(o.row_span(2), 2..7);
    }

    #[test]
    fn empty_offsets() {
        let o = RowOffsets::from_row_counts(&[]);
        assert_eq!(o.rows(), 0);
        assert!(o.is_empty());
        assert_eq!(o.size_bytes(), 0);
    }

    #[test]
    fn size_bytes_is_four_per_row() {
        let o = RowOffsets::from_row_counts(&[1; 1080]);
        assert_eq!(o.size_bytes(), 4 * 1080);
    }

    #[test]
    fn metadata_from_mask_is_consistent() {
        let mut mask = EncMask::new(6, 3);
        mask.set(0, 0, PixelStatus::Regional);
        mask.set(5, 0, PixelStatus::Regional);
        mask.set(2, 2, PixelStatus::Regional);
        mask.set(3, 2, PixelStatus::Strided);
        let meta = FrameMetadata::from_mask(mask);
        assert!(meta.is_consistent());
        assert_eq!(meta.row_offsets.total(), 3);
        assert_eq!(meta.row_offsets.row_span(0), 0..2);
        assert_eq!(meta.row_offsets.row_span(1), 2..2);
    }

    #[test]
    fn inconsistency_detected() {
        let mut mask = EncMask::new(4, 2);
        mask.set(0, 0, PixelStatus::Regional);
        let bad = FrameMetadata {
            row_offsets: RowOffsets::from_row_counts(&[0, 0]),
            mask,
        };
        assert!(!bad.is_consistent());
    }

    #[test]
    fn metadata_overhead_at_1080p_is_about_8_percent_of_rgb() {
        let meta = FrameMetadata::from_mask(EncMask::new(1920, 1080));
        let rgb_frame_bytes = 1920 * 1080 * 3;
        let overhead = meta.size_bytes() as f64 / rgb_frame_bytes as f64;
        assert!(overhead > 0.07 && overhead < 0.09, "overhead {overhead}");
    }
}

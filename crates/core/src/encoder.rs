//! The rhythmic pixel encoder (paper §4.1).
//!
//! The encoder intercepts the raster-scan pixel stream coming out of the
//! ISP and, guided by the developer's region labels, forwards only the
//! pixels that match some region's stride and skip specification. It is
//! organized exactly like the paper's Fig. 5:
//!
//! * a [`Sequencer`] tracks the current row and pixel location;
//! * once per row, the [`RoiSelector`] shortlists the y-sorted region
//!   list down to the regions whose y-range covers the row;
//! * once per pixel, the [`ComparisonEngine`] checks the shortlist for
//!   x-range and stride membership (with run-length reuse inside a
//!   matched region — §4.1.1's spatial-locality optimization);
//! * a sampler/counter emits the `R` pixels, the per-row offsets, and
//!   the EncMask.
//!
//! Two comparison-engine organizations are modeled (the paper's Table 5
//! ablation): the scalable *hybrid* design that uses the shortlist, and
//! the naive *parallel* design that compares every pixel against every
//! region.

use crate::kernels;
use crate::{
    BufferPool, EncMask, EncodedFrame, FrameMetadata, PixelStatus, RegionLabel, RegionList,
    RowOffsets,
};
use rpr_frame::GrayFrame;
use serde::{Deserialize, Serialize};

/// Which comparison-engine organization to model (paper Table 5).
///
/// Both produce bit-identical output; they differ in the amount of
/// comparison work the stats attribute to the design, which `rpr-hwsim`
/// turns into resource and power estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EngineKind {
    /// Row-level RoI shortlisting plus per-pixel checks against the
    /// shortlist only (the paper's scalable design).
    #[default]
    Hybrid,
    /// Every pixel compared against every region label in parallel —
    /// the strawman whose resource cost explodes with region count.
    Parallel,
}

/// Encoder configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Comparison-engine organization to account for.
    pub engine: EngineKind,
    /// Reuse a region-match verdict for the following `region width`
    /// pixels of the row (§4.1.1). Disabling this models a design
    /// without the spatial-locality optimization; output is unchanged,
    /// only the comparison counts differ.
    pub run_length_reuse: bool,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig { engine: EngineKind::Hybrid, run_length_reuse: true }
    }
}

/// Work and output counters accumulated across encoded frames.
///
/// `comparisons` models the number of region-comparison operations the
/// configured [`EngineKind`] would perform; the hybrid engine's count
/// shrinks dramatically on rows without regions, which is the §6.2
/// "work saving" claim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncoderStats {
    /// Frames encoded.
    pub frames: u64,
    /// Pixels ingested from the sensor stream.
    pub pixels_in: u64,
    /// Pixels stored to the encoded frame (`R`).
    pub pixels_out: u64,
    /// Per-status pixel counts indexed by the 2-bit encoding `[N, St, Sk, R]`.
    pub status_counts: [u64; 4],
    /// Region-comparison operations performed by the modeled engine.
    pub comparisons: u64,
    /// Sum of per-row shortlist lengths (to derive the average).
    pub shortlist_len_sum: u64,
    /// Rows whose shortlist was empty (comparison skipped entirely).
    pub rows_skipped: u64,
    /// Total rows processed.
    pub rows_total: u64,
    /// Encoded payload bytes emitted.
    pub payload_bytes: u64,
    /// Metadata bytes emitted (EncMask + row offsets).
    pub metadata_bytes: u64,
}

impl EncoderStats {
    /// Fraction of ingested pixels that were stored.
    pub fn keep_ratio(&self) -> f64 {
        if self.pixels_in == 0 {
            0.0
        } else {
            self.pixels_out as f64 / self.pixels_in as f64
        }
    }

    /// Average shortlist length over all processed rows.
    pub fn avg_shortlist_len(&self) -> f64 {
        if self.rows_total == 0 {
            0.0
        } else {
            self.shortlist_len_sum as f64 / self.rows_total as f64
        }
    }

    /// Comparisons per ingested pixel — the work-saving metric for the
    /// hybrid-vs-parallel ablation.
    pub fn comparisons_per_pixel(&self) -> f64 {
        if self.pixels_in == 0 {
            0.0
        } else {
            self.comparisons as f64 / self.pixels_in as f64
        }
    }
}

/// Tracks the raster position of the streaming pixel input (paper
/// Fig. 5's "Sequencer").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sequencer {
    width: u32,
    height: u32,
    x: u32,
    y: u32,
}

impl Sequencer {
    /// Creates a sequencer for a `width x height` frame.
    pub fn new(width: u32, height: u32) -> Self {
        Sequencer { width, height, x: 0, y: 0 }
    }

    /// Current column.
    pub fn x(&self) -> u32 {
        self.x
    }

    /// Current row.
    pub fn y(&self) -> u32 {
        self.y
    }

    /// True when the position is at the start of a row.
    pub fn at_row_start(&self) -> bool {
        self.x == 0
    }

    /// True when every pixel of the frame has been consumed.
    pub fn frame_done(&self) -> bool {
        self.y >= self.height
    }

    /// Advances to the next raster position.
    pub fn advance(&mut self) {
        self.x += 1;
        if self.x >= self.width {
            self.x = 0;
            self.y += 1;
        }
    }

    /// Resets to the frame origin.
    pub fn reset(&mut self) {
        self.x = 0;
        self.y = 0;
    }
}

/// Row-level search-space reduction (paper Fig. 5's "RoI selector").
///
/// Regions are y-sorted by [`RegionList`]; the selector sweeps rows in
/// ascending order, adding regions whose top edge has been reached and
/// retiring regions whose bottom edge has passed, so the per-row
/// shortlist costs amortized O(1) per region per frame.
#[derive(Debug, Clone)]
pub struct RoiSelector {
    /// Indices into the region list, in insertion (y-sorted) order.
    next: usize,
    /// Currently live region indices for the most recent row.
    active: Vec<usize>,
}

impl RoiSelector {
    /// Creates a selector positioned before row 0.
    pub fn new() -> Self {
        RoiSelector { next: 0, active: Vec::new() }
    }

    /// Advances to `row` (must be called with non-decreasing rows) and
    /// returns the shortlist of region indices live on that row.
    pub fn advance_to_row<'a>(&'a mut self, regions: &RegionList, row: u32) -> &'a [usize] {
        let labels = regions.labels();
        while self.next < labels.len() && labels[self.next].y <= row {
            self.active.push(self.next);
            self.next += 1;
        }
        self.active.retain(|&i| labels[i].contains_row(row));
        &self.active
    }

    /// Restarts the sweep for a new frame.
    pub fn reset(&mut self) {
        self.next = 0;
        self.active.clear();
    }
}

impl Default for RoiSelector {
    fn default() -> Self {
        RoiSelector::new()
    }
}

/// Per-pixel membership and rhythm classification (paper Fig. 5's
/// "Comparison engine").
#[derive(Debug, Clone, Copy, Default)]
pub struct ComparisonEngine;

impl ComparisonEngine {
    /// Classifies pixel `(x, y)` on frame `frame_idx` against a single
    /// region, assuming nothing about membership.
    #[inline]
    pub fn classify_one(
        region: &RegionLabel,
        x: u32,
        y: u32,
        frame_idx: u64,
    ) -> PixelStatus {
        if !region.contains(x, y) {
            return PixelStatus::NonRegional;
        }
        if !region.is_sampled_on(frame_idx) {
            return PixelStatus::Skipped;
        }
        if region.keeps_pixel(x, y) {
            PixelStatus::Regional
        } else {
            PixelStatus::Strided
        }
    }

    /// Classifies a pixel against a shortlist, returning the
    /// highest-priority status (R > St > Sk > N) plus the number of
    /// region comparisons performed.
    pub fn classify(
        regions: &RegionList,
        shortlist: &[usize],
        x: u32,
        y: u32,
        frame_idx: u64,
    ) -> (PixelStatus, u64) {
        let labels = regions.labels();
        let mut best = PixelStatus::NonRegional;
        let mut comparisons = 0;
        for &i in shortlist {
            comparisons += 1;
            let status = Self::classify_one(&labels[i], x, y, frame_idx);
            best = best.max_priority(status);
            if best == PixelStatus::Regional {
                break; // nothing can outrank a stored pixel
            }
        }
        (best, comparisons)
    }
}

/// The rhythmic pixel encoder: whole-frame API used by the pipeline and
/// the experiment harness (paper §4.1).
///
/// # Example
///
/// ```
/// use rpr_core::{RegionLabel, RegionList, RhythmicEncoder};
/// use rpr_frame::Plane;
///
/// let frame = Plane::from_fn(32, 32, |x, _| x as u8);
/// let regions = RegionList::new(32, 32, vec![RegionLabel::new(0, 0, 8, 8, 2, 1)])?;
/// let mut enc = RhythmicEncoder::new(32, 32);
/// let encoded = enc.encode(&frame, 0, &regions);
/// assert_eq!(encoded.pixel_count(), 16); // 8x8 strided by 2
/// # Ok::<(), rpr_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RhythmicEncoder {
    width: u32,
    height: u32,
    config: EncoderConfig,
    stats: EncoderStats,
    /// Buffer source for the per-frame mask/payload/offset allocations;
    /// defaults to a private pool, share one via [`Self::with_pool`].
    pool: BufferPool,
    /// Persistent scratch reused across frames (zero-alloc steady
    /// state; see `crates/core/src/pool.rs`).
    selector: RoiSelector,
    row_pri: Vec<u8>,
    row_counts: Vec<u32>,
    label_px: Vec<u64>,
}

impl RhythmicEncoder {
    /// Creates an encoder for `width x height` frames with the default
    /// (hybrid, run-length-reuse) configuration.
    pub fn new(width: u32, height: u32) -> Self {
        Self::with_config(width, height, EncoderConfig::default())
    }

    /// Creates an encoder with an explicit configuration.
    pub fn with_config(width: u32, height: u32, config: EncoderConfig) -> Self {
        Self::with_pool(width, height, config, BufferPool::new())
    }

    /// Creates an encoder drawing its per-frame buffers from `pool`.
    /// Share the pool with the decoder's [`crate::FrameHistory`] (or
    /// call [`crate::EncodedFrame::recycle`] yourself) to close the
    /// reuse loop: after warmup, encoding allocates nothing.
    pub fn with_pool(width: u32, height: u32, config: EncoderConfig, pool: BufferPool) -> Self {
        RhythmicEncoder {
            width,
            height,
            config,
            stats: EncoderStats::default(),
            pool,
            selector: RoiSelector::new(),
            row_pri: Vec::new(),
            row_counts: Vec::new(),
            label_px: Vec::new(),
        }
    }

    /// The pool this encoder draws per-frame buffers from.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Frame width the encoder was built for.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height the encoder was built for.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The active configuration.
    pub fn config(&self) -> EncoderConfig {
        self.config
    }

    /// Accumulated work/output statistics.
    pub fn stats(&self) -> &EncoderStats {
        &self.stats
    }

    /// Clears the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = EncoderStats::default();
    }

    /// Encodes one frame against `regions`, producing the packed
    /// encoded frame and its metadata in a single streaming pass.
    ///
    /// # Panics
    ///
    /// Panics when the frame or region-list geometry differs from the
    /// encoder's configured `width x height`.
    pub fn encode(
        &mut self,
        frame: &GrayFrame,
        frame_idx: u64,
        regions: &RegionList,
    ) -> EncodedFrame {
        assert_eq!(
            (frame.width(), frame.height()),
            (self.width, self.height),
            "frame geometry mismatch"
        );
        assert_eq!(
            (regions.width(), regions.height()),
            (self.width, self.height),
            "region list geometry mismatch"
        );

        // Disjoint field borrows: the selector's shortlist stays
        // borrowed across stats/scratch updates below.
        let RhythmicEncoder {
            width, height, config, stats, pool, selector, row_pri, row_counts, label_px,
        } = self;
        let (width, height, config) = (*width, *height, *config);

        let w = width as usize;
        let pixels_total = w * height as usize;
        let mut mask_bytes = pool.get_zeroed(pixels_total.div_ceil(4));
        let mut payload = pool.get_shared();
        // Unique by the pool's contract, so make_mut never clones; the
        // payload is gathered in place and sealed without a new
        // ref-count block.
        let pixels = std::sync::Arc::make_mut(&mut payload);
        row_counts.clear();
        selector.reset();
        row_pri.clear();
        row_pri.resize(w, 0);
        let labels = regions.labels();
        let all_regions = labels.len() as u64;

        // Per-region-label attribution is recorded only while tracing is
        // on; when it is off the single gate check here is the whole cost.
        let tracing = rpr_trace::is_enabled();
        let _span = if tracing {
            Some(rpr_trace::span(rpr_trace::names::ENCODE, "core").with_frame(frame_idx))
        } else {
            None
        };
        label_px.clear();
        if tracing {
            label_px.resize(labels.len(), 0);
        }

        for y in 0..height {
            let shortlist = selector.advance_to_row(regions, y);
            stats.rows_total += 1;
            stats.shortlist_len_sum += shortlist.len() as u64;

            // Account the comparison work of the modeled engine.
            stats.comparisons += match config.engine {
                EngineKind::Parallel => all_regions * u64::from(width),
                EngineKind::Hybrid => {
                    if shortlist.is_empty() {
                        // The selector's row check is the only work.
                        0
                    } else if config.run_length_reuse {
                        // One x-range check per shortlisted region per row:
                        // the verdict is reused across the region's width.
                        shortlist.len() as u64
                    } else {
                        shortlist.len() as u64 * u64::from(width)
                    }
                }
            };

            if shortlist.is_empty() {
                stats.rows_skipped += 1;
                stats.pixels_in += u64::from(width);
                stats.status_counts[PixelStatus::NonRegional.bits() as usize] +=
                    u64::from(width);
                row_counts.push(0);
                continue;
            }

            // Paint the row in *priority* space (one byte per pixel,
            // N=0 < Sk=1 < St=2 < R=3): the merge is a plain `u8::max`
            // sweep the compiler vectorizes, which the 2-bit wire
            // encoding cannot be (its bit order is not priority order).
            row_pri.fill(0);
            for &i in shortlist {
                let r = &labels[i];
                let sampled = r.is_sampled_on(frame_idx);
                let stride = r.stride.max(1);
                let y_aligned = (y - r.y).is_multiple_of(stride);
                let x0 = (r.x as usize).min(w);
                let x_end = (r.right().min(width) as usize).max(x0);
                let Some(span) = row_pri.get_mut(x0..x_end) else { continue };
                if !sampled {
                    for p in span.iter_mut() {
                        *p = (*p).max(1); // Skipped
                    }
                } else if !y_aligned {
                    for p in span.iter_mut() {
                        *p = (*p).max(2); // Strided
                    }
                } else {
                    for p in span.iter_mut() {
                        *p = (*p).max(2);
                    }
                    // Anchor columns; span starts at r.x, so step_by
                    // lands exactly on (x - r.x) % stride == 0.
                    for p in span.iter_mut().step_by(stride as usize) {
                        *p = 3; // Regional outranks every merge
                    }
                }
            }

            // Attribute stored pixels to the first shortlist label that
            // samples them (the label whose `R` won the priority merge).
            if tracing {
                for (x, &pri) in row_pri.iter().enumerate() {
                    if pri != 3 {
                        continue;
                    }
                    for &i in shortlist {
                        if ComparisonEngine::classify_one(&labels[i], x as u32, y, frame_idx)
                            == PixelStatus::Regional
                        {
                            if let Some(slot) = label_px.get_mut(i) {
                                *slot += 1;
                            }
                            break;
                        }
                    }
                }
            }

            // Sampler + counter, kernelized: histogram the row, pack the
            // mask 32 entries per u64 word, gather the `R` payload a run
            // at a time (crates/core/src/kernels.rs).
            let counts = kernels::count_priorities(row_pri);
            stats.status_counts[PixelStatus::NonRegional.bits() as usize] += counts[0];
            stats.status_counts[PixelStatus::Skipped.bits() as usize] += counts[1];
            stats.status_counts[PixelStatus::Strided.bits() as usize] += counts[2];
            stats.status_counts[PixelStatus::Regional.bits() as usize] += counts[3];
            kernels::pack_priority_row(&mut mask_bytes, y as usize * w, row_pri);
            let count = kernels::gather_regional(row_pri, frame.row(y), pixels);
            stats.pixels_in += u64::from(width);
            row_counts.push(u32::try_from(count).unwrap_or(u32::MAX));
        }

        if tracing {
            for (i, &px) in label_px.iter().enumerate() {
                if px > 0 {
                    let r = &labels[i];
                    rpr_trace::counter_for_region(
                        rpr_trace::names::ENCODER_LABEL_PX,
                        "core",
                        frame_idx,
                        i as u32,
                        r.stride,
                        r.skip,
                        px as f64,
                    );
                }
            }
        }

        let mask = EncMask::from_raw_bytes(width, height, mask_bytes)
            .unwrap_or_else(|| EncMask::new(width, height));
        let metadata = FrameMetadata {
            row_offsets: RowOffsets::from_row_counts_in(row_counts, pool.get_words()),
            mask,
        };
        stats.frames += 1;
        stats.pixels_out += metadata.row_offsets.total() as u64;
        stats.payload_bytes += metadata.row_offsets.total() as u64;
        stats.metadata_bytes += metadata.size_bytes() as u64;
        EncodedFrame::new_shared(width, height, frame_idx, payload, metadata)
    }
}

/// A pixel-at-a-time streaming encoder, the shape the hardware block
/// actually has: pixels are pushed in raster order as the sensor scans
/// them out, and the encoded frame materializes incrementally.
///
/// Produces output bit-identical to [`RhythmicEncoder::encode`]
/// (asserted by property tests); used by the cycle-level model in
/// `rpr-hwsim` and wherever per-pixel interleaving matters.
#[derive(Debug, Clone)]
pub struct StreamingEncoder {
    sequencer: Sequencer,
    selector: RoiSelector,
    regions: RegionList,
    frame_idx: u64,
    shortlist: Vec<usize>,
    mask: EncMask,
    pixels: Vec<u8>,
    row_counts: Vec<u32>,
    current_row_count: u32,
    width: u32,
    height: u32,
}

impl StreamingEncoder {
    /// Starts encoding frame `frame_idx` against `regions`.
    pub fn begin(width: u32, height: u32, frame_idx: u64, regions: RegionList) -> Self {
        assert_eq!((regions.width(), regions.height()), (width, height));
        StreamingEncoder {
            sequencer: Sequencer::new(width, height),
            selector: RoiSelector::new(),
            regions,
            frame_idx,
            shortlist: Vec::new(),
            mask: EncMask::new(width, height),
            pixels: Vec::new(),
            row_counts: Vec::new(),
            current_row_count: 0,
            width,
            height,
        }
    }

    /// Pushes the next raster-order pixel, returning its classification.
    ///
    /// # Panics
    ///
    /// Panics when more than `width * height` pixels are pushed.
    pub fn push(&mut self, value: u8) -> PixelStatus {
        assert!(!self.sequencer.frame_done(), "pushed past end of frame");
        let (x, y) = (self.sequencer.x(), self.sequencer.y());
        if self.sequencer.at_row_start() {
            self.shortlist = self.selector.advance_to_row(&self.regions, y).to_vec();
        }
        let (status, _) =
            ComparisonEngine::classify(&self.regions, &self.shortlist, x, y, self.frame_idx);
        if status != PixelStatus::NonRegional {
            self.mask.set(x, y, status);
        }
        if status == PixelStatus::Regional {
            self.pixels.push(value);
            self.current_row_count += 1;
        }
        self.sequencer.advance();
        if self.sequencer.at_row_start() || self.sequencer.frame_done() {
            self.row_counts.push(self.current_row_count);
            self.current_row_count = 0;
        }
        status
    }

    /// True when the whole frame has been pushed.
    pub fn is_complete(&self) -> bool {
        self.sequencer.frame_done()
    }

    /// Finalizes the frame.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `width * height` pixels were pushed.
    pub fn finish(self) -> EncodedFrame {
        assert!(self.sequencer.frame_done(), "frame is incomplete");
        let metadata = FrameMetadata {
            row_offsets: RowOffsets::from_row_counts(&self.row_counts),
            mask: self.mask,
        };
        EncodedFrame::new(self.width, self.height, self.frame_idx, self.pixels, metadata)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegionLabel;
    use rpr_frame::Plane;

    fn gradient(w: u32, h: u32) -> GrayFrame {
        Plane::from_fn(w, h, |x, y| (x * 7 + y * 13) as u8)
    }

    #[test]
    fn sequencer_walks_raster_order() {
        let mut s = Sequencer::new(3, 2);
        let mut seen = Vec::new();
        while !s.frame_done() {
            seen.push((s.x(), s.y()));
            s.advance();
        }
        assert_eq!(seen, vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn roi_selector_tracks_live_regions() {
        let list = RegionList::new(
            100,
            100,
            vec![
                RegionLabel::new(0, 10, 10, 5, 1, 1),
                RegionLabel::new(0, 12, 10, 20, 1, 1),
                RegionLabel::new(0, 50, 10, 10, 1, 1),
            ],
        )
        .unwrap();
        let mut sel = RoiSelector::new();
        assert!(sel.advance_to_row(&list, 0).is_empty());
        assert_eq!(sel.advance_to_row(&list, 10).len(), 1);
        assert_eq!(sel.advance_to_row(&list, 13).len(), 2);
        assert_eq!(sel.advance_to_row(&list, 20).len(), 1);
        assert_eq!(sel.advance_to_row(&list, 55).len(), 1);
        assert!(sel.advance_to_row(&list, 99).is_empty());
    }

    #[test]
    fn full_frame_region_keeps_everything() {
        let frame = gradient(16, 8);
        let mut enc = RhythmicEncoder::new(16, 8);
        let encoded = enc.encode(&frame, 0, &RegionList::full_frame(16, 8));
        assert_eq!(encoded.pixel_count(), 16 * 8);
        assert_eq!(encoded.pixels(), frame.as_slice());
        assert_eq!(enc.stats().keep_ratio(), 1.0);
    }

    #[test]
    fn empty_region_list_discards_everything() {
        let frame = gradient(16, 8);
        let mut enc = RhythmicEncoder::new(16, 8);
        let encoded = enc.encode(&frame, 0, &RegionList::empty(16, 8));
        assert_eq!(encoded.pixel_count(), 0);
        assert_eq!(enc.stats().rows_skipped, 8);
    }

    #[test]
    fn stride_keeps_one_pixel_per_block() {
        let frame = gradient(8, 8);
        let regions =
            RegionList::new(8, 8, vec![RegionLabel::new(0, 0, 8, 8, 2, 1)]).unwrap();
        let mut enc = RhythmicEncoder::new(8, 8);
        let encoded = enc.encode(&frame, 0, &regions);
        assert_eq!(encoded.pixel_count(), 16);
        let meta = encoded.metadata();
        assert_eq!(meta.mask.get(0, 0), PixelStatus::Regional);
        assert_eq!(meta.mask.get(1, 0), PixelStatus::Strided);
        assert_eq!(meta.mask.get(0, 1), PixelStatus::Strided);
        assert_eq!(meta.mask.get(2, 2), PixelStatus::Regional);
    }

    #[test]
    fn skip_marks_whole_region_skipped_off_phase() {
        let frame = gradient(8, 8);
        let regions =
            RegionList::new(8, 8, vec![RegionLabel::new(2, 2, 4, 4, 1, 2)]).unwrap();
        let mut enc = RhythmicEncoder::new(8, 8);
        let on = enc.encode(&frame, 0, &regions);
        assert_eq!(on.pixel_count(), 16);
        let off = enc.encode(&frame, 1, &regions);
        assert_eq!(off.pixel_count(), 0);
        assert_eq!(off.metadata().mask.get(3, 3), PixelStatus::Skipped);
        assert_eq!(off.metadata().mask.get(0, 0), PixelStatus::NonRegional);
    }

    #[test]
    fn overlapping_regions_store_pixel_once() {
        let frame = gradient(16, 16);
        let regions = RegionList::new(
            16,
            16,
            vec![
                RegionLabel::new(0, 0, 8, 8, 1, 1),
                RegionLabel::new(4, 4, 8, 8, 1, 1),
            ],
        )
        .unwrap();
        let mut enc = RhythmicEncoder::new(16, 16);
        let encoded = enc.encode(&frame, 0, &regions);
        // 64 + 64 - 16 overlap = 112 unique pixels.
        assert_eq!(encoded.pixel_count(), 112);
    }

    #[test]
    fn overlap_priority_prefers_regional() {
        // A strided region overlapping a full-res region: the full-res
        // region's R wins everywhere they overlap.
        let frame = gradient(8, 8);
        let regions = RegionList::new(
            8,
            8,
            vec![
                RegionLabel::new(0, 0, 8, 8, 4, 1), // sparse
                RegionLabel::new(0, 0, 4, 4, 1, 1), // dense corner
            ],
        )
        .unwrap();
        let mut enc = RhythmicEncoder::new(8, 8);
        let encoded = enc.encode(&frame, 0, &regions);
        let mask = &encoded.metadata().mask;
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(mask.get(x, y), PixelStatus::Regional);
            }
        }
        // Outside the dense corner the sparse grid applies.
        assert_eq!(mask.get(4, 0), PixelStatus::Regional);
        assert_eq!(mask.get(5, 0), PixelStatus::Strided);
    }

    #[test]
    fn encoded_pixels_preserve_raster_order() {
        let frame = gradient(8, 4);
        let regions = RegionList::new(
            8,
            4,
            vec![
                RegionLabel::new(6, 0, 2, 1, 1, 1),
                RegionLabel::new(0, 0, 2, 1, 1, 1),
            ],
        )
        .unwrap();
        let mut enc = RhythmicEncoder::new(8, 4);
        let encoded = enc.encode(&frame, 0, &regions);
        let expected: Vec<u8> = [0u32, 1, 6, 7]
            .iter()
            .map(|&x| frame.get(x, 0).unwrap())
            .collect();
        assert_eq!(encoded.pixels(), &expected[..]);
    }

    #[test]
    fn metadata_is_always_consistent() {
        let frame = gradient(32, 32);
        let regions = RegionList::new(
            32,
            32,
            vec![
                RegionLabel::new(1, 3, 9, 7, 2, 1),
                RegionLabel::new(8, 8, 16, 16, 3, 2),
                RegionLabel::new(20, 0, 12, 32, 1, 3),
            ],
        )
        .unwrap();
        let mut enc = RhythmicEncoder::new(32, 32);
        for idx in 0..6 {
            let encoded = enc.encode(&frame, idx, &regions);
            assert!(encoded.metadata().is_consistent(), "frame {idx}");
        }
    }

    #[test]
    fn hybrid_engine_does_less_work_than_parallel() {
        let frame = gradient(64, 64);
        let regions = RegionList::new(
            64,
            64,
            (0..20)
                .map(|i| RegionLabel::new((i % 8) * 8, (i / 8) * 8, 6, 6, 1, 1))
                .collect(),
        )
        .unwrap();
        let mut hybrid = RhythmicEncoder::new(64, 64);
        hybrid.encode(&frame, 0, &regions);
        let mut parallel = RhythmicEncoder::with_config(
            64,
            64,
            EncoderConfig { engine: EngineKind::Parallel, run_length_reuse: true },
        );
        parallel.encode(&frame, 0, &regions);
        assert!(
            hybrid.stats().comparisons * 10 < parallel.stats().comparisons,
            "hybrid {} vs parallel {}",
            hybrid.stats().comparisons,
            parallel.stats().comparisons
        );
    }

    #[test]
    fn run_length_reuse_reduces_comparisons() {
        let frame = gradient(64, 64);
        let regions =
            RegionList::new(64, 64, vec![RegionLabel::new(0, 0, 64, 64, 1, 1)]).unwrap();
        let mut with = RhythmicEncoder::new(64, 64);
        with.encode(&frame, 0, &regions);
        let mut without = RhythmicEncoder::with_config(
            64,
            64,
            EncoderConfig { engine: EngineKind::Hybrid, run_length_reuse: false },
        );
        without.encode(&frame, 0, &regions);
        assert!(with.stats().comparisons < without.stats().comparisons);
    }

    #[test]
    fn streaming_matches_whole_frame_encoder() {
        let frame = gradient(24, 16);
        let regions = RegionList::new(
            24,
            16,
            vec![
                RegionLabel::new(0, 2, 10, 6, 2, 1),
                RegionLabel::new(8, 4, 12, 10, 1, 2),
                RegionLabel::new(3, 3, 6, 6, 3, 3),
            ],
        )
        .unwrap();
        for frame_idx in 0..4 {
            let mut whole = RhythmicEncoder::new(24, 16);
            let expected = whole.encode(&frame, frame_idx, &regions);
            let mut streaming =
                StreamingEncoder::begin(24, 16, frame_idx, regions.clone());
            for &px in frame.as_slice() {
                streaming.push(px);
            }
            assert!(streaming.is_complete());
            let actual = streaming.finish();
            assert_eq!(actual, expected, "frame {frame_idx}");
        }
    }

    #[test]
    fn stats_accumulate_across_frames() {
        let frame = gradient(8, 8);
        let regions =
            RegionList::new(8, 8, vec![RegionLabel::new(0, 0, 4, 4, 1, 1)]).unwrap();
        let mut enc = RhythmicEncoder::new(8, 8);
        enc.encode(&frame, 0, &regions);
        enc.encode(&frame, 1, &regions);
        assert_eq!(enc.stats().frames, 2);
        assert_eq!(enc.stats().pixels_in, 128);
        assert_eq!(enc.stats().pixels_out, 32);
        enc.reset_stats();
        assert_eq!(enc.stats().frames, 0);
    }

    #[test]
    fn tracing_attributes_pixels_to_labels() {
        // Distinctive stride/skip values so concurrent tests that also
        // encode (the trace sink is process-global) cannot collide.
        let frame = gradient(20, 20);
        let regions = RegionList::new(
            20,
            20,
            vec![
                RegionLabel::new(0, 0, 10, 10, 5, 1), // 4 px/frame
                RegionLabel::new(0, 12, 20, 5, 1, 7), // sampled on frame 0 only
            ],
        )
        .unwrap();
        let mut enc = RhythmicEncoder::new(20, 20);
        rpr_trace::enable();
        enc.encode(&frame, 0, &regions);
        enc.encode(&frame, 1, &regions);
        rpr_trace::disable();
        let events: Vec<_> = rpr_trace::drain()
            .into_iter()
            .filter(|e| {
                e.name == rpr_trace::names::ENCODER_LABEL_PX
                    && (e.provenance.stride == Some(5) || e.provenance.skip == Some(7))
            })
            .collect();
        let dense: Vec<_> =
            events.iter().filter(|e| e.provenance.stride == Some(5)).collect();
        assert_eq!(dense.len(), 2, "strided label sampled on both frames");
        assert!(dense.iter().all(|e| e.value == 4.0), "10x10 stride-5 keeps 2x2");
        let skipped: Vec<_> =
            events.iter().filter(|e| e.provenance.skip == Some(7)).collect();
        assert_eq!(skipped.len(), 1, "skip-7 label captures only frame 0");
        assert_eq!(skipped[0].value, 100.0);
        assert_eq!(skipped[0].provenance.label_id, Some(1));
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn encode_rejects_wrong_frame_size() {
        let frame = gradient(8, 8);
        let mut enc = RhythmicEncoder::new(16, 16);
        enc.encode(&frame, 0, &RegionList::full_frame(16, 16));
    }
}

//! The decoder design the paper *rejected* (§3.3): translating pixel
//! addresses by searching the region-label list instead of reading the
//! EncMask.
//!
//! "To service pixel requests …, the decoder will need to translate
//! pixel addresses … However, this would limit decoder scalability, as
//! the complexity of the search operation quickly grows with additional
//! regions. Thus, instead of using region labels, we propose an
//! alternative method that uses two forms of metadata …"
//!
//! [`LabelSearchDecoder`] implements the rejected design so the
//! scalability argument can be measured: it reconstructs frames from
//! the packed payload plus the *region labels* alone (never touching
//! the EncMask), re-deriving each pixel's status by comparing it
//! against the label list. Output is bit-identical to
//! [`crate::SoftwareDecoder`] in block-nearest mode (asserted by
//! property tests); cost grows with the number of regions, which the
//! `ablation_decoder_design` bench quantifies.

use crate::{
    ComparisonEngine, EncodedFrame, PixelStatus, RegionList, RoiSelector, SoftwareDecoder,
};
use rpr_frame::GrayFrame;
use serde::{Deserialize, Serialize};

/// Work counters for the label-search translation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelSearchStats {
    /// Frames decoded.
    pub frames: u64,
    /// Region comparisons performed during address translation.
    pub comparisons: u64,
    /// Pixels translated.
    pub pixels: u64,
}

impl LabelSearchStats {
    /// Comparisons per translated pixel — grows with region count,
    /// unlike the EncMask decoder's flat cost.
    pub fn comparisons_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.comparisons as f64 / self.pixels as f64
        }
    }
}

/// The region-label-searching decoder (the paper's rejected §3.3
/// alternative), kept for the scalability ablation.
#[derive(Debug, Clone)]
pub struct LabelSearchDecoder {
    width: u32,
    height: u32,
    inner: SoftwareDecoder,
    stats: LabelSearchStats,
}

impl LabelSearchDecoder {
    /// Creates a decoder for `width x height` frames.
    pub fn new(width: u32, height: u32) -> Self {
        LabelSearchDecoder {
            width,
            height,
            inner: SoftwareDecoder::new(width, height),
            stats: LabelSearchStats::default(),
        }
    }

    /// Accumulated translation-work counters.
    pub fn stats(&self) -> &LabelSearchStats {
        &self.stats
    }

    /// Decodes a frame from its payload and the *region labels*,
    /// ignoring the stored EncMask entirely: the mask is re-derived by
    /// classifying every pixel against the label list (with the same
    /// row-shortlisting the encoder uses — the comparison count still
    /// grows with the live-region density, which is the point of the
    /// ablation).
    ///
    /// # Panics
    ///
    /// Panics when the encoded frame, the region list, and the decoder
    /// geometry disagree, or when the payload does not match the
    /// classification (i.e. the labels are not the ones the frame was
    /// encoded with).
    pub fn decode(&mut self, encoded: &EncodedFrame, regions: &RegionList) -> GrayFrame {
        assert_eq!((encoded.width(), encoded.height()), (self.width, self.height));
        assert_eq!((regions.width(), regions.height()), (self.width, self.height));

        // Re-derive the mask from the labels (the expensive search the
        // hardware would perform per pixel request).
        let mut mask = crate::EncMask::new(self.width, self.height);
        let mut selector = RoiSelector::new();
        let frame_idx = encoded.frame_idx();
        let mut regional: u32 = 0;
        let mut row_counts = Vec::with_capacity(self.height as usize);
        for y in 0..self.height {
            let shortlist = selector.advance_to_row(regions, y).to_vec();
            let mut count = 0u32;
            for x in 0..self.width {
                let (status, comparisons) =
                    ComparisonEngine::classify(regions, &shortlist, x, y, frame_idx);
                self.stats.comparisons += comparisons;
                if status != PixelStatus::NonRegional {
                    mask.set(x, y, status);
                }
                if status == PixelStatus::Regional {
                    count += 1;
                }
            }
            regional += count;
            row_counts.push(count);
        }
        self.stats.pixels += u64::from(self.width) * u64::from(self.height);
        self.stats.frames += 1;
        assert_eq!(
            regional as usize,
            encoded.pixel_count(),
            "labels do not match the encoded payload"
        );

        // Assemble an equivalent encoded frame and reuse the reference
        // reconstruction path so outputs stay bit-identical.
        let metadata = crate::FrameMetadata {
            row_offsets: crate::RowOffsets::from_row_counts(&row_counts),
            mask,
        };
        let rebuilt = EncodedFrame::new(
            self.width,
            self.height,
            frame_idx,
            encoded.pixels().to_vec(),
            metadata,
        );
        self.inner.decode(&rebuilt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RegionLabel, RhythmicEncoder};
    use rpr_frame::Plane;

    fn frame() -> GrayFrame {
        Plane::from_fn(48, 40, |x, y| (x * 3 + y * 7) as u8)
    }

    fn regions(n: u32) -> RegionList {
        RegionList::new_lossy(
            48,
            40,
            (0..n)
                .map(|i| RegionLabel::new((i * 11) % 40, (i * 7) % 32, 8, 8, 1 + i % 3, 1 + i % 2))
                .collect(),
        )
    }

    #[test]
    fn output_matches_encmask_decoder() {
        let frame = frame();
        let list = regions(6);
        for idx in 0..3u64 {
            let mut enc = RhythmicEncoder::new(48, 40);
            let encoded = enc.encode(&frame, idx, &list);
            let mut reference = SoftwareDecoder::new(48, 40);
            let expected = reference.decode(&encoded);
            let mut label_search = LabelSearchDecoder::new(48, 40);
            let actual = label_search.decode(&encoded, &list);
            assert_eq!(actual, expected, "frame {idx}");
        }
    }

    #[test]
    fn comparison_cost_grows_with_regions() {
        let frame = frame();
        let mut costs = Vec::new();
        for n in [2u32, 8, 24] {
            let list = regions(n);
            let mut enc = RhythmicEncoder::new(48, 40);
            let encoded = enc.encode(&frame, 0, &list);
            let mut dec = LabelSearchDecoder::new(48, 40);
            dec.decode(&encoded, &list);
            costs.push(dec.stats().comparisons_per_pixel());
        }
        assert!(costs[0] < costs[1] && costs[1] < costs[2], "costs {costs:?}");
    }

    #[test]
    #[should_panic(expected = "labels do not match")]
    fn wrong_labels_are_detected() {
        let frame = frame();
        let list = regions(4);
        let mut enc = RhythmicEncoder::new(48, 40);
        let encoded = enc.encode(&frame, 0, &list);
        let other = regions(9);
        let mut dec = LabelSearchDecoder::new(48, 40);
        let _ = dec.decode(&encoded, &other);
    }
}

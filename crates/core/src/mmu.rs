//! The pixel memory management unit (paper §4.2.1).
//!
//! The PMMU plays the role a conventional MMU plays for virtual memory:
//! the vision application issues reads in the *decoded* frame address
//! space, and the PMMU translates each one into the DRAM address of the
//! right pixel of the right *encoded* frame — the current frame for `R`
//! pixels, one of the four most recent frames for temporally skipped
//! (`Sk`) pixels — or flags it for interpolation (`St`) or black fill
//! (`N`). Requests outside the decoded framebuffer are rejected by the
//! out-of-frame handler (modeling the bypass to standard memory access).

use crate::decoder::FrameHistory;
use crate::{CoreError, PixelStatus, Result};
use serde::{Deserialize, Serialize};

/// A read request from the vision application: `len` sequential pixels
/// of the decoded frame starting at `(x, y)`, in linear raster order
/// (the request may cross row boundaries, like an AXI burst).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PixelRequest {
    /// Start column.
    pub x: u32,
    /// Start row.
    pub y: u32,
    /// Number of sequential pixels requested.
    pub len: u32,
}

impl PixelRequest {
    /// A request for a single pixel.
    pub fn single(x: u32, y: u32) -> Self {
        PixelRequest { x, y, len: 1 }
    }

    /// A request for a whole row of a `width`-pixel frame.
    pub fn row(y: u32, width: u32) -> Self {
        PixelRequest { x: 0, y, len: width }
    }
}

/// Where the translated pixel lives, produced by the
/// [`TransactionAnalyzer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubRequestKind {
    /// `R` in the current frame: fetch `offset` in its encoded payload.
    CurrentFrame {
        /// Linear index into the encoded pixel payload.
        offset: u32,
    },
    /// `Sk` resolved to an `R` pixel of a recent encoded frame.
    HistoryFrame {
        /// How many frames back the hosting encoded frame is (1-based).
        frames_back: u8,
        /// Linear index into that frame's encoded payload.
        offset: u32,
    },
    /// `St` in the current frame: the FIFO sampling unit interpolates.
    Interpolate,
    /// `Sk` resolved to an `St` pixel of a recent frame: interpolate
    /// within that frame.
    HistoryInterpolate {
        /// How many frames back the hosting encoded frame is (1-based).
        frames_back: u8,
    },
    /// No data anywhere in the history window: black fill.
    Black,
}

/// One translated pixel sub-request (paper §4.2.1: base address, row and
/// column offset, and a tag index of which frame hosts the pixel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubRequest {
    /// Decoded-space column of the pixel this sub-request serves.
    pub x: u32,
    /// Decoded-space row of the pixel this sub-request serves.
    pub y: u32,
    /// Translation result.
    pub kind: SubRequestKind,
}

/// Counters describing where translated pixels were found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslationStats {
    /// Sub-requests served by the current encoded frame.
    pub intra_frame: u64,
    /// Sub-requests served by an older encoded frame.
    pub inter_frame: u64,
    /// Sub-requests resolved by interpolation (current or history).
    pub interpolated: u64,
    /// Sub-requests that produced black fill.
    pub black: u64,
}

impl TranslationStats {
    /// Total translated sub-requests.
    pub fn total(&self) -> u64 {
        self.intra_frame + self.inter_frame + self.interpolated + self.black
    }
}

/// Inspects the EncMasks of the recent frames and classifies each pixel
/// of a transaction into sub-requests (paper §4.2.1's "Transaction
/// Analyzer").
#[derive(Debug, Clone, Default)]
pub struct TransactionAnalyzer {
    stats: TranslationStats,
}

impl TransactionAnalyzer {
    /// Creates an analyzer with zeroed statistics.
    pub fn new() -> Self {
        TransactionAnalyzer::default()
    }

    /// Accumulated translation statistics.
    pub fn stats(&self) -> &TranslationStats {
        &self.stats
    }

    /// Clears the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = TranslationStats::default();
    }

    /// Translates one pixel against the history (index 0 = current
    /// frame). The history must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics when the history holds no frames.
    pub fn translate_pixel(&mut self, history: &FrameHistory, x: u32, y: u32) -> SubRequest {
        // rpr-check: allow(panic-reach): documented precondition — PixelMmu::analyze seeds the history before any translate
        let current = history.current().expect("translate_pixel needs a current frame");
        let kind = match current.metadata().mask.get(x, y) {
            PixelStatus::Regional => {
                self.stats.intra_frame += 1;
                let offset = current.metadata().row_offsets.offset_of_row(y)
                    + current.metadata().mask.regional_before(x, y);
                SubRequestKind::CurrentFrame { offset }
            }
            PixelStatus::Strided => {
                self.stats.interpolated += 1;
                SubRequestKind::Interpolate
            }
            PixelStatus::NonRegional => {
                self.stats.black += 1;
                SubRequestKind::Black
            }
            PixelStatus::Skipped => self.resolve_skipped(history, x, y),
        };
        SubRequest { x, y, kind }
    }

    /// Searches the older frames (newest first) for real data backing a
    /// temporally skipped pixel.
    fn resolve_skipped(&mut self, history: &FrameHistory, x: u32, y: u32) -> SubRequestKind {
        for back in 1..history.len() {
            let Some(frame) = history.get(back) else { continue };
            match frame.metadata().mask.get(x, y) {
                PixelStatus::Regional => {
                    self.stats.inter_frame += 1;
                    let offset = frame.metadata().row_offsets.offset_of_row(y)
                        + frame.metadata().mask.regional_before(x, y);
                    return SubRequestKind::HistoryFrame { frames_back: back as u8, offset };
                }
                PixelStatus::Strided => {
                    self.stats.interpolated += 1;
                    return SubRequestKind::HistoryInterpolate { frames_back: back as u8 };
                }
                // Skipped or NonRegional: keep looking further back.
                _ => continue,
            }
        }
        self.stats.black += 1;
        SubRequestKind::Black
    }
}

/// The pixel memory management unit: bounds checking (out-of-frame
/// handler) plus transaction analysis (paper §4.2.1, Fig. 6).
#[derive(Debug, Clone)]
pub struct PixelMmu {
    width: u32,
    height: u32,
    analyzer: TransactionAnalyzer,
}

impl PixelMmu {
    /// Creates a PMMU for a `width x height` decoded framebuffer.
    pub fn new(width: u32, height: u32) -> Self {
        PixelMmu { width, height, analyzer: TransactionAnalyzer::new() }
    }

    /// Decoded framebuffer width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Decoded framebuffer height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Accumulated translation statistics.
    pub fn stats(&self) -> &TranslationStats {
        self.analyzer.stats()
    }

    /// Clears the statistics.
    pub fn reset_stats(&mut self) {
        self.analyzer.reset_stats();
    }

    /// Validates and translates a whole transaction into per-pixel
    /// sub-requests.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfFrame`] when any requested pixel lies
    /// outside the decoded framebuffer address space (the hardware
    /// would bypass such a request to standard DRAM access).
    pub fn analyze(
        &mut self,
        history: &FrameHistory,
        request: PixelRequest,
    ) -> Result<Vec<SubRequest>> {
        if history.current().is_none() {
            return Err(CoreError::OutOfFrame { x: request.x, y: request.y });
        }
        let start = u64::from(request.y) * u64::from(self.width) + u64::from(request.x);
        let frame_pixels = u64::from(self.width) * u64::from(self.height);
        if request.x >= self.width || start + u64::from(request.len) > frame_pixels {
            return Err(CoreError::OutOfFrame { x: request.x, y: request.y });
        }
        let mut subs = Vec::with_capacity(request.len as usize);
        for i in 0..u64::from(request.len) {
            let linear = start + i;
            let x = (linear % u64::from(self.width)) as u32;
            let y = (linear / u64::from(self.width)) as u32;
            subs.push(self.analyzer.translate_pixel(history, x, y));
        }
        Ok(subs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::FrameHistory;
    use crate::{RegionLabel, RegionList, RhythmicEncoder};
    use rpr_frame::Plane;

    fn history_with(regions: Vec<RegionLabel>, frames: u64) -> FrameHistory {
        let frame = Plane::from_fn(16, 16, |x, y| (x * 3 + y) as u8);
        let list = RegionList::new(16, 16, regions).unwrap();
        let mut enc = RhythmicEncoder::new(16, 16);
        let mut history = FrameHistory::new();
        for idx in 0..frames {
            history.push(enc.encode(&frame, idx, &list));
        }
        history
    }

    #[test]
    fn regional_pixel_translates_to_current_frame() {
        let history = history_with(vec![RegionLabel::new(2, 2, 4, 4, 1, 1)], 1);
        let mut mmu = PixelMmu::new(16, 16);
        let subs = mmu.analyze(&history, PixelRequest::single(2, 2)).unwrap();
        assert_eq!(subs[0].kind, SubRequestKind::CurrentFrame { offset: 0 });
        let subs = mmu.analyze(&history, PixelRequest::single(3, 3)).unwrap();
        // Row 3 holds the second row of the region; one row of 4 before it.
        assert_eq!(subs[0].kind, SubRequestKind::CurrentFrame { offset: 5 });
    }

    #[test]
    fn non_regional_pixel_is_black() {
        let history = history_with(vec![RegionLabel::new(2, 2, 4, 4, 1, 1)], 1);
        let mut mmu = PixelMmu::new(16, 16);
        let subs = mmu.analyze(&history, PixelRequest::single(10, 10)).unwrap();
        assert_eq!(subs[0].kind, SubRequestKind::Black);
    }

    #[test]
    fn strided_pixel_requests_interpolation() {
        let history = history_with(vec![RegionLabel::new(0, 0, 8, 8, 2, 1)], 1);
        let mut mmu = PixelMmu::new(16, 16);
        let subs = mmu.analyze(&history, PixelRequest::single(1, 0)).unwrap();
        assert_eq!(subs[0].kind, SubRequestKind::Interpolate);
    }

    #[test]
    fn skipped_pixel_resolves_to_history_frame() {
        // skip=2: frame 0 samples, frame 1 skips.
        let history = history_with(vec![RegionLabel::new(0, 0, 4, 4, 1, 2)], 2);
        let mut mmu = PixelMmu::new(16, 16);
        let subs = mmu.analyze(&history, PixelRequest::single(1, 1)).unwrap();
        assert_eq!(
            subs[0].kind,
            SubRequestKind::HistoryFrame { frames_back: 1, offset: 5 }
        );
        assert_eq!(mmu.stats().inter_frame, 1);
    }

    #[test]
    fn skipped_pixel_without_history_is_black() {
        // First frame of a skip=3 region observed off-phase: encode only
        // frame index 1 (region inactive), no earlier frames in history.
        let frame = Plane::from_fn(16, 16, |_, _| 9u8);
        let list =
            RegionList::new(16, 16, vec![RegionLabel::new(0, 0, 4, 4, 1, 3)]).unwrap();
        let mut enc = RhythmicEncoder::new(16, 16);
        let mut history = FrameHistory::new();
        history.push(enc.encode(&frame, 1, &list));
        let mut mmu = PixelMmu::new(16, 16);
        let subs = mmu.analyze(&history, PixelRequest::single(0, 0)).unwrap();
        assert_eq!(subs[0].kind, SubRequestKind::Black);
    }

    #[test]
    fn burst_request_crosses_rows() {
        let history = history_with(vec![RegionLabel::new(0, 0, 16, 16, 1, 1)], 1);
        let mut mmu = PixelMmu::new(16, 16);
        let subs = mmu.analyze(&history, PixelRequest { x: 14, y: 0, len: 4 }).unwrap();
        assert_eq!(subs.len(), 4);
        assert_eq!((subs[2].x, subs[2].y), (0, 1));
    }

    #[test]
    fn out_of_frame_requests_are_rejected() {
        let history = history_with(vec![RegionLabel::new(0, 0, 4, 4, 1, 1)], 1);
        let mut mmu = PixelMmu::new(16, 16);
        assert!(matches!(
            mmu.analyze(&history, PixelRequest::single(16, 0)),
            Err(CoreError::OutOfFrame { .. })
        ));
        assert!(matches!(
            mmu.analyze(&history, PixelRequest { x: 0, y: 15, len: 17 }),
            Err(CoreError::OutOfFrame { .. })
        ));
    }

    #[test]
    fn empty_history_is_rejected() {
        let history = FrameHistory::new();
        let mut mmu = PixelMmu::new(16, 16);
        assert!(mmu.analyze(&history, PixelRequest::single(0, 0)).is_err());
    }

    #[test]
    fn stats_count_each_source() {
        let history = history_with(vec![RegionLabel::new(0, 0, 8, 8, 2, 1)], 1);
        let mut mmu = PixelMmu::new(16, 16);
        mmu.analyze(&history, PixelRequest::row(0, 16)).unwrap();
        let s = *mmu.stats();
        assert_eq!(s.intra_frame, 4); // x = 0, 2, 4, 6
        assert_eq!(s.interpolated, 4); // x = 1, 3, 5, 7
        assert_eq!(s.black, 8);
        assert_eq!(s.total(), 16);
    }
}

//! Kalman-filter region prediction (paper §4.3.1: policies "can also
//! introduce improved application-specific proxies with other
//! prediction strategies, e.g., with Kalman filters").
//!
//! [`KalmanTracker2d`] is a standard constant-velocity Kalman filter
//! over a 2-D position (state `[x, y, vx, vy]`, position-only
//! measurements); [`KalmanPolicy`] runs one tracker per detected object
//! and places each region at the *predicted* next-frame position, sized
//! by the box plus the filter's positional uncertainty — so fast or
//! poorly-observed objects automatically get bigger regions and denser
//! temporal sampling.

use crate::{Policy, PolicyContext, RegionLabel, RegionList};
use rpr_frame::Rect;
use serde::{Deserialize, Serialize};

/// A constant-velocity Kalman filter tracking one 2-D point.
///
/// # Example
///
/// ```
/// use rpr_core::KalmanTracker2d;
///
/// let mut kf = KalmanTracker2d::new(10.0, 20.0, 1.0, 0.05);
/// for t in 1..=20 {
///     kf.predict();
///     kf.update(10.0 + 3.0 * t as f64, 20.0); // moving +3 px/frame in x
/// }
/// let (px, _) = kf.predicted_position();
/// assert!((px - (10.0 + 3.0 * 21.0)).abs() < 1.0);
/// let (vx, vy) = kf.velocity();
/// assert!((vx - 3.0).abs() < 0.2 && vy.abs() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KalmanTracker2d {
    /// State estimate `[x, y, vx, vy]`.
    state: [f64; 4],
    /// State covariance (row-major 4x4).
    p: [[f64; 4]; 4],
    /// Measurement noise variance (px²).
    r: f64,
    /// Process (acceleration) noise intensity.
    q: f64,
}

impl KalmanTracker2d {
    /// Starts a track at `(x, y)` with measurement noise std-dev
    /// `meas_sigma` (pixels) and process-noise intensity `q`.
    pub fn new(x: f64, y: f64, meas_sigma: f64, q: f64) -> Self {
        let mut p = [[0.0; 4]; 4];
        // Uncertain velocity, fairly confident position.
        p[0][0] = meas_sigma * meas_sigma;
        p[1][1] = meas_sigma * meas_sigma;
        p[2][2] = 25.0;
        p[3][3] = 25.0;
        KalmanTracker2d { state: [x, y, 0.0, 0.0], p, r: meas_sigma * meas_sigma, q }
    }

    /// Time-update with dt = 1 frame: `x += vx`, covariance grows by
    /// the constant-acceleration process noise.
    pub fn predict(&mut self) {
        // State: F x with F = [I, I; 0, I] (dt = 1).
        self.state[0] += self.state[2];
        self.state[1] += self.state[3];
        // Covariance: F P F' + Q.
        let p = self.p;
        let mut np = [[0.0; 4]; 4];
        // F P F' expanded for the block structure (per axis a in {0,1}:
        // positions index a, velocities a+2).
        for a in 0..2 {
            let (i, j) = (a, a + 2);
            np[i][i] = p[i][i] + p[i][j] + p[j][i] + p[j][j];
            np[i][j] = p[i][j] + p[j][j];
            np[j][i] = p[j][i] + p[j][j];
            np[j][j] = p[j][j];
        }
        // Cross-axis terms propagate the same way.
        for (ai, aj) in [(0usize, 1usize), (1, 0)] {
            let (i, j) = (ai, aj);
            let (iv, jv) = (ai + 2, aj + 2);
            np[i][j] = p[i][j] + p[i][jv] + p[iv][j] + p[iv][jv];
            np[i][jv] = p[i][jv] + p[iv][jv];
            np[iv][j] = p[iv][j] + p[iv][jv];
            np[iv][jv] = p[iv][jv];
        }
        // Q: discrete constant-acceleration model, dt = 1.
        for a in 0..2 {
            np[a][a] += self.q / 4.0;
            np[a][a + 2] += self.q / 2.0;
            np[a + 2][a] += self.q / 2.0;
            np[a + 2][a + 2] += self.q;
        }
        self.p = np;
    }

    /// Measurement-update with an observed position.
    #[allow(clippy::needless_range_loop)] // parallel-array matrix math
    pub fn update(&mut self, mx: f64, my: f64) {
        // H = [I2 0]; S = H P H' + R is 2x2.
        let s00 = self.p[0][0] + self.r;
        let s11 = self.p[1][1] + self.r;
        let s01 = self.p[0][1];
        let det = s00 * s11 - s01 * s01;
        if det.abs() < 1e-12 {
            return;
        }
        let (i00, i01, i11) = (s11 / det, -s01 / det, s00 / det);
        // K = P H' S^-1 (4x2).
        let mut k = [[0.0; 2]; 4];
        for row in 0..4 {
            let (ph0, ph1) = (self.p[row][0], self.p[row][1]);
            k[row][0] = ph0 * i00 + ph1 * i01;
            k[row][1] = ph0 * i01 + ph1 * i11;
        }
        let y0 = mx - self.state[0];
        let y1 = my - self.state[1];
        for row in 0..4 {
            self.state[row] += k[row][0] * y0 + k[row][1] * y1;
        }
        // P = (I - K H) P.
        let p = self.p;
        for row in 0..4 {
            for col in 0..4 {
                self.p[row][col] =
                    p[row][col] - k[row][0] * p[0][col] - k[row][1] * p[1][col];
            }
        }
    }

    /// The filtered position.
    pub fn position(&self) -> (f64, f64) {
        (self.state[0], self.state[1])
    }

    /// The estimated velocity in px/frame.
    pub fn velocity(&self) -> (f64, f64) {
        (self.state[2], self.state[3])
    }

    /// Where the filter expects the object on the *next* frame.
    pub fn predicted_position(&self) -> (f64, f64) {
        (self.state[0] + self.state[2], self.state[1] + self.state[3])
    }

    /// Positional uncertainty (1-sigma, pixels) — drives the region
    /// margin.
    pub fn position_sigma(&self) -> f64 {
        (self.p[0][0].max(0.0) + self.p[1][1].max(0.0)).sqrt()
    }

    /// Speed estimate in px/frame.
    pub fn speed(&self) -> f64 {
        let (vx, vy) = self.velocity();
        (vx * vx + vy * vy).sqrt()
    }
}

/// Internal per-object track.
#[derive(Debug, Clone)]
struct Track {
    filter: KalmanTracker2d,
    size: (u32, u32),
    missed: u32,
}

/// A Kalman-prediction region policy: detections from the previous
/// frame update per-object trackers, and regions are placed at each
/// tracker's *predicted* next-frame position with a margin scaled by
/// the filter's uncertainty.
///
/// Compared to [`crate::FeaturePolicy`]'s "current position + fixed
/// margin", prediction lets fast objects keep tight regions (the
/// region moves with them instead of growing to cover the motion).
#[derive(Debug, Clone)]
pub struct KalmanPolicy {
    tracks: Vec<Track>,
    /// Largest temporal skip granted to a stationary object.
    max_skip: u32,
    /// Speed (px/frame) above which an object is sampled every frame.
    fast_speed: f64,
    /// Frames a track survives without a matching detection.
    max_missed: u32,
}

impl KalmanPolicy {
    /// Creates a policy with the default tuning.
    pub fn new() -> Self {
        KalmanPolicy { tracks: Vec::new(), max_skip: 3, fast_speed: 4.0, max_missed: 8 }
    }

    /// Number of live tracks.
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Associates detections to tracks (greedy nearest-neighbour),
    /// updates the filters, spawns new tracks, and retires stale ones.
    fn ingest(&mut self, detections: &[(Rect, f64)]) {
        let mut claimed = vec![false; detections.len()];
        for track in &mut self.tracks {
            track.filter.predict();
            let (px, py) = track.filter.position();
            let gate = f64::from(track.size.0.max(track.size.1)).max(16.0);
            let best = detections
                .iter()
                .enumerate()
                .filter(|(i, _)| !claimed[*i])
                .map(|(i, (r, _))| {
                    let (cx, cy) = r.center();
                    (i, ((cx - px).powi(2) + (cy - py).powi(2)).sqrt())
                })
                .min_by(|a, b| a.1.total_cmp(&b.1));
            match best {
                Some((i, dist)) if dist <= gate => {
                    claimed[i] = true;
                    let (cx, cy) = detections[i].0.center();
                    track.filter.update(cx, cy);
                    track.size = (detections[i].0.w, detections[i].0.h);
                    track.missed = 0;
                }
                _ => track.missed += 1,
            }
        }
        self.tracks.retain(|t| t.missed <= self.max_missed);
        for (i, (r, _)) in detections.iter().enumerate() {
            if !claimed[i] {
                let (cx, cy) = r.center();
                self.tracks.push(Track {
                    filter: KalmanTracker2d::new(cx, cy, 2.0, 0.5),
                    size: (r.w, r.h),
                    missed: 0,
                });
            }
        }
    }
}

impl Default for KalmanPolicy {
    fn default() -> Self {
        KalmanPolicy::new()
    }
}

impl Policy for KalmanPolicy {
    fn plan(&mut self, ctx: &PolicyContext) -> RegionList {
        self.ingest(&ctx.detections);
        let labels: Vec<RegionLabel> = self
            .tracks
            .iter()
            .map(|t| {
                let (px, py) = t.filter.predicted_position();
                // Margin: 3-sigma prediction uncertainty (at least 4 px).
                let margin = (3.0 * t.filter.position_sigma()).max(4.0) as u32;
                let rect = Rect::centered(
                    px.round() as i64,
                    py.round() as i64,
                    t.size.0 + 2 * margin,
                    t.size.1 + 2 * margin,
                );
                let speed = t.filter.speed();
                let skip = if speed >= self.fast_speed {
                    1
                } else {
                    let slowness = 1.0 - (speed / self.fast_speed).clamp(0.0, 1.0);
                    1 + (slowness * (self.max_skip - 1) as f64).round() as u32
                };
                RegionLabel::from_rect(rect, 1, skip)
            })
            .collect();
        RegionList::new_lossy(ctx.width, ctx.height, labels)
    }

    fn name(&self) -> &str {
        "kalman"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_converges_on_constant_velocity() {
        let mut kf = KalmanTracker2d::new(0.0, 0.0, 1.0, 0.05);
        for t in 1..=30 {
            kf.predict();
            kf.update(2.0 * t as f64, -(t as f64));
        }
        let (vx, vy) = kf.velocity();
        assert!((vx - 2.0).abs() < 0.1, "vx {vx}");
        assert!((vy + 1.0).abs() < 0.1, "vy {vy}");
    }

    #[test]
    fn uncertainty_shrinks_with_measurements() {
        let mut kf = KalmanTracker2d::new(0.0, 0.0, 2.0, 0.1);
        let initial = kf.position_sigma();
        for t in 1..=10 {
            kf.predict();
            kf.update(t as f64, 0.0);
        }
        assert!(kf.position_sigma() < initial);
    }

    #[test]
    fn uncertainty_grows_while_coasting() {
        let mut kf = KalmanTracker2d::new(0.0, 0.0, 1.0, 0.2);
        for t in 1..=10 {
            kf.predict();
            kf.update(t as f64, 0.0);
        }
        let tracked = kf.position_sigma();
        for _ in 0..5 {
            kf.predict(); // no updates
        }
        assert!(kf.position_sigma() > tracked);
    }

    #[test]
    fn stationary_measurements_give_zero_velocity() {
        let mut kf = KalmanTracker2d::new(5.0, 5.0, 1.0, 0.05);
        for _ in 0..20 {
            kf.predict();
            kf.update(5.0, 5.0);
        }
        assert!(kf.speed() < 0.05, "speed {}", kf.speed());
    }

    fn ctx_with(detections: Vec<(Rect, f64)>, frame_idx: u64) -> PolicyContext {
        PolicyContext { frame_idx, width: 320, height: 240, features: vec![], detections }
    }

    #[test]
    fn policy_tracks_a_moving_box() {
        let mut policy = KalmanPolicy::new();
        let mut last = RegionList::empty(320, 240);
        for t in 0..12u32 {
            let x = 20 + t * 5;
            let det = vec![(Rect::new(x, 100, 30, 30), 1.0)];
            last = policy.plan(&ctx_with(det, u64::from(t)));
        }
        assert_eq!(policy.track_count(), 1);
        assert_eq!(last.len(), 1);
        let r = last.labels()[0];
        // Region centred near the *predicted* next position (~80-90).
        let (cx, _) = r.rect().center();
        assert!(cx > 80.0 && cx < 105.0, "cx {cx}");
        // Fast object: sampled every frame.
        assert_eq!(r.skip, 1);
    }

    #[test]
    fn stationary_object_gets_temporal_skip() {
        let mut policy = KalmanPolicy::new();
        let mut last = RegionList::empty(320, 240);
        for t in 0..15u64 {
            last = policy.plan(&ctx_with(vec![(Rect::new(100, 100, 40, 40), 1.0)], t));
        }
        assert_eq!(last.labels()[0].skip, 3);
    }

    #[test]
    fn tracks_retire_after_missing() {
        let mut policy = KalmanPolicy::new();
        for t in 0..3u64 {
            policy.plan(&ctx_with(vec![(Rect::new(50, 50, 20, 20), 1.0)], t));
        }
        assert_eq!(policy.track_count(), 1);
        for t in 3..15u64 {
            policy.plan(&ctx_with(vec![], t));
        }
        assert_eq!(policy.track_count(), 0);
    }

    #[test]
    fn separate_objects_get_separate_tracks() {
        let mut policy = KalmanPolicy::new();
        for t in 0..5u64 {
            policy.plan(&ctx_with(
                vec![
                    (Rect::new(20, 20, 20, 20), 1.0),
                    (Rect::new(250, 180, 20, 20), 1.0),
                ],
                t,
            ));
        }
        assert_eq!(policy.track_count(), 2);
    }
}

use std::fmt;

/// Errors produced by region validation and encode/decode operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A region label had a zero dimension, zero stride, or zero skip.
    InvalidRegion {
        /// Human-readable description of which constraint failed.
        reason: String,
    },
    /// A region list or frame references dimensions of zero pixels.
    InvalidFrameDimensions {
        /// Frame width.
        width: u32,
        /// Frame height.
        height: u32,
    },
    /// The encoded frame does not match the decoder's configured geometry.
    GeometryMismatch {
        /// Width/height the decoder was built for.
        expected: (u32, u32),
        /// Width/height carried by the encoded frame.
        actual: (u32, u32),
    },
    /// A pixel request fell outside the decoded framebuffer address space
    /// (the PMMU's out-of-frame handler rejects it rather than bypassing).
    OutOfFrame {
        /// Requested x coordinate.
        x: u32,
        /// Requested y coordinate.
        y: u32,
    },
    /// The runtime service channel was closed before the call completed.
    ServiceUnavailable,
    /// An encoded frame's payload and metadata disagree (corrupted in
    /// "DRAM" or assembled inconsistently).
    CorruptEncodedFrame {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidRegion { reason } => write!(f, "invalid region label: {reason}"),
            CoreError::InvalidFrameDimensions { width, height } => {
                write!(f, "invalid frame dimensions {width}x{height}")
            }
            CoreError::GeometryMismatch { expected, actual } => write!(
                f,
                "encoded frame is {}x{} but decoder expects {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
            CoreError::OutOfFrame { x, y } => {
                write!(f, "pixel request ({x}, {y}) outside decoded framebuffer")
            }
            CoreError::ServiceUnavailable => f.write_str("runtime service is not running"),
            CoreError::CorruptEncodedFrame { reason } => {
                write!(f, "corrupt encoded frame: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

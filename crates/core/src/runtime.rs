//! Developer runtime support (paper §4.3, §5.2).
//!
//! The paper's runtime is a standard three-layer stack: a user-space
//! API (`SetRegionLabels()`), a kernel-space driver, and memory-mapped
//! hardware registers written over AXI-lite. [`RegionRuntime`] models
//! that stack synchronously — including the "OS level" pre-sorting of
//! region labels by y that makes the hardware RoI selector cheap — and
//! [`RuntimeService`] runs the same logic as a background service
//! thread receiving calls over a channel, the shape a real runtime
//! service daemon has.

use crate::{
    EncodedFrame, Policy, PolicyContext, RegionLabel, RegionList, Result, RhythmicEncoder,
};
use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use rpr_frame::GrayFrame;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Model of the encoder's memory-mapped region-parameter registers
/// (paper §5.2: "we implement region parameters as registers in the
/// encoder/decoder modules"). Each region label occupies six 32-bit
/// registers (`x, y, w, h, stride, skip`), written over AXI-lite.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterFile {
    words: Vec<u32>,
    writes: u64,
}

impl RegisterFile {
    /// Registers consumed per region label.
    pub const WORDS_PER_REGION: usize = 6;

    /// Creates an empty register file.
    pub fn new() -> Self {
        RegisterFile::default()
    }

    /// Loads a region list, counting one AXI-lite write per 32-bit word
    /// plus one for the region-count register.
    pub fn load(&mut self, regions: &RegionList) {
        self.words.clear();
        for r in regions {
            self.words
                .extend_from_slice(&[r.x, r.y, r.w, r.h, r.stride, r.skip]);
        }
        self.writes += self.words.len() as u64 + 1;
    }

    /// Number of region labels currently programmed.
    pub fn region_count(&self) -> usize {
        self.words.len() / Self::WORDS_PER_REGION
    }

    /// Total AXI-lite writes issued since creation — the configuration
    /// overhead a per-frame policy pays.
    pub fn total_writes(&self) -> u64 {
        self.writes
    }

    /// Raw register contents (for hardware-model introspection).
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Decodes the programmed registers back into region labels — what
    /// the hardware comparison engine actually sees. Round-trips with
    /// [`RegisterFile::load`].
    pub fn decode_regions(&self) -> Vec<RegionLabel> {
        self.words
            .chunks_exact(Self::WORDS_PER_REGION)
            .map(|w| RegionLabel::new(w[0], w[1], w[2], w[3], w[4], w[5]))
            .collect()
    }
}

/// Cumulative counters for runtime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// `set_region_labels` invocations.
    pub label_updates: u64,
    /// Frames pushed through the encoder.
    pub frames_encoded: u64,
    /// Total regions across all label updates.
    pub regions_submitted: u64,
}

/// The synchronous runtime: owns the encoder, the programmed region
/// labels, and the frame counter; applications call
/// [`set_region_labels`](RegionRuntime::set_region_labels) (the paper's
/// `SetRegionLabels()`) and feed frames.
///
/// # Example
///
/// ```
/// use rpr_core::{RegionLabel, RegionRuntime};
/// use rpr_frame::Plane;
///
/// let mut rt = RegionRuntime::new(64, 48);
/// rt.set_region_labels(vec![RegionLabel::new(0, 0, 16, 16, 1, 1)])?;
/// let frame = Plane::from_fn(64, 48, |x, _| x as u8);
/// let encoded = rt.encode_frame(&frame);
/// assert_eq!(encoded.pixel_count(), 256);
/// # Ok::<(), rpr_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct RegionRuntime {
    width: u32,
    height: u32,
    encoder: RhythmicEncoder,
    regions: RegionList,
    registers: RegisterFile,
    frame_idx: u64,
    stats: RuntimeStats,
}

impl RegionRuntime {
    /// Creates a runtime for `width x height` frames with no regions
    /// programmed (everything is discarded until labels are set).
    pub fn new(width: u32, height: u32) -> Self {
        RegionRuntime {
            width,
            height,
            encoder: RhythmicEncoder::new(width, height),
            regions: RegionList::empty(width, height),
            registers: RegisterFile::new(),
            frame_idx: 0,
            stats: RuntimeStats::default(),
        }
    }

    /// The paper's `SetRegionLabels(list<RegionLabel>)`: validates,
    /// clamps, pre-sorts by y ("at the OS level", §4.1.1), and writes
    /// the labels to the encoder's registers. The list persists until
    /// replaced.
    ///
    /// # Errors
    ///
    /// Returns the first region-validation error; on error the
    /// previously programmed labels remain active.
    pub fn set_region_labels(&mut self, labels: Vec<RegionLabel>) -> Result<()> {
        let count = labels.len() as u64;
        let list = RegionList::new(self.width, self.height, labels)?;
        self.registers.load(&list);
        self.regions = list;
        self.stats.label_updates += 1;
        self.stats.regions_submitted += count;
        Ok(())
    }

    /// Runs `policy` for the upcoming frame and programs its labels.
    /// Invalid labels from the policy are dropped rather than fatal.
    pub fn apply_policy(&mut self, policy: &mut dyn Policy, ctx_extra: PolicyContext) {
        let ctx = PolicyContext {
            frame_idx: self.frame_idx,
            width: self.width,
            height: self.height,
            ..ctx_extra
        };
        let list = policy.plan(&ctx);
        self.registers.load(&list);
        self.stats.label_updates += 1;
        self.stats.regions_submitted += list.len() as u64;
        self.regions = list;
    }

    /// Encodes the next frame under the programmed labels and advances
    /// the frame counter.
    pub fn encode_frame(&mut self, frame: &GrayFrame) -> EncodedFrame {
        let encoded = self.encoder.encode(frame, self.frame_idx, &self.regions);
        self.frame_idx += 1;
        self.stats.frames_encoded += 1;
        encoded
    }

    /// The labels currently programmed.
    pub fn regions(&self) -> &RegionList {
        &self.regions
    }

    /// The modeled hardware register file.
    pub fn registers(&self) -> &RegisterFile {
        &self.registers
    }

    /// The wrapped encoder (for its work statistics).
    pub fn encoder(&self) -> &RhythmicEncoder {
        &self.encoder
    }

    /// Index the next encoded frame will carry.
    pub fn frame_idx(&self) -> u64 {
        self.frame_idx
    }

    /// Cumulative runtime statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }
}

enum ServiceCall {
    SetLabels(Vec<RegionLabel>, Sender<Result<()>>),
    Encode(GrayFrame, Sender<EncodedFrame>),
    Shutdown,
}

/// The runtime as a background service: user-space calls travel over a
/// channel to a service thread that owns the encoder state, mirroring
/// the paper's "runtime service receives these calls to send the
/// region label list to the encoder" (§4.3).
#[derive(Debug)]
pub struct RuntimeService {
    tx: Sender<ServiceCall>,
    handle: Option<JoinHandle<()>>,
    stats: Arc<Mutex<RuntimeStats>>,
}

impl std::fmt::Debug for ServiceCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceCall::SetLabels(labels, _) => {
                write!(f, "SetLabels({} labels)", labels.len())
            }
            ServiceCall::Encode(frame, _) => {
                write!(f, "Encode({}x{})", frame.width(), frame.height())
            }
            ServiceCall::Shutdown => f.write_str("Shutdown"),
        }
    }
}

impl RuntimeService {
    /// Spawns the service thread for `width x height` frames.
    pub fn spawn(width: u32, height: u32) -> Self {
        let (tx, rx) = bounded::<ServiceCall>(4);
        let stats = Arc::new(Mutex::new(RuntimeStats::default()));
        let stats_clone = Arc::clone(&stats);
        let handle = std::thread::spawn(move || {
            let mut runtime = RegionRuntime::new(width, height);
            while let Ok(call) = rx.recv() {
                match call {
                    ServiceCall::SetLabels(labels, reply) => {
                        let result = runtime.set_region_labels(labels);
                        *stats_clone.lock() = *runtime.stats();
                        let _ = reply.send(result);
                    }
                    ServiceCall::Encode(frame, reply) => {
                        let encoded = runtime.encode_frame(&frame);
                        *stats_clone.lock() = *runtime.stats();
                        let _ = reply.send(encoded);
                    }
                    ServiceCall::Shutdown => break,
                }
            }
        });
        RuntimeService { tx, handle: Some(handle), stats }
    }

    /// Remote `SetRegionLabels` call.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::ServiceUnavailable`] when the service
    /// thread has exited, otherwise the validation result.
    pub fn set_region_labels(&self, labels: Vec<RegionLabel>) -> Result<()> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(ServiceCall::SetLabels(labels, reply_tx))
            .map_err(|_| crate::CoreError::ServiceUnavailable)?;
        reply_rx.recv().map_err(|_| crate::CoreError::ServiceUnavailable)?
    }

    /// Remote frame encode.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::ServiceUnavailable`] when the service
    /// thread has exited.
    pub fn encode_frame(&self, frame: GrayFrame) -> Result<EncodedFrame> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(ServiceCall::Encode(frame, reply_tx))
            .map_err(|_| crate::CoreError::ServiceUnavailable)?;
        reply_rx.recv().map_err(|_| crate::CoreError::ServiceUnavailable)
    }

    /// Snapshot of the service-side runtime statistics.
    pub fn stats(&self) -> RuntimeStats {
        *self.stats.lock()
    }

    /// Stops the service thread, waiting for it to exit.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(ServiceCall::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RuntimeService {
    fn drop(&mut self) {
        let _ = self.tx.send(ServiceCall::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_frame::Plane;

    fn frame() -> GrayFrame {
        Plane::from_fn(32, 32, |x, y| (x ^ y) as u8)
    }

    #[test]
    fn runtime_starts_with_no_regions() {
        let mut rt = RegionRuntime::new(32, 32);
        let encoded = rt.encode_frame(&frame());
        assert_eq!(encoded.pixel_count(), 0);
    }

    #[test]
    fn set_region_labels_validates_and_sorts() {
        let mut rt = RegionRuntime::new(32, 32);
        rt.set_region_labels(vec![
            RegionLabel::new(0, 20, 4, 4, 1, 1),
            RegionLabel::new(0, 5, 4, 4, 1, 1),
        ])
        .unwrap();
        assert_eq!(rt.regions().labels()[0].y, 5);
        assert_eq!(rt.registers().region_count(), 2);
    }

    #[test]
    fn invalid_labels_keep_previous_programming() {
        let mut rt = RegionRuntime::new(32, 32);
        rt.set_region_labels(vec![RegionLabel::new(0, 0, 4, 4, 1, 1)]).unwrap();
        let err = rt.set_region_labels(vec![RegionLabel::new(0, 0, 4, 4, 0, 1)]);
        assert!(err.is_err());
        assert_eq!(rt.regions().len(), 1);
    }

    #[test]
    fn registers_roundtrip_region_labels() {
        let mut rt = RegionRuntime::new(64, 64);
        let labels = vec![
            RegionLabel::new(1, 2, 10, 12, 2, 3),
            RegionLabel::new(20, 30, 8, 8, 1, 1),
        ];
        rt.set_region_labels(labels.clone()).unwrap();
        // The registers hold the validated (clamped, y-sorted) list.
        assert_eq!(rt.registers().decode_regions(), rt.regions().labels());
    }

    #[test]
    fn register_writes_are_counted() {
        let mut rt = RegionRuntime::new(32, 32);
        rt.set_region_labels(vec![RegionLabel::new(0, 0, 4, 4, 1, 1)]).unwrap();
        // 6 words + 1 count register.
        assert_eq!(rt.registers().total_writes(), 7);
        rt.set_region_labels(vec![
            RegionLabel::new(0, 0, 4, 4, 1, 1),
            RegionLabel::new(8, 8, 4, 4, 1, 1),
        ])
        .unwrap();
        assert_eq!(rt.registers().total_writes(), 7 + 13);
    }

    #[test]
    fn frame_counter_advances_per_encode() {
        let mut rt = RegionRuntime::new(32, 32);
        rt.set_region_labels(vec![RegionLabel::new(0, 0, 8, 8, 1, 2)]).unwrap();
        let f0 = rt.encode_frame(&frame());
        let f1 = rt.encode_frame(&frame());
        assert_eq!(f0.frame_idx(), 0);
        assert_eq!(f1.frame_idx(), 1);
        // skip=2: frame 1 is off-phase.
        assert_eq!(f0.pixel_count(), 64);
        assert_eq!(f1.pixel_count(), 0);
    }

    #[test]
    fn apply_policy_programs_planned_labels() {
        use crate::FullFramePolicy;
        let mut rt = RegionRuntime::new(32, 32);
        rt.apply_policy(&mut FullFramePolicy, PolicyContext::default());
        let encoded = rt.encode_frame(&frame());
        assert_eq!(encoded.pixel_count(), 32 * 32);
    }

    #[test]
    fn service_roundtrip() {
        let service = RuntimeService::spawn(32, 32);
        service
            .set_region_labels(vec![RegionLabel::new(0, 0, 8, 8, 1, 1)])
            .unwrap();
        let encoded = service.encode_frame(frame()).unwrap();
        assert_eq!(encoded.pixel_count(), 64);
        assert_eq!(service.stats().frames_encoded, 1);
        service.shutdown();
    }

    #[test]
    fn service_rejects_invalid_labels() {
        let service = RuntimeService::spawn(32, 32);
        assert!(service
            .set_region_labels(vec![RegionLabel::new(0, 0, 0, 8, 1, 1)])
            .is_err());
        service.shutdown();
    }
}

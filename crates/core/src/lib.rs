//! Rhythmic pixel regions: the encoder, decoder, runtime, and policies
//! from *Rhythmic Pixel Regions: Multi-resolution Visual Sensing System
//! towards High-Precision Visual Computing at Low Power* (ASPLOS '21).
//!
//! The central idea is to stop treating camera frames as uniform grids:
//! an application declares [`RegionLabel`]s — rectangles with a spatial
//! `stride` (pixel density) and temporal `skip` (update interval) — and
//! the [`RhythmicEncoder`] discards every pixel outside that rhythm
//! *before* the frame reaches DRAM, writing a tightly packed
//! [`EncodedFrame`] plus two pieces of metadata: a per-row offset table
//! and a 2-bit-per-pixel [`EncMask`]. The [`SoftwareDecoder`] (and its
//! hardware counterpart modeled by [`PixelMmu`]) reconstructs ordinary
//! frame-addressed pixels on demand so unmodified vision algorithms can
//! consume the stream.
//!
//! # Quick start
//!
//! ```
//! use rpr_core::{RegionLabel, RegionList, RhythmicEncoder, SoftwareDecoder};
//! use rpr_frame::{GrayFrame, Plane};
//!
//! // A 64x48 frame with a gradient.
//! let frame: GrayFrame = Plane::from_fn(64, 48, |x, y| (x + y) as u8);
//!
//! // Keep full detail in a 16x16 box, discard everything else.
//! let regions = RegionList::new(64, 48, vec![RegionLabel::new(8, 8, 16, 16, 1, 1)])?;
//!
//! let mut encoder = RhythmicEncoder::new(64, 48);
//! let encoded = encoder.encode(&frame, 0, &regions);
//! assert_eq!(encoded.pixel_count(), 16 * 16);
//!
//! let mut decoder = SoftwareDecoder::new(64, 48);
//! let decoded = decoder.decode(&encoded);
//! assert_eq!(decoded.get(10, 10), frame.get(10, 10)); // inside region
//! assert_eq!(decoded.get(40, 40), Some(0));           // outside: black
//! # Ok::<(), rpr_core::CoreError>(())
//! ```

#![deny(missing_docs)]

mod encmask;
mod encoded;
mod encoder;
mod decoder;
mod error;
mod kalman;
pub mod kernels;
mod labelsearch;
mod metadata;
mod mmu;
mod policy;
mod pool;
mod region;
mod runtime;

pub use encmask::{EncMask, PixelStatus};
pub use encoded::EncodedFrame;
pub use encoder::{
    ComparisonEngine, EncoderConfig, EncoderStats, EngineKind, RhythmicEncoder, RoiSelector,
    Sequencer, StreamingEncoder,
};
pub use decoder::{DecoderStats, FrameHistory, ReconstructionMode, SoftwareDecoder, HISTORY_DEPTH};
pub use error::CoreError;
pub use kalman::{KalmanPolicy, KalmanTracker2d};
pub use labelsearch::{LabelSearchDecoder, LabelSearchStats};
pub use metadata::{FrameMetadata, RowOffsets};
pub use mmu::{PixelMmu, PixelRequest, SubRequest, SubRequestKind, TransactionAnalyzer};
pub use policy::{
    AdaptiveCyclePolicy, CycleLengthPolicy, Feature, FeaturePolicy, FeaturePolicyParams,
    FullFramePolicy, Policy, PolicyContext, StaticPolicy,
};
pub use pool::{BufferPool, PoolStats};
pub use region::{RegionLabel, RegionList};
pub use runtime::{RegionRuntime, RegisterFile, RuntimeService, RuntimeStats};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

//! Property-based tests for the rhythmic pixel region invariants.

use proptest::prelude::*;
use rpr_core::{
    PixelStatus, RegionLabel, RegionList, RhythmicEncoder, SoftwareDecoder, StreamingEncoder,
};
use rpr_frame::{GrayFrame, Plane};

/// Strategy: a frame geometry plus a batch of (possibly out-of-range,
/// possibly overlapping) region labels and a frame index.
fn scenario() -> impl Strategy<Value = (u32, u32, Vec<RegionLabel>, u64)> {
    (8u32..48, 8u32..48).prop_flat_map(|(w, h)| {
        let region = (0..w, 0..h, 1u32..24, 1u32..24, 1u32..5, 1u32..4)
            .prop_map(|(x, y, rw, rh, stride, skip)| RegionLabel::new(x, y, rw, rh, stride, skip));
        (
            Just(w),
            Just(h),
            proptest::collection::vec(region, 0..8),
            0u64..6,
        )
    })
}

fn textured_frame(w: u32, h: u32, seed: u32) -> GrayFrame {
    Plane::from_fn(w, h, |x, y| (x.wrapping_mul(31) ^ y.wrapping_mul(17) ^ seed) as u8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The packed payload length always equals the mask's R count and
    /// the offset table's total.
    #[test]
    fn payload_matches_metadata((w, h, labels, idx) in scenario()) {
        let frame = textured_frame(w, h, 1);
        let regions = RegionList::new_lossy(w, h, labels);
        let mut enc = RhythmicEncoder::new(w, h);
        let encoded = enc.encode(&frame, idx, &regions);
        prop_assert_eq!(encoded.pixel_count() as u64, encoded.metadata().mask.regional_total());
        prop_assert_eq!(encoded.pixel_count() as u32, encoded.metadata().row_offsets.total());
        prop_assert!(encoded.metadata().is_consistent());
    }

    /// Encoded pixels are exactly the raster-order original values at
    /// R-mask positions.
    #[test]
    fn payload_is_raster_filtered_original((w, h, labels, idx) in scenario()) {
        let frame = textured_frame(w, h, 2);
        let regions = RegionList::new_lossy(w, h, labels);
        let mut enc = RhythmicEncoder::new(w, h);
        let encoded = enc.encode(&frame, idx, &regions);
        let mask = &encoded.metadata().mask;
        let expected: Vec<u8> = (0..h)
            .flat_map(|y| (0..w).map(move |x| (x, y)))
            .filter(|&(x, y)| mask.get(x, y) == PixelStatus::Regional)
            .map(|(x, y)| frame.get(x, y).unwrap())
            .collect();
        prop_assert_eq!(encoded.pixels(), &expected[..]);
    }

    /// The streaming (per-pixel) encoder and the whole-frame encoder
    /// produce identical encoded frames.
    #[test]
    fn streaming_equals_batch((w, h, labels, idx) in scenario()) {
        let frame = textured_frame(w, h, 3);
        let regions = RegionList::new_lossy(w, h, labels);
        let mut enc = RhythmicEncoder::new(w, h);
        let expected = enc.encode(&frame, idx, &regions);
        let mut streaming = StreamingEncoder::begin(w, h, idx, regions);
        for &px in frame.as_slice() {
            streaming.push(px);
        }
        prop_assert_eq!(streaming.finish(), expected);
    }

    /// Decoding reproduces the original exactly at R positions and
    /// black at N positions (on a history-free first frame).
    #[test]
    fn decode_respects_mask((w, h, labels, idx) in scenario()) {
        let frame = textured_frame(w, h, 4);
        let regions = RegionList::new_lossy(w, h, labels);
        let mut enc = RhythmicEncoder::new(w, h);
        let encoded = enc.encode(&frame, idx, &regions);
        let mut dec = SoftwareDecoder::new(w, h);
        let decoded = dec.decode(&encoded);
        let mask = &encoded.metadata().mask;
        for y in 0..h {
            for x in 0..w {
                match mask.get(x, y) {
                    PixelStatus::Regional => {
                        prop_assert_eq!(decoded.get(x, y), frame.get(x, y));
                    }
                    PixelStatus::NonRegional | PixelStatus::Skipped => {
                        // No history yet: both decode to black.
                        prop_assert_eq!(decoded.get(x, y), Some(0));
                    }
                    PixelStatus::Strided => {}
                }
            }
        }
    }

    /// A full-frame region list is a lossless identity round trip on
    /// every frame index.
    #[test]
    fn full_frame_roundtrip(w in 4u32..64, h in 4u32..64, idx in 0u64..8, seed in 0u32..255) {
        let frame = textured_frame(w, h, seed);
        let mut enc = RhythmicEncoder::new(w, h);
        let mut dec = SoftwareDecoder::new(w, h);
        let decoded = dec.decode(&enc.encode(&frame, idx, &RegionList::full_frame(w, h)));
        prop_assert_eq!(decoded, frame);
    }

    /// Captured fraction is within [0, 1] and consistent with the
    /// payload size.
    #[test]
    fn captured_fraction_bounded((w, h, labels, idx) in scenario()) {
        let frame = textured_frame(w, h, 5);
        let regions = RegionList::new_lossy(w, h, labels);
        let mut enc = RhythmicEncoder::new(w, h);
        let encoded = enc.encode(&frame, idx, &regions);
        let f = encoded.captured_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        let expected = encoded.pixel_count() as f64 / (w as f64 * h as f64);
        prop_assert!((f - expected).abs() < 1e-12);
    }

    /// Over a multi-frame sequence with temporal skips, every decoded
    /// regional-or-skipped pixel equals the original value from the most
    /// recent frame on which its region was sampled.
    #[test]
    fn temporal_skip_serves_most_recent_sample(
        w in 12u32..32,
        h in 12u32..32,
        skip in 1u32..4,
        frames in 2u64..8,
    ) {
        // One region with a clean stride so values are exact.
        let regions = RegionList::new_lossy(
            w, h, vec![RegionLabel::new(2, 2, w - 4, h - 4, 1, skip)],
        );
        let mut enc = RhythmicEncoder::new(w, h);
        let mut dec = SoftwareDecoder::new(w, h);
        let mut last_sampled: Option<GrayFrame> = None;
        for idx in 0..frames {
            let frame = textured_frame(w, h, idx as u32 * 7 + 1);
            let decoded = dec.decode(&enc.encode(&frame, idx, &regions));
            if idx % u64::from(skip) == 0 {
                last_sampled = Some(frame.clone());
            }
            let reference = last_sampled.as_ref().unwrap();
            for y in 2..h - 2 {
                for x in 2..w - 2 {
                    prop_assert_eq!(
                        decoded.get(x, y),
                        reference.get(x, y),
                        "frame {} pixel ({}, {})", idx, x, y
                    );
                }
            }
        }
    }

    /// Region-list construction is idempotent: re-validating an already
    /// validated list changes nothing.
    #[test]
    fn region_list_validation_idempotent((w, h, labels, _idx) in scenario()) {
        let once = RegionList::new_lossy(w, h, labels);
        let twice = RegionList::new_lossy(w, h, once.labels().to_vec());
        prop_assert_eq!(once, twice);
    }

    /// Encoder work accounting: hybrid never performs more comparisons
    /// than the parallel engine model.
    #[test]
    fn hybrid_never_exceeds_parallel((w, h, labels, idx) in scenario()) {
        use rpr_core::{EncoderConfig, EngineKind};
        let frame = textured_frame(w, h, 6);
        let regions = RegionList::new_lossy(w, h, labels);
        let mut hybrid = RhythmicEncoder::new(w, h);
        hybrid.encode(&frame, idx, &regions);
        let mut parallel = RhythmicEncoder::with_config(
            w, h, EncoderConfig { engine: EngineKind::Parallel, run_length_reuse: true },
        );
        parallel.encode(&frame, idx, &regions);
        prop_assert!(hybrid.stats().comparisons <= parallel.stats().comparisons);
    }
}

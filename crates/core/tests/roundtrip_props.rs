//! Property tests for the RegionLabel → EncMask → encode → decode
//! round trip, driven by the rpr-testkit generators: over seeded
//! overlapping, degenerate, and frame-spanning region sets, every `R`
//! pixel must survive the round trip exactly (the representation's
//! defining guarantee, paper §3.2), in both reconstruction modes, and
//! every freshly encoded frame must validate.

use rpr_core::{
    PixelStatus, ReconstructionMode, RegionList, RhythmicEncoder, SoftwareDecoder,
};
use rpr_testkit::{gen_frame, gen_region_list, TestRng};

const CASES: u64 = 150;

/// Drawn geometry per case: small enough to keep the sweep fast, large
/// enough for multi-region overlap.
fn geometry(rng: &mut TestRng) -> (u32, u32) {
    (rng.range_u32(6, 36), rng.range_u32(6, 28))
}

#[test]
fn r_pixels_roundtrip_exactly_in_both_modes() {
    for seed in 0..CASES {
        let mut rng = TestRng::new(seed);
        let (w, h) = geometry(&mut rng);
        let frame = gen_frame(&mut rng, w, h);
        let regions = gen_region_list(&mut rng, w, h, 6);
        let encoded = RhythmicEncoder::new(w, h).encode(&frame, seed, &regions);
        let mask = &encoded.metadata().mask;
        for mode in [ReconstructionMode::BlockNearest, ReconstructionMode::FifoReplicate] {
            let mut dec = SoftwareDecoder::with_mode(w, h, mode);
            let decoded = dec.decode(&encoded);
            for y in 0..h {
                for x in 0..w {
                    if mask.get(x, y) == PixelStatus::Regional {
                        assert_eq!(
                            decoded.get(x, y),
                            frame.get(x, y),
                            "seed {seed} {mode:?} R pixel ({x},{y})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn fresh_frames_always_validate() {
    for seed in 0..CASES {
        let mut rng = TestRng::new(seed ^ 0xA5A5);
        let (w, h) = geometry(&mut rng);
        let frame = gen_frame(&mut rng, w, h);
        let regions = gen_region_list(&mut rng, w, h, 6);
        let encoded = RhythmicEncoder::new(w, h).encode(&frame, seed, &regions);
        encoded
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed}: fresh frame failed validate: {e}"));
    }
}

#[test]
fn mask_marks_exactly_the_labeled_r_pixels() {
    for seed in 0..CASES {
        let mut rng = TestRng::new(seed ^ 0x0F0F);
        let (w, h) = geometry(&mut rng);
        let regions = gen_region_list(&mut rng, w, h, 6);
        let frame = gen_frame(&mut rng, w, h);
        let encoded = RhythmicEncoder::new(w, h).encode(&frame, 0, &regions);
        let mask = &encoded.metadata().mask;
        for y in 0..h {
            for x in 0..w {
                // A pixel is R exactly when some label keeps it on its
                // stride grid and is temporally sampled on this frame
                // (frame 0: every region samples). Priority R > St > Sk
                // means one keeping label suffices.
                let expected = regions
                    .labels()
                    .iter()
                    .any(|r| r.keeps_pixel(x, y) && r.is_sampled_on(0));
                let is_r = mask.get(x, y) == PixelStatus::Regional;
                assert_eq!(
                    is_r, expected,
                    "seed {seed}: mask/label disagreement at ({x},{y})"
                );
            }
        }
    }
}

#[test]
fn payload_length_matches_mask_r_count() {
    for seed in 0..CASES {
        let mut rng = TestRng::new(seed ^ 0x1234);
        let (w, h) = geometry(&mut rng);
        let frame = gen_frame(&mut rng, w, h);
        let regions = gen_region_list(&mut rng, w, h, 6);
        let encoded = RhythmicEncoder::new(w, h).encode(&frame, 0, &regions);
        assert_eq!(
            encoded.pixel_count() as u64,
            encoded.metadata().mask.regional_total(),
            "seed {seed}"
        );
        assert_eq!(
            encoded.metadata().row_offsets.total() as usize,
            encoded.pixel_count(),
            "seed {seed}"
        );
    }
}

#[test]
fn empty_region_lists_produce_empty_frames_that_validate() {
    let mut rng = TestRng::new(77);
    for _ in 0..20 {
        let (w, h) = geometry(&mut rng);
        let frame = gen_frame(&mut rng, w, h);
        let regions = RegionList::new_lossy(w, h, vec![]);
        let encoded = RhythmicEncoder::new(w, h).encode(&frame, 0, &regions);
        assert_eq!(encoded.pixel_count(), 0);
        assert!(encoded.validate().is_ok());
        let decoded = SoftwareDecoder::new(w, h).decode(&encoded);
        assert!(decoded.as_slice().iter().all(|&v| v == 0), "all black");
    }
}

//! Boundary tests for the decoder's frame history and the PMMU's
//! temporal-skip resolution: eviction exactly at [`HISTORY_DEPTH`],
//! `frames_back >= len` lookups, and skip resolution against a history
//! shallower than the skip distance (the startup transient).

use rpr_core::{
    FrameHistory, PixelMmu, PixelRequest, RegionLabel, RegionList,
    RhythmicEncoder, SoftwareDecoder, SubRequestKind, TransactionAnalyzer, HISTORY_DEPTH,
};
use rpr_testkit::{gen_frame, TestRng};

const W: u32 = 12;
const H: u32 = 10;

fn encode_full(idx: u64, rng: &mut TestRng) -> rpr_core::EncodedFrame {
    let frame = gen_frame(rng, W, H);
    RhythmicEncoder::new(W, H).encode(&frame, idx, &RegionList::full_frame(W, H))
}

/// A region set whose pixels are all temporally skipped on odd frames.
fn skip2_regions() -> RegionList {
    RegionList::new(W, H, vec![RegionLabel::new(0, 0, W, H, 1, 2)]).unwrap()
}

#[test]
fn history_evicts_exactly_at_depth() {
    let mut rng = TestRng::new(1);
    let mut history = FrameHistory::new();
    assert!(history.is_empty());
    for idx in 0..HISTORY_DEPTH as u64 {
        history.push(encode_full(idx, &mut rng));
        assert_eq!(history.len(), idx as usize + 1, "fills up to depth");
    }
    // One more evicts the oldest, never exceeding the depth.
    history.push(encode_full(HISTORY_DEPTH as u64, &mut rng));
    assert_eq!(history.len(), HISTORY_DEPTH);
    assert_eq!(history.current().unwrap().frame_idx(), HISTORY_DEPTH as u64);
    assert_eq!(
        history.get(HISTORY_DEPTH - 1).unwrap().frame_idx(),
        1,
        "frame 0 was evicted"
    );
}

#[test]
fn get_beyond_len_is_none() {
    let mut rng = TestRng::new(2);
    let mut history = FrameHistory::new();
    assert!(history.get(0).is_none(), "empty history has no current");
    history.push(encode_full(0, &mut rng));
    history.push(encode_full(1, &mut rng));
    assert!(history.get(1).is_some());
    assert!(history.get(2).is_none(), "frames_back == len");
    assert!(history.get(HISTORY_DEPTH).is_none(), "frames_back == depth");
    assert!(history.get(usize::MAX).is_none());
}

#[test]
fn skip_resolution_with_shallow_history_is_black() {
    // Only the off-phase frame (idx 1, all pixels Sk) is in history: the
    // analyzer walks back, finds nothing, and must fall to Black rather
    // than index past the end.
    let mut rng = TestRng::new(3);
    let frame = gen_frame(&mut rng, W, H);
    let encoded = RhythmicEncoder::new(W, H).encode(&frame, 1, &skip2_regions());
    assert_eq!(encoded.pixel_count(), 0, "off-phase frame stores nothing");
    let mut history = FrameHistory::new();
    history.push(encoded);

    let mut analyzer = TransactionAnalyzer::new();
    for y in 0..H {
        for x in 0..W {
            let sub = analyzer.translate_pixel(&history, x, y);
            assert_eq!(sub.kind, SubRequestKind::Black, "({x},{y})");
        }
    }
    assert_eq!(analyzer.stats().black, u64::from(W * H));
    assert_eq!(analyzer.stats().inter_frame, 0);
}

#[test]
fn skip_resolution_finds_data_exactly_one_frame_back() {
    let mut rng = TestRng::new(4);
    let mut enc = RhythmicEncoder::new(W, H);
    let regions = skip2_regions();
    let on_phase = enc.encode(&gen_frame(&mut rng, W, H), 0, &regions);
    let off_phase = enc.encode(&gen_frame(&mut rng, W, H), 1, &regions);
    assert!(off_phase.pixel_count() == 0);

    let mut history = FrameHistory::new();
    history.push(on_phase.clone());
    history.push(off_phase);

    let mut analyzer = TransactionAnalyzer::new();
    let sub = analyzer.translate_pixel(&history, 3, 2);
    match sub.kind {
        SubRequestKind::HistoryFrame { frames_back, offset } => {
            assert_eq!(frames_back, 1);
            assert_eq!(
                history.get(1).unwrap().pixels().get(offset as usize).copied(),
                on_phase.fetch_regional(3, 2),
                "offset lands on the on-phase pixel"
            );
        }
        other => panic!("expected HistoryFrame, got {other:?}"),
    }
}

#[test]
fn decoder_startup_serves_black_then_history() {
    let mut rng = TestRng::new(5);
    let regions = skip2_regions();
    let mut enc = RhythmicEncoder::new(W, H);
    let mut dec = SoftwareDecoder::new(W, H);

    // Decode the off-phase frame first: no history, everything black.
    let off_first = enc.encode(&gen_frame(&mut rng, W, H), 1, &regions);
    let d = dec.decode(&off_first);
    assert!(d.as_slice().iter().all(|&v| v == 0), "startup skip is black");

    // Now an on-phase frame, then off-phase: skip serves the on-phase
    // content.
    let src = gen_frame(&mut rng, W, H);
    dec.decode(&enc.encode(&src, 2, &regions));
    let d = dec.decode(&enc.encode(&gen_frame(&mut rng, W, H), 3, &regions));
    assert_eq!(d.get(5, 5), src.get(5, 5), "skip serves previous decode");
}

#[test]
fn mmu_rejects_out_of_frame_and_empty_history() {
    let mut rng = TestRng::new(6);
    let mut mmu = PixelMmu::new(W, H);
    let empty = FrameHistory::new();
    assert!(
        mmu.analyze(&empty, PixelRequest::single(0, 0)).is_err(),
        "empty history is an error, not a panic"
    );
    let mut history = FrameHistory::new();
    history.push(encode_full(0, &mut rng));
    assert!(mmu.analyze(&history, PixelRequest::single(W, 0)).is_err());
    assert!(mmu.analyze(&history, PixelRequest::single(0, H)).is_err());
    assert!(mmu.analyze(&history, PixelRequest { x: W - 1, y: H - 1, len: 2 }).is_err());
    assert!(mmu.analyze(&history, PixelRequest::single(W - 1, H - 1)).is_ok());
}

//! Differential kernel-equivalence battery (ISSUE 7 satellite 1).
//!
//! Every chunked hot-path kernel must be byte-identical to its
//! retained scalar reference on arbitrary inputs, with the degenerate
//! shapes called out explicitly: widths not divisible by 8 or 64,
//! zero-region frames, full-keep masks, and single-pixel regions. The
//! whole-pipeline checks then pin the kernelized encoder to the
//! per-pixel [`StreamingEncoder`] and the run-based decoder to the
//! naive [`rpr_testkit::ReferenceDecoder`] — under a poisoned
//! [`BufferPool`], so a kernel reading recycled memory it never wrote
//! shows up as a sentinel-valued divergence.

use proptest::prelude::*;
use rpr_core::kernels;
use rpr_core::{
    BufferPool, EncoderConfig, ReconstructionMode, RegionLabel, RegionList, RhythmicEncoder,
    SoftwareDecoder, StreamingEncoder,
};
use rpr_frame::{GrayFrame, Plane};
use rpr_testkit::ReferenceDecoder;

/// Widths that stress every chunk boundary: below one packed byte,
/// straddling the 4-entry byte, the 8-lane gather word, and the
/// 32-entry pack word, plus comfortable multiples.
const AWKWARD_WIDTHS: [u32; 10] = [1, 3, 4, 7, 9, 31, 32, 33, 63, 65];

fn textured_frame(w: u32, h: u32, seed: u32) -> GrayFrame {
    Plane::from_fn(w, h, |x, y| (x.wrapping_mul(31) ^ y.wrapping_mul(17) ^ seed) as u8)
}

/// Strategy: a priority row (values 0..=3) of awkward length.
fn priority_row() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, 0..200)
}

/// Strategy: raw packed mask bytes plus a window [start, start+len)
/// of entries that may start at any 2-bit phase.
fn packed_window() -> impl Strategy<Value = (Vec<u8>, usize, usize)> {
    (proptest::collection::vec(0u8..=255, 1..64), 0usize..16, 0usize..260)
        .prop_map(|(packed, start, len)| (packed, start, len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The word-skipping run scanner and the per-entry scalar scanner
    /// report identical (status, run-length) sequences from any phase.
    #[test]
    fn run_scanner_equals_scalar((packed, start, len) in packed_window()) {
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        kernels::for_each_run(&packed, start, len, |s, n| fast.push((s, n)));
        kernels::for_each_run_scalar(&packed, start, len, |s, n| slow.push((s, n)));
        prop_assert_eq!(fast, slow);
    }

    /// The u64 row packer and the per-entry scalar packer produce
    /// byte-identical masks at every start phase.
    #[test]
    fn row_packer_equals_scalar(row in priority_row(), start in 0usize..13) {
        let bytes = (start + row.len()).div_ceil(4).max(1);
        let mut fast = vec![0u8; bytes];
        let mut slow = vec![0u8; bytes];
        kernels::pack_priority_row(&mut fast, start, &row);
        kernels::pack_priority_row_scalar(&mut slow, start, &row);
        prop_assert_eq!(fast, slow);
    }

    /// The vectorized status counter matches the scalar tally.
    #[test]
    fn priority_counter_equals_scalar(row in priority_row()) {
        prop_assert_eq!(
            kernels::count_priorities(&row),
            kernels::count_priorities_scalar(&row)
        );
    }

    /// The 8-lane regional gather matches the per-pixel gather, even
    /// when the source row is shorter than the priority row.
    #[test]
    fn regional_gather_equals_scalar(row in priority_row(), short in 0usize..5) {
        let src: Vec<u8> = (0..row.len().saturating_sub(short))
            .map(|i| (i as u8).wrapping_mul(37))
            .collect();
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        let n_fast = kernels::gather_regional(&row, &src, &mut fast);
        let n_slow = kernels::gather_regional_scalar(&row, &src, &mut slow);
        prop_assert_eq!(n_fast, n_slow);
        prop_assert_eq!(fast, slow);
    }
}

/// Regression: a row shorter than its misaligned head used to recurse
/// forever in `pack_priority_row` (any width-1 frame hit it). Sweep
/// every small (start, len) pair deterministically so the fix cannot
/// rot behind RNG luck.
#[test]
fn row_packer_terminates_and_matches_on_tiny_misaligned_rows() {
    for start in 0..9usize {
        for len in 0..7usize {
            let row: Vec<u8> = (0..len).map(|i| (i % 4) as u8).collect();
            let bytes = (start + len).div_ceil(4).max(1);
            let mut fast = vec![0u8; bytes];
            let mut slow = vec![0u8; bytes];
            kernels::pack_priority_row(&mut fast, start, &row);
            kernels::pack_priority_row_scalar(&mut slow, start, &row);
            assert_eq!(fast, slow, "start {start} len {len}");
        }
    }
}

/// Builds the degenerate region sets the issue calls out, per width.
fn degenerate_region_sets(w: u32, h: u32) -> Vec<(&'static str, Vec<RegionLabel>)> {
    vec![
        ("zero-region", vec![]),
        ("full-keep", vec![RegionLabel::new(0, 0, w, h, 1, 1)]),
        ("single-pixel", vec![RegionLabel::new(w / 2, h / 2, 1, 1, 1, 1)]),
        (
            "strided-band",
            vec![RegionLabel::new(0, h / 3, w, (h / 3).max(1), 2, 2)],
        ),
        (
            "overlapping-corners",
            vec![
                RegionLabel::new(0, 0, w.div_ceil(2) + 1, h.div_ceil(2) + 1, 1, 2),
                RegionLabel::new(w / 2, h / 2, w - w / 2, h - h / 2, 3, 1),
            ],
        ),
    ]
}

/// The kernelized whole-frame encoder must stay byte-identical to the
/// per-pixel [`StreamingEncoder`] across every awkward width and
/// degenerate region set.
#[test]
fn encoder_matches_streaming_reference_on_degenerate_shapes() {
    for &w in &AWKWARD_WIDTHS {
        let h = 9;
        for (name, labels) in degenerate_region_sets(w, h) {
            let frame = textured_frame(w, h, w);
            let regions = RegionList::new_lossy(w, h, labels);
            let mut enc = RhythmicEncoder::new(w, h);
            for idx in 0..3u64 {
                let encoded = enc.encode(&frame, idx, &regions);
                let mut streaming = StreamingEncoder::begin(w, h, idx, regions.clone());
                for &px in frame.as_slice() {
                    streaming.push(px);
                }
                assert_eq!(
                    streaming.finish(),
                    encoded,
                    "width {w} set {name} frame {idx}"
                );
            }
        }
    }
}

/// The run-based decoder must match the naive reference decoder in
/// both modes on every degenerate shape — decoding out of a poisoned
/// pool, so any read of recycled memory the kernels did not overwrite
/// surfaces as a sentinel divergence.
#[test]
fn decoder_matches_reference_on_degenerate_shapes() {
    for &w in &AWKWARD_WIDTHS {
        let h = 10;
        for (name, labels) in degenerate_region_sets(w, h) {
            let pool = BufferPool::poisoned(0xA5);
            let regions = RegionList::new_lossy(w, h, labels);
            let mut enc =
                RhythmicEncoder::with_pool(w, h, EncoderConfig::default(), pool.clone());
            for mode in [ReconstructionMode::BlockNearest, ReconstructionMode::FifoReplicate] {
                let mut dec = SoftwareDecoder::with_pool(w, h, mode, pool.clone());
                let mut reference = ReferenceDecoder::new(w, h, mode);
                for idx in 0..4u64 {
                    let frame = textured_frame(w, h, idx as u32 ^ w);
                    let encoded = enc.encode(&frame, idx, &regions);
                    let out = dec.decode(&encoded);
                    let expect = reference.decode(&encoded);
                    assert_eq!(out, expect, "width {w} set {name} mode {mode:?} frame {idx}");
                    // Recycle so later frames decode into poisoned
                    // buffers rather than fresh zeroed ones.
                    dec.recycle_output(out);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized multi-frame pipeline: pooled kernelized encode/decode
    /// against the reference decoder, any geometry.
    #[test]
    fn pipeline_matches_reference(
        w in 1u32..40,
        h in 1u32..24,
        seed in 0u32..1000,
        mode_fifo in 0u8..2,
    ) {
        let mode = if mode_fifo == 1 {
            ReconstructionMode::FifoReplicate
        } else {
            ReconstructionMode::BlockNearest
        };
        let pool = BufferPool::poisoned(0x5A);
        let labels = vec![
            RegionLabel::new(seed % w, seed % h, 1 + seed % 9, 1 + seed % 7, 1 + seed % 4, 1 + seed % 3),
            RegionLabel::new((seed * 7) % w, (seed * 3) % h, 1 + seed % 5, 1 + seed % 11, 1, 2),
        ];
        let regions = RegionList::new_lossy(w, h, labels);
        let mut enc = RhythmicEncoder::with_pool(w, h, EncoderConfig::default(), pool.clone());
        let mut dec = SoftwareDecoder::with_pool(w, h, mode, pool.clone());
        let mut reference = ReferenceDecoder::new(w, h, mode);
        for idx in 0..3u64 {
            let frame = textured_frame(w, h, seed ^ idx as u32);
            let encoded = enc.encode(&frame, idx, &regions);
            let out = dec.decode(&encoded);
            prop_assert_eq!(&out, &reference.decode(&encoded));
            dec.recycle_output(out);
        }
    }
}

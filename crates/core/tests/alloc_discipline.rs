//! Allocation-discipline regression (ISSUE 7 satellite 3): once the
//! [`BufferPool`] is warm, the pooled encode→decode loop must be
//! zero-alloc per frame. A tallying global allocator counts every
//! `alloc`/`realloc` the process makes; the steady-state window after
//! warmup must count zero.
//!
//! This lives in its own integration-test binary because the global
//! allocator is process-wide — sharing it with other tests would let
//! their allocations bleed into the tally.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rpr_core::{
    BufferPool, EncoderConfig, ReconstructionMode, RegionLabel, RegionList, RhythmicEncoder,
    SoftwareDecoder,
};
use rpr_frame::{GrayFrame, Plane};

/// Passes through to the system allocator, counting every allocation
/// and reallocation (frees are free: returning a pooled buffer must
/// not count against the discipline).
struct TallyingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// rpr-check: allow(unsafe-block): implementing GlobalAlloc is inherently unsafe; this test-only shim adds a counter and delegates straight to System
unsafe impl GlobalAlloc for TallyingAllocator {
    // rpr-check: allow(unsafe-block): required signature of GlobalAlloc::alloc
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) } // rpr-check: allow(unsafe-block): forwards the caller's own safety contract to System
    }

    // rpr-check: allow(unsafe-block): required signature of GlobalAlloc::dealloc
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) } // rpr-check: allow(unsafe-block): forwards the caller's own safety contract to System
    }

    // rpr-check: allow(unsafe-block): required signature of GlobalAlloc::realloc
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) } // rpr-check: allow(unsafe-block): forwards the caller's own safety contract to System
    }
}

#[global_allocator]
static GLOBAL: TallyingAllocator = TallyingAllocator;

fn textured_frame(w: u32, h: u32, seed: u32) -> GrayFrame {
    Plane::from_fn(w, h, |x, y| (x.wrapping_mul(31) ^ y.wrapping_mul(17) ^ seed) as u8)
}

/// Mixed-rhythm region set exercising every status class per frame:
/// full-rate, strided, and temporally skipped regions.
fn regions(w: u32, h: u32) -> RegionList {
    RegionList::new_lossy(
        w,
        h,
        vec![
            RegionLabel::new(2, 2, w / 2, h / 2, 1, 1),
            RegionLabel::new(w / 3, h / 3, w / 2, h / 2, 2, 1),
            RegionLabel::new(0, h / 2, w, h / 4, 1, 2),
        ],
    )
}

#[test]
fn steady_state_encode_decode_is_zero_alloc() {
    let (w, h) = (64u32, 48u32);
    let pool = BufferPool::new();
    let regions = regions(w, h);
    let mut enc = RhythmicEncoder::with_pool(w, h, EncoderConfig::default(), pool.clone());
    let mut dec =
        SoftwareDecoder::with_pool(w, h, ReconstructionMode::BlockNearest, pool.clone());

    // Pre-build input frames so frame synthesis cannot allocate inside
    // the measured window.
    let frames: Vec<GrayFrame> = (0..4).map(|i| textured_frame(w, h, i)).collect();

    // Warmup: size the pool's buffers and every internal scratch
    // vector. Several passes over the inputs so both the encoder's and
    // the decoder's reuse paths have seen every shape they will see
    // again — including the post-eviction mix once the depth-4 history
    // starts recycling (its first eviction is at the fifth frame, and
    // the pool pops LIFO, so buffers may still grow for a few frames
    // after that while sizes shake out).
    for idx in 0..16u64 {
        let frame = &frames[(idx % 4) as usize];
        let encoded = enc.encode(frame, idx, &regions);
        let out = dec.decode_owned(encoded);
        dec.recycle_output(out);
    }

    // The tally is process-wide, so runtime machinery outside the loop
    // (test harness threads, lazy std init) can rarely contribute a
    // stray allocation. Measure independent 32-frame windows and
    // require at least one to be exactly zero: a real per-frame leak
    // allocates in EVERY window (≥32 calls), so it can never pass,
    // while unrelated one-off noise cannot flake the assertion.
    let mut idx = 16u64;
    let mut grew = u64::MAX;
    for _ in 0..5 {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        for _ in 0..32 {
            let frame = &frames[(idx % 4) as usize];
            let encoded = enc.encode(frame, idx, &regions);
            let out = dec.decode_owned(encoded);
            dec.recycle_output(out);
            idx += 1;
        }
        grew = ALLOC_CALLS.load(Ordering::Relaxed) - before;
        if grew == 0 {
            break;
        }
    }

    let stats = pool.stats();
    assert_eq!(
        grew, 0,
        "steady-state encode/decode kept allocating: {grew} heap allocations \
         in the last of five 32-frame windows (pool stats: {stats:?})"
    );
    // The loop really did go through the pool, not around it.
    assert!(stats.gets > 0, "pool was never used: {stats:?}");
}

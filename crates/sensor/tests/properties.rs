//! Property tests for the synthetic front end: determinism, geometry,
//! and link-model invariants.

use proptest::prelude::*;
use rpr_sensor::{
    CameraPose, CsiLink, CsiLinkConfig, ImageSensor, MotionPath, SensorConfig, Sprite,
    SpriteShape, TextureWorld, Trajectory,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// World generation and view rendering are pure functions of their
    /// inputs.
    #[test]
    fn rendering_is_deterministic(seed in 0u64..50, x in 100.0f64..400.0, y in 100.0f64..400.0,
                                  theta in -1.0f64..1.0) {
        let w1 = TextureWorld::generate(512, 512, seed);
        let w2 = TextureWorld::generate(512, 512, seed);
        let pose = CameraPose::new(x, y, theta);
        prop_assert_eq!(w1.render_view_gray(&pose, 48, 32), w2.render_view_gray(&pose, 48, 32));
    }

    /// Pose composition: delta_to / compose round-trip for arbitrary
    /// pose pairs.
    #[test]
    fn pose_algebra_roundtrips(ax in -100.0f64..100.0, ay in -100.0f64..100.0, at in -3.0f64..3.0,
                               bx in -100.0f64..100.0, by in -100.0f64..100.0, bt in -3.0f64..3.0) {
        let a = CameraPose::new(ax, ay, at);
        let b = CameraPose::new(bx, by, bt);
        let back = a.compose(&a.delta_to(&b));
        prop_assert!(back.distance(&b) < 1e-9);
    }

    /// Trajectories always respect their margins and never teleport.
    #[test]
    fn trajectories_are_bounded_and_smooth(seed in 0u64..30, frames in 10usize..80) {
        let t = Trajectory::generate(1200, 900, frames, 150, seed);
        prop_assert_eq!(t.len(), frames);
        for p in t.poses() {
            prop_assert!(p.x >= 150.0 && p.x <= 1050.0);
            prop_assert!(p.y >= 150.0 && p.y <= 750.0);
        }
        for w in t.poses().windows(2) {
            prop_assert!(w[0].distance(&w[1]) < 12.0);
        }
    }

    /// Sprite bounding boxes always contain every pixel the sprite
    /// draws.
    #[test]
    fn sprite_bbox_covers_drawn_pixels(cx in 0.0f64..96.0, cy in 0.0f64..64.0,
                                       w in 6u32..24, h in 6u32..24, shape_pick in 0u8..3) {
        let shape = match shape_pick {
            0 => SpriteShape::Face,
            1 => SpriteShape::Disc,
            _ => SpriteShape::TexturedRect,
        };
        let sprite = Sprite::new(shape, w, h, MotionPath::Fixed { x: cx, y: cy });
        let mut frame: rpr_frame::GrayFrame = rpr_frame::Plane::new(96, 64);
        sprite.draw(&mut frame, 0);
        let bbox = sprite.bbox(0, 96, 64);
        for y in 0..64 {
            for x in 0..96 {
                if frame.get(x, y) != Some(0) {
                    let b = bbox.expect("drawn pixels imply a bbox");
                    prop_assert!(b.contains(x, y), "pixel ({x},{y}) outside {b}");
                }
            }
        }
    }

    /// Sensor captures are deterministic per (seed, frame index) and
    /// the CFA passes the native channel untouched in the noiseless
    /// configuration.
    #[test]
    fn sensor_determinism(seed in 0u64..20, idx in 0u64..10) {
        let cfg = SensorConfig { width: 16, height: 16, read_noise_sigma: 2.0, seed };
        let sensor = ImageSensor::new(cfg);
        let scene = rpr_frame::RgbFrame::from_fn(16, 16, |x, y| [x as u8 * 9, y as u8 * 7, 100]);
        prop_assert_eq!(sensor.capture(&scene, idx), sensor.capture(&scene, idx));
    }

    /// CSI accounting: total bytes grow monotonically with resolution,
    /// and an encoded frame never costs more than the raster frame that
    /// produced it.
    #[test]
    fn csi_monotonicity(w in 2u32..512, h in 2u32..512, keep_pct in 0u64..101) {
        let link = CsiLink::new(CsiLinkConfig::default());
        let full = link.frame_traffic(w * 2, h, 1);
        let half = link.frame_traffic(w, h, 1);
        prop_assert!(full.total_bytes() > half.total_bytes());

        let lines: Vec<u64> = (0..h)
            .map(|_| u64::from(w) * keep_pct / 100)
            .collect();
        let encoded = link.encoded_frame_traffic(&lines, 0);
        prop_assert!(encoded.total_bytes() <= half.total_bytes());
    }
}

//! MIPI CSI-2 link model (the sensor-to-SoC interface of paper §2 and
//! the "Rhythmic Pixel Camera" future direction of §7).
//!
//! CSI-2 moves each video line as a *long packet* — a 4-byte header
//! (data ID, 16-bit word count, ECC), the payload, and a 2-byte CRC
//! footer — bracketed by 4-byte frame-start/frame-end short packets,
//! with the byte stream distributed over 1–4 serial lanes. The model
//! computes per-frame byte counts and sustainable frame rates, which
//! the placement analysis in `rpr-memsim` uses to price moving the
//! encoder inside the camera module.

use serde::{Deserialize, Serialize};

/// CSI-2 link configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CsiLinkConfig {
    /// Number of data lanes (1–4 in CSI-2 v1.x).
    pub lanes: u32,
    /// Per-lane line rate in gigabits per second.
    pub gbps_per_lane: f64,
}

impl Default for CsiLinkConfig {
    fn default() -> Self {
        // A 4-lane, 1.5 Gbps/lane link — IMX274-class.
        CsiLinkConfig { lanes: 4, gbps_per_lane: 1.5 }
    }
}

/// Byte accounting for one frame on the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsiFrameTraffic {
    /// Pixel payload bytes.
    pub payload_bytes: u64,
    /// Packet header/footer/short-packet protocol bytes.
    pub protocol_bytes: u64,
}

impl CsiFrameTraffic {
    /// Total bytes on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.payload_bytes + self.protocol_bytes
    }

    /// Protocol overhead as a fraction of the payload.
    pub fn overhead_fraction(&self) -> f64 {
        if self.payload_bytes == 0 {
            0.0
        } else {
            self.protocol_bytes as f64 / self.payload_bytes as f64
        }
    }
}

/// The CSI-2 link model.
///
/// # Example
///
/// ```
/// use rpr_sensor::{CsiLink, CsiLinkConfig};
///
/// let link = CsiLink::new(CsiLinkConfig::default());
/// let t = link.frame_traffic(1920, 1080, 1);
/// assert!(t.overhead_fraction() < 0.01); // long lines amortize headers
/// assert!(link.max_fps(3840, 2160, 1) > 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CsiLink {
    config: CsiLinkConfig,
}

/// Long-packet header bytes (data ID + word count + ECC).
const LONG_PACKET_HEADER: u64 = 4;
/// Long-packet footer bytes (CRC-16).
const LONG_PACKET_FOOTER: u64 = 2;
/// Short packet bytes (frame start / frame end).
const SHORT_PACKET: u64 = 4;

impl CsiLink {
    /// Creates a link model.
    pub fn new(config: CsiLinkConfig) -> Self {
        CsiLink { config }
    }

    /// The link configuration.
    pub fn config(&self) -> CsiLinkConfig {
        self.config
    }

    /// Aggregate link bandwidth in bytes per second.
    pub fn bandwidth_bytes_s(&self) -> f64 {
        f64::from(self.config.lanes) * self.config.gbps_per_lane * 1.0e9 / 8.0
    }

    /// Bytes one raster frame occupies on the wire: one long packet per
    /// line plus the frame-start/end short packets.
    pub fn frame_traffic(&self, width: u32, height: u32, bytes_per_pixel: u32) -> CsiFrameTraffic {
        let payload = u64::from(width) * u64::from(height) * u64::from(bytes_per_pixel);
        let protocol = u64::from(height) * (LONG_PACKET_HEADER + LONG_PACKET_FOOTER)
            + 2 * SHORT_PACKET;
        CsiFrameTraffic { payload_bytes: payload, protocol_bytes: protocol }
    }

    /// Bytes an *encoded* frame occupies when the rhythmic encoder sits
    /// inside the camera (§7 "Rhythmic Pixel Camera"): one long packet
    /// per non-empty line of encoded pixels, plus a metadata packet
    /// stream. Empty lines cost nothing on the wire.
    pub fn encoded_frame_traffic(
        &self,
        line_payload_bytes: &[u64],
        metadata_bytes: u64,
    ) -> CsiFrameTraffic {
        let payload: u64 = line_payload_bytes.iter().sum::<u64>() + metadata_bytes;
        let nonempty_lines = line_payload_bytes.iter().filter(|&&b| b > 0).count() as u64;
        // Metadata ships as extra long packets of up to 4 KiB.
        let metadata_packets = metadata_bytes.div_ceil(4096);
        let protocol = (nonempty_lines + metadata_packets)
            * (LONG_PACKET_HEADER + LONG_PACKET_FOOTER)
            + 2 * SHORT_PACKET;
        CsiFrameTraffic { payload_bytes: payload, protocol_bytes: protocol }
    }

    /// Seconds one frame needs on the wire.
    pub fn frame_time_s(&self, traffic: &CsiFrameTraffic) -> f64 {
        traffic.total_bytes() as f64 / self.bandwidth_bytes_s()
    }

    /// Maximum frame rate for a raster frame of the given geometry.
    pub fn max_fps(&self, width: u32, height: u32, bytes_per_pixel: u32) -> f64 {
        1.0 / self.frame_time_s(&self.frame_traffic(width, height, bytes_per_pixel))
    }

    /// Link utilization in `[0, 1]` at a target frame rate.
    pub fn utilization(&self, traffic: &CsiFrameTraffic, fps: f64) -> f64 {
        self.frame_time_s(traffic) * fps
    }
}

impl Default for CsiLink {
    fn default() -> Self {
        CsiLink::new(CsiLinkConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raster_frame_accounting() {
        let link = CsiLink::default();
        let t = link.frame_traffic(640, 480, 1);
        assert_eq!(t.payload_bytes, 640 * 480);
        assert_eq!(t.protocol_bytes, 480 * 6 + 8);
        assert!(t.overhead_fraction() < 0.01);
    }

    #[test]
    fn link_supports_4k60_rgb() {
        let link = CsiLink::default();
        // 4 x 1.5 Gbps = 750 MB/s; 4K RGB888 at 60 fps = ~1.5 GB/s is
        // too much, but Bayer RAW8 (1 B/px) fits comfortably.
        assert!(link.max_fps(3840, 2160, 1) > 60.0);
        assert!(link.max_fps(3840, 2160, 3) < 60.0);
    }

    #[test]
    fn encoded_frames_skip_empty_lines() {
        let link = CsiLink::default();
        let full = link.frame_traffic(640, 480, 1);
        // Only 100 of 480 lines carry pixels.
        let lines: Vec<u64> = (0..480).map(|i| if i < 100 { 640 } else { 0 }).collect();
        let encoded = link.encoded_frame_traffic(&lines, 0);
        assert_eq!(encoded.payload_bytes, 100 * 640);
        assert!(encoded.protocol_bytes < full.protocol_bytes);
        assert!(encoded.total_bytes() < full.total_bytes() / 4);
    }

    #[test]
    fn metadata_ships_in_4k_packets() {
        let link = CsiLink::default();
        let t = link.encoded_frame_traffic(&[], 10_000);
        assert_eq!(t.payload_bytes, 10_000);
        // ceil(10000 / 4096) = 3 metadata packets + frame start/end.
        assert_eq!(t.protocol_bytes, 3 * 6 + 8);
    }

    #[test]
    fn utilization_scales_with_fps() {
        let link = CsiLink::default();
        let t = link.frame_traffic(1920, 1080, 1);
        let u30 = link.utilization(&t, 30.0);
        let u60 = link.utilization(&t, 60.0);
        assert!((u60 / u30 - 2.0).abs() < 1e-9);
        assert!(u30 < 0.1);
    }
}

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rpr_frame::{GrayFrame, Plane, RgbFrame};
use serde::{Deserialize, Serialize};

/// Static configuration of the modeled image sensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorConfig {
    /// Output width in pixels.
    pub width: u32,
    /// Output height in pixels.
    pub height: u32,
    /// Standard deviation of additive Gaussian read noise (DN).
    pub read_noise_sigma: f64,
    /// Per-capture seed mix so noise differs frame to frame but stays
    /// reproducible.
    pub seed: u64,
}

impl SensorConfig {
    /// A clean, noise-free sensor (useful for exactness tests).
    pub fn noiseless(width: u32, height: u32) -> Self {
        SensorConfig { width, height, read_noise_sigma: 0.0, seed: 0 }
    }
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig { width: 640, height: 480, read_noise_sigma: 1.5, seed: 0 }
    }
}

/// Timing model of the raster-scan read-out (pixel clock plus blanking),
/// standing in for the MIPI CSI-2 link budget of the paper's IMX274.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorTiming {
    /// Pixel clock in Hz.
    pub pixel_clock_hz: f64,
    /// Horizontal blanking interval, in pixel clocks per row.
    pub hblank_px: u32,
    /// Vertical blanking interval, in row times per frame.
    pub vblank_rows: u32,
}

impl Default for SensorTiming {
    fn default() -> Self {
        // 4K60-class sensor: ~600 Mpx/s keeps 3840x2160x60 with blanking.
        SensorTiming { pixel_clock_hz: 600.0e6, hblank_px: 128, vblank_rows: 24 }
    }
}

impl SensorTiming {
    /// Read-out time of one row of `width` active pixels, in seconds.
    pub fn row_time_s(&self, width: u32) -> f64 {
        f64::from(width + self.hblank_px) / self.pixel_clock_hz
    }

    /// Read-out time of one `width x height` frame, in seconds.
    pub fn frame_time_s(&self, width: u32, height: u32) -> f64 {
        self.row_time_s(width) * f64::from(height + self.vblank_rows)
    }

    /// Maximum sustainable frame rate for a `width x height` frame.
    pub fn max_fps(&self, width: u32, height: u32) -> f64 {
        1.0 / self.frame_time_s(width, height)
    }
}

/// A Bayer-pattern (RGGB) image sensor model.
///
/// Captures an RGB scene rendering into single-channel raw data by
/// sampling the colour-filter array, adds seeded Gaussian read noise,
/// and exposes the raster-scan ordering the downstream pipeline
/// consumes. The paper's encoder sits *after* the ISP, so the raw frame
/// normally flows through `rpr-isp` before encoding.
///
/// # Example
///
/// ```
/// use rpr_frame::RgbFrame;
/// use rpr_sensor::{ImageSensor, SensorConfig};
///
/// let sensor = ImageSensor::new(SensorConfig::noiseless(4, 4));
/// let scene = RgbFrame::from_fn(4, 4, |_, _| [200, 100, 50]);
/// let raw = sensor.capture(&scene, 0);
/// assert_eq!(raw.get(0, 0), Some(200)); // R site
/// assert_eq!(raw.get(1, 0), Some(100)); // G site
/// assert_eq!(raw.get(1, 1), Some(50));  // B site
/// ```
#[derive(Debug, Clone)]
pub struct ImageSensor {
    config: SensorConfig,
    timing: SensorTiming,
}

impl ImageSensor {
    /// Creates a sensor with default timing.
    pub fn new(config: SensorConfig) -> Self {
        ImageSensor { config, timing: SensorTiming::default() }
    }

    /// Creates a sensor with explicit timing.
    pub fn with_timing(config: SensorConfig, timing: SensorTiming) -> Self {
        ImageSensor { config, timing }
    }

    /// The sensor configuration.
    pub fn config(&self) -> &SensorConfig {
        &self.config
    }

    /// The read-out timing model.
    pub fn timing(&self) -> &SensorTiming {
        &self.timing
    }

    /// Which colour the RGGB filter passes at `(x, y)`:
    /// 0 = R, 1 = G, 2 = B.
    #[inline]
    pub fn cfa_channel(x: u32, y: u32) -> usize {
        match (y % 2, x % 2) {
            (0, 0) => 0,
            (0, 1) | (1, 0) => 1,
            _ => 2,
        }
    }

    /// Captures `scene` into Bayer raw data for frame `frame_idx`.
    ///
    /// # Panics
    ///
    /// Panics when the scene size differs from the sensor resolution.
    pub fn capture(&self, scene: &RgbFrame, frame_idx: u64) -> GrayFrame {
        assert_eq!(
            (scene.width(), scene.height()),
            (self.config.width, self.config.height),
            "scene does not match sensor resolution"
        );
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.config.seed ^ frame_idx.wrapping_mul(0x9E37));
        let sigma = self.config.read_noise_sigma;
        Plane::from_fn(self.config.width, self.config.height, |x, y| {
            let px = scene.get(x, y).expect("in-bounds");
            let v = f64::from(px[Self::cfa_channel(x, y)]);
            let noisy = if sigma > 0.0 {
                v + gaussian(&mut rng) * sigma
            } else {
                v
            };
            noisy.round().clamp(0.0, 255.0) as u8
        })
    }

    /// Bytes this frame moves over the sensor interface (CSI): 1 byte
    /// per raw pixel in the 8-bit model.
    pub fn csi_bytes_per_frame(&self) -> usize {
        self.config.width as usize * self.config.height as usize
    }
}

/// Box–Muller standard normal deviate.
fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfa_pattern_is_rggb() {
        assert_eq!(ImageSensor::cfa_channel(0, 0), 0);
        assert_eq!(ImageSensor::cfa_channel(1, 0), 1);
        assert_eq!(ImageSensor::cfa_channel(0, 1), 1);
        assert_eq!(ImageSensor::cfa_channel(1, 1), 2);
        assert_eq!(ImageSensor::cfa_channel(2, 2), 0);
    }

    #[test]
    fn noiseless_capture_samples_cfa_exactly() {
        let sensor = ImageSensor::new(SensorConfig::noiseless(4, 4));
        let scene = RgbFrame::from_fn(4, 4, |_, _| [10, 20, 30]);
        let raw = sensor.capture(&scene, 0);
        assert_eq!(raw.get(0, 0), Some(10));
        assert_eq!(raw.get(1, 0), Some(20));
        assert_eq!(raw.get(0, 1), Some(20));
        assert_eq!(raw.get(1, 1), Some(30));
    }

    #[test]
    fn noise_is_deterministic_per_frame_index() {
        let cfg = SensorConfig { width: 8, height: 8, read_noise_sigma: 3.0, seed: 5 };
        let sensor = ImageSensor::new(cfg);
        let scene = RgbFrame::from_fn(8, 8, |_, _| [128, 128, 128]);
        assert_eq!(sensor.capture(&scene, 2), sensor.capture(&scene, 2));
        assert_ne!(sensor.capture(&scene, 2), sensor.capture(&scene, 3));
    }

    #[test]
    fn noise_magnitude_is_plausible() {
        let cfg = SensorConfig { width: 32, height: 32, read_noise_sigma: 2.0, seed: 1 };
        let sensor = ImageSensor::new(cfg);
        let scene = RgbFrame::from_fn(32, 32, |_, _| [128, 128, 128]);
        let raw = sensor.capture(&scene, 0);
        let mean = raw.mean();
        assert!((mean - 128.0).abs() < 1.0, "mean {mean}");
        let max_dev = raw
            .as_slice()
            .iter()
            .map(|&v| (f64::from(v) - 128.0).abs())
            .fold(0.0, f64::max);
        assert!(max_dev > 0.5 && max_dev < 20.0, "max deviation {max_dev}");
    }

    #[test]
    fn timing_supports_4k60() {
        let t = SensorTiming::default();
        let fps = t.max_fps(3840, 2160);
        assert!(fps >= 60.0, "4K max fps {fps}");
    }

    #[test]
    fn timing_row_and_frame_relate() {
        let t = SensorTiming::default();
        let row = t.row_time_s(1920);
        let frame = t.frame_time_s(1920, 1080);
        assert!((frame / row - f64::from(1080 + t.vblank_rows)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn capture_rejects_size_mismatch() {
        let sensor = ImageSensor::new(SensorConfig::noiseless(4, 4));
        let scene = RgbFrame::new(8, 8);
        sensor.capture(&scene, 0);
    }
}

//! Synthetic visual front end: procedurally generated scenes, a
//! Bayer-pattern image sensor model, and raster-scan pixel streaming.
//!
//! This crate substitutes for the hardware the paper evaluates with — a
//! Sony IMX274 camera streaming over MIPI CSI-2 — while preserving the
//! property the rhythmic pixel encoder actually depends on: pixels
//! arrive as a dense raster scan, row by row, left to right. Scenes are
//! deterministic functions of a seed and a frame index, so every
//! experiment has exact ground truth (camera poses, sprite bounding
//! boxes) for the accuracy metrics.
//!
//! # Example
//!
//! ```
//! use rpr_sensor::{CameraPose, TextureWorld};
//!
//! let world = TextureWorld::generate(512, 512, 42);
//! let view = world.render_view(&CameraPose::new(256.0, 256.0, 0.1), 64, 48);
//! assert_eq!(view.width(), 64);
//! ```

#![deny(missing_docs)]

mod camera;
mod csi;
mod noise;
mod sensor;
mod sprite;
mod stream;
mod trajectory;
mod world;

pub use camera::CameraPose;
pub use csi::{CsiFrameTraffic, CsiLink, CsiLinkConfig};
pub use noise::ValueNoise;
pub use sensor::{ImageSensor, SensorConfig, SensorTiming};
pub use sprite::{MotionPath, Sprite, SpriteShape};
pub use stream::{PixelEvent, RasterScanStream};
pub use trajectory::Trajectory;
pub use world::TextureWorld;

use serde::{Deserialize, Serialize};
use std::fmt;

/// A planar camera pose: the world coordinates of the view centre and
/// an in-plane rotation.
///
/// The synthetic SLAM benchmark is a camera translating and rotating
/// over a large textured plane (a top-down "planar SLAM" abstraction of
/// the paper's indoor sequences); the pose triple `(x, y, theta)` is the
/// exact ground truth the trajectory-error metrics compare against.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CameraPose {
    /// World x of the view centre.
    pub x: f64,
    /// World y of the view centre.
    pub y: f64,
    /// In-plane rotation in radians (counter-clockwise).
    pub theta: f64,
}

impl CameraPose {
    /// Creates a pose.
    pub fn new(x: f64, y: f64, theta: f64) -> Self {
        CameraPose { x, y, theta }
    }

    /// Maps a view-space offset (relative to the view centre) into
    /// world coordinates under this pose.
    pub fn view_to_world(&self, vx: f64, vy: f64) -> (f64, f64) {
        let (s, c) = self.theta.sin_cos();
        (self.x + c * vx - s * vy, self.y + s * vx + c * vy)
    }

    /// The relative pose taking `self` to `other`, expressed in
    /// `self`'s frame: the transform a visual-odometry front end
    /// estimates between consecutive frames.
    pub fn delta_to(&self, other: &CameraPose) -> CameraPose {
        let dx = other.x - self.x;
        let dy = other.y - self.y;
        let (s, c) = (-self.theta).sin_cos();
        CameraPose {
            x: c * dx - s * dy,
            y: s * dx + c * dy,
            theta: normalize_angle(other.theta - self.theta),
        }
    }

    /// Composes this pose with a relative pose expressed in this pose's
    /// frame (the inverse of [`CameraPose::delta_to`]).
    pub fn compose(&self, delta: &CameraPose) -> CameraPose {
        let (s, c) = self.theta.sin_cos();
        CameraPose {
            x: self.x + c * delta.x - s * delta.y,
            y: self.y + s * delta.x + c * delta.y,
            theta: normalize_angle(self.theta + delta.theta),
        }
    }

    /// Euclidean distance between two poses' positions.
    pub fn distance(&self, other: &CameraPose) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

impl fmt::Display for CameraPose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2}, {:.4} rad)", self.x, self.y, self.theta)
    }
}

/// Wraps an angle into `(-pi, pi]`.
pub(crate) fn normalize_angle(theta: f64) -> f64 {
    let mut t = theta % (2.0 * std::f64::consts::PI);
    if t > std::f64::consts::PI {
        t -= 2.0 * std::f64::consts::PI;
    } else if t <= -std::f64::consts::PI {
        t += 2.0 * std::f64::consts::PI;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn view_to_world_identity_at_zero_rotation() {
        let p = CameraPose::new(100.0, 50.0, 0.0);
        assert_eq!(p.view_to_world(3.0, 4.0), (103.0, 54.0));
    }

    #[test]
    fn view_to_world_rotates() {
        let p = CameraPose::new(0.0, 0.0, FRAC_PI_2);
        let (wx, wy) = p.view_to_world(1.0, 0.0);
        assert!((wx - 0.0).abs() < 1e-12);
        assert!((wy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delta_then_compose_roundtrips() {
        let a = CameraPose::new(10.0, 20.0, 0.3);
        let b = CameraPose::new(12.0, 19.0, 0.7);
        let d = a.delta_to(&b);
        let back = a.compose(&d);
        assert!(back.distance(&b) < 1e-9);
        assert!((normalize_angle(back.theta - b.theta)).abs() < 1e-9);
    }

    #[test]
    fn angle_normalization_wraps() {
        assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert_eq!(normalize_angle(0.5), 0.5);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = CameraPose::new(0.0, 0.0, 0.0);
        let b = CameraPose::new(3.0, 4.0, 1.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }
}

use crate::camera::normalize_angle;
use crate::CameraPose;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A smooth, deterministic camera trajectory over a world plane.
///
/// Trajectories are piecewise-smoothed random walks: waypoints are drawn
/// from a seeded RNG inside a margin-inset box of the world, and poses
/// interpolate between them with smoothstep easing so per-frame motion
/// is continuous (no teleporting — visual odometry must be able to track
/// it). Rotation drifts slowly and independently.
///
/// # Example
///
/// ```
/// use rpr_sensor::Trajectory;
///
/// let traj = Trajectory::generate(2048, 2048, 120, 300, 7);
/// assert_eq!(traj.len(), 120);
/// let step = traj.pose(0).distance(&traj.pose(1));
/// assert!(step < 20.0);
/// ```
#[derive(Debug, Clone)]
pub struct Trajectory {
    poses: Vec<CameraPose>,
}

impl Trajectory {
    /// Generates `frames` poses over a `world_w x world_h` world,
    /// keeping at least `margin` pixels from the edge, seeded by `seed`.
    pub fn generate(world_w: u32, world_h: u32, frames: usize, margin: u32, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let lo_x = f64::from(margin);
        let hi_x = f64::from(world_w.saturating_sub(margin)).max(lo_x + 1.0);
        let lo_y = f64::from(margin);
        let hi_y = f64::from(world_h.saturating_sub(margin)).max(lo_y + 1.0);

        // Waypoints every ~40 frames, as a bounded random walk so the
        // per-frame motion stays trackable by visual odometry.
        let segment = 40usize;
        let max_hop = 220.0;
        let n_waypoints = frames / segment + 2;
        let mut waypoints: Vec<(f64, f64)> =
            vec![(rng.gen_range(lo_x..hi_x), rng.gen_range(lo_y..hi_y))];
        for _ in 1..n_waypoints {
            let (px, py) = *waypoints.last().expect("non-empty");
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let hop = rng.gen_range(0.3..1.0) * max_hop;
            let x = (px + angle.cos() * hop).clamp(lo_x, hi_x);
            let y = (py + angle.sin() * hop).clamp(lo_y, hi_y);
            waypoints.push((x, y));
        }

        let mut theta: f64 = rng.gen_range(-0.3..0.3);
        let mut omega: f64 = 0.0;
        let mut poses = Vec::with_capacity(frames);
        for i in 0..frames {
            let seg = i / segment;
            let t = (i % segment) as f64 / segment as f64;
            let ease = t * t * (3.0 - 2.0 * t);
            let (x0, y0) = waypoints[seg];
            let (x1, y1) = waypoints[seg + 1];
            let x = x0 + (x1 - x0) * ease;
            let y = y0 + (y1 - y0) * ease;
            // Rotation: damped random angular acceleration.
            omega = 0.9 * omega + rng.gen_range(-0.002..0.002);
            theta = normalize_angle(theta + omega);
            poses.push(CameraPose::new(x, y, theta));
        }
        Trajectory { poses }
    }

    /// Builds a trajectory from explicit poses (e.g. replaying the
    /// paper's fixed sequences).
    pub fn from_poses(poses: Vec<CameraPose>) -> Self {
        Trajectory { poses }
    }

    /// A constant-velocity global pan: the camera starts at
    /// `(x, y)` and translates by `(vx, vy)` px every frame with a
    /// fixed heading — the moving-camera scenario the reactive t−1
    /// policy systematically lags on.
    pub fn pan(x: f64, y: f64, vx: f64, vy: f64, frames: usize) -> Self {
        let poses = (0..frames)
            .map(|i| {
                let t = i as f64;
                CameraPose::new(x + vx * t, y + vy * t, 0.0)
            })
            .collect();
        Trajectory { poses }
    }

    /// Handheld jitter around `(x, y)`: a seeded sum of two
    /// incommensurate sinusoids per axis (slow sway + faster tremor)
    /// plus small seeded noise, with matching low-amplitude roll. The
    /// per-frame motion is bounded by ~`amplitude`, so visual odometry
    /// stays locked while the labels still smear without prediction.
    pub fn handheld(x: f64, y: f64, frames: usize, amplitude: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Seeded phases decorrelate the axes between scenario seeds.
        let phase_x = rng.gen_range(0.0..std::f64::consts::TAU);
        let phase_y = rng.gen_range(0.0..std::f64::consts::TAU);
        let phase_roll = rng.gen_range(0.0..std::f64::consts::TAU);
        let poses = (0..frames)
            .map(|i| {
                let t = i as f64;
                let sway_x = (t * 0.11 + phase_x).sin() + 0.4 * (t * 0.43 + phase_y).sin();
                let sway_y = (t * 0.09 + phase_y).cos() + 0.4 * (t * 0.37 + phase_x).cos();
                let noise_x = rng.gen_range(-0.15..0.15);
                let noise_y = rng.gen_range(-0.15..0.15);
                let roll = 0.01 * (t * 0.07 + phase_roll).sin();
                CameraPose::new(
                    x + amplitude * (sway_x + noise_x),
                    y + amplitude * (sway_y + noise_y),
                    normalize_angle(roll),
                )
            })
            .collect();
        Trajectory { poses }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.poses.len()
    }

    /// True when the trajectory holds no poses.
    pub fn is_empty(&self) -> bool {
        self.poses.is_empty()
    }

    /// Ground-truth pose of frame `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx >= len()`.
    pub fn pose(&self, idx: usize) -> CameraPose {
        self.poses[idx]
    }

    /// All poses in frame order.
    pub fn poses(&self) -> &[CameraPose] {
        &self.poses
    }

    /// Mean per-frame translation speed (px/frame) — used to sanity
    /// check scene-motion assumptions in the experiments.
    pub fn mean_speed(&self) -> f64 {
        if self.poses.len() < 2 {
            return 0.0;
        }
        let total: f64 = self
            .poses
            .windows(2)
            .map(|w| w[0].distance(&w[1]))
            .sum();
        total / (self.poses.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = Trajectory::generate(1000, 1000, 50, 100, 3);
        let b = Trajectory::generate(1000, 1000, 50, 100, 3);
        assert_eq!(a.poses(), b.poses());
    }

    #[test]
    fn stays_inside_margins() {
        let t = Trajectory::generate(1000, 800, 200, 150, 11);
        for p in t.poses() {
            assert!(p.x >= 150.0 && p.x <= 850.0, "x={}", p.x);
            assert!(p.y >= 150.0 && p.y <= 650.0, "y={}", p.y);
        }
    }

    #[test]
    fn motion_is_smooth() {
        let t = Trajectory::generate(2000, 2000, 300, 200, 5);
        for w in t.poses().windows(2) {
            assert!(w[0].distance(&w[1]) < 10.0, "jump {}", w[0].distance(&w[1]));
            let dtheta = (w[1].theta - w[0].theta).abs();
            assert!(!(0.1..=6.0).contains(&dtheta), "spin {dtheta}");
        }
    }

    #[test]
    fn trajectory_actually_moves() {
        let t = Trajectory::generate(2000, 2000, 300, 200, 6);
        assert!(t.mean_speed() > 0.5, "mean speed {}", t.mean_speed());
    }

    #[test]
    fn pan_is_constant_velocity() {
        let t = Trajectory::pan(300.0, 400.0, 2.5, -1.0, 60);
        assert_eq!(t.len(), 60);
        for w in t.poses().windows(2) {
            assert!((w[1].x - w[0].x - 2.5).abs() < 1e-9);
            assert!((w[1].y - w[0].y + 1.0).abs() < 1e-9);
            assert_eq!(w[0].theta, 0.0);
        }
        assert!((t.mean_speed() - (2.5f64 * 2.5 + 1.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn handheld_jitters_near_anchor_deterministically() {
        let a = Trajectory::handheld(500.0, 500.0, 120, 6.0, 9);
        let b = Trajectory::handheld(500.0, 500.0, 120, 6.0, 9);
        assert_eq!(a.poses(), b.poses());
        assert!(a.mean_speed() > 0.1, "mean speed {}", a.mean_speed());
        for p in a.poses() {
            assert!((p.x - 500.0).abs() <= 6.0 * 1.6, "x={}", p.x);
            assert!((p.y - 500.0).abs() <= 6.0 * 1.6, "y={}", p.y);
            assert!(p.theta.abs() < 0.02);
        }
        let c = Trajectory::handheld(500.0, 500.0, 120, 6.0, 10);
        assert_ne!(a.poses(), c.poses(), "seed must matter");
    }

    #[test]
    fn from_poses_replays_exactly() {
        let poses = vec![CameraPose::new(1.0, 2.0, 0.0), CameraPose::new(3.0, 4.0, 0.1)];
        let t = Trajectory::from_poses(poses.clone());
        assert_eq!(t.len(), 2);
        assert_eq!(t.pose(1), poses[1]);
    }
}

//! Deterministic lattice value noise used to texture synthetic worlds.

/// Seeded, deterministic multi-octave value noise.
///
/// Values are produced by hashing integer lattice points and bilinearly
/// interpolating between them; summing octaves gives the natural-looking
/// texture richness the feature detectors need. The same
/// `(seed, x, y)` always yields the same value on every platform.
///
/// # Example
///
/// ```
/// use rpr_sensor::ValueNoise;
///
/// let n = ValueNoise::new(7);
/// let a = n.fbm(10.5, 3.25, 4, 0.02);
/// let b = n.fbm(10.5, 3.25, 4, 0.02);
/// assert_eq!(a, b);
/// assert!((0.0..=1.0).contains(&a));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ValueNoise {
    seed: u64,
}

impl ValueNoise {
    /// Creates a noise field from a seed.
    pub fn new(seed: u64) -> Self {
        ValueNoise { seed }
    }

    /// Hash of an integer lattice point into `[0, 1)`.
    fn lattice(&self, x: i64, y: i64) -> f64 {
        // SplitMix64-style avalanche over the packed coordinates.
        let mut z = self
            .seed
            .wrapping_add((x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((y as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Smoothly interpolated noise at a continuous coordinate, in
    /// `[0, 1)`.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        // Smoothstep fade for C1 continuity.
        let sx = fx * fx * (3.0 - 2.0 * fx);
        let sy = fy * fy * (3.0 - 2.0 * fy);
        let (x0, y0) = (x0 as i64, y0 as i64);
        let v00 = self.lattice(x0, y0);
        let v10 = self.lattice(x0 + 1, y0);
        let v01 = self.lattice(x0, y0 + 1);
        let v11 = self.lattice(x0 + 1, y0 + 1);
        let top = v00 + (v10 - v00) * sx;
        let bot = v01 + (v11 - v01) * sx;
        top + (bot - top) * sy
    }

    /// Fractal Brownian motion: `octaves` layers of [`sample`] at
    /// doubling frequency and halving amplitude, normalized to `[0, 1]`.
    ///
    /// [`sample`]: ValueNoise::sample
    pub fn fbm(&self, x: f64, y: f64, octaves: u32, base_frequency: f64) -> f64 {
        let mut total = 0.0;
        let mut amplitude = 1.0;
        let mut frequency = base_frequency;
        let mut norm = 0.0;
        for octave in 0..octaves.max(1) {
            let shifted = ValueNoise::new(self.seed.wrapping_add(u64::from(octave) * 0x5851));
            total += amplitude * shifted.sample(x * frequency, y * frequency);
            norm += amplitude;
            amplitude *= 0.5;
            frequency *= 2.0;
        }
        (total / norm).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let n = ValueNoise::new(123);
        assert_eq!(n.sample(4.7, 9.1), n.sample(4.7, 9.1));
        assert_eq!(n.fbm(4.7, 9.1, 5, 0.1), n.fbm(4.7, 9.1, 5, 0.1));
    }

    #[test]
    fn different_seeds_differ() {
        let a = ValueNoise::new(1).sample(3.5, 3.5);
        let b = ValueNoise::new(2).sample(3.5, 3.5);
        assert_ne!(a, b);
    }

    #[test]
    fn range_is_unit_interval() {
        let n = ValueNoise::new(99);
        for i in 0..200 {
            let v = n.fbm(i as f64 * 0.37, i as f64 * 0.73, 4, 0.05);
            assert!((0.0..=1.0).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn interpolation_is_continuous() {
        let n = ValueNoise::new(5);
        let a = n.sample(10.0, 10.0);
        let b = n.sample(10.001, 10.0);
        assert!((a - b).abs() < 0.01, "discontinuity: {a} vs {b}");
    }

    #[test]
    fn texture_has_contrast() {
        // The noise must actually vary, or the vision stack has nothing
        // to detect.
        let n = ValueNoise::new(11);
        let values: Vec<f64> =
            (0..100).map(|i| n.fbm(i as f64 * 1.7, i as f64 * 0.9, 4, 0.05)).collect();
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.3, "flat texture: {min}..{max}");
    }
}

use rpr_frame::{GrayFrame, Rect};
use serde::{Deserialize, Serialize};

/// How a sprite moves across the scene over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MotionPath {
    /// Stationary at `(x, y)`.
    Fixed {
        /// Centre x.
        x: f64,
        /// Centre y.
        y: f64,
    },
    /// Constant velocity with elastic bounce inside `(0..w, 0..h)`.
    Bounce {
        /// Start x.
        x0: f64,
        /// Start y.
        y0: f64,
        /// Velocity x in px/frame.
        vx: f64,
        /// Velocity y in px/frame.
        vy: f64,
        /// Bounce-box width.
        w: f64,
        /// Bounce-box height.
        h: f64,
    },
    /// Sinusoidal sway around a centre, like a person shifting weight.
    Sway {
        /// Centre x.
        cx: f64,
        /// Centre y.
        cy: f64,
        /// Horizontal amplitude.
        ax: f64,
        /// Vertical amplitude.
        ay: f64,
        /// Angular speed in radians/frame.
        omega: f64,
    },
    /// Constant velocity without bounce — sprites that enter and leave
    /// the scene (the paper's face-detection sequences have faces walking
    /// through a choke point).
    Linear {
        /// Start x.
        x0: f64,
        /// Start y.
        y0: f64,
        /// Velocity x in px/frame.
        vx: f64,
        /// Velocity y in px/frame.
        vy: f64,
    },
}

impl MotionPath {
    /// Centre position at `frame_idx`.
    pub fn position(&self, frame_idx: u64) -> (f64, f64) {
        let t = frame_idx as f64;
        match *self {
            MotionPath::Fixed { x, y } => (x, y),
            MotionPath::Linear { x0, y0, vx, vy } => (x0 + vx * t, y0 + vy * t),
            MotionPath::Sway { cx, cy, ax, ay, omega } => {
                ((omega * t).sin() * ax + cx, (omega * t * 0.7).cos() * ay + cy)
            }
            MotionPath::Bounce { x0, y0, vx, vy, w, h } => {
                (reflect(x0 + vx * t, w), reflect(y0 + vy * t, h))
            }
        }
    }

    /// Instantaneous speed (px/frame) at `frame_idx`, measured over one
    /// frame step — what a policy uses as the displacement proxy.
    pub fn speed(&self, frame_idx: u64) -> f64 {
        let (x0, y0) = self.position(frame_idx);
        let (x1, y1) = self.position(frame_idx + 1);
        ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt()
    }
}

/// Triangle-wave reflection of `v` into `[0, limit]`.
fn reflect(v: f64, limit: f64) -> f64 {
    if limit <= 0.0 {
        return 0.0;
    }
    let period = 2.0 * limit;
    let m = v.rem_euclid(period);
    if m <= limit {
        m
    } else {
        period - m
    }
}

/// The visual appearance of a sprite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpriteShape {
    /// A face: bright ellipse with dark eyes and mouth — enough
    /// structure for the synthetic face detector's template.
    Face,
    /// A filled bright disc (pose-estimation joints).
    Disc,
    /// A textured rectangle (generic tracked object).
    TexturedRect,
}

/// A moving foreground object composited onto rendered frames, with an
/// exact ground-truth bounding box per frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sprite {
    /// Appearance.
    pub shape: SpriteShape,
    /// Width of the sprite's bounding box.
    pub w: u32,
    /// Height of the sprite's bounding box.
    pub h: u32,
    /// Motion model.
    pub path: MotionPath,
}

impl Sprite {
    /// Creates a sprite.
    pub fn new(shape: SpriteShape, w: u32, h: u32, path: MotionPath) -> Self {
        Sprite { shape, w, h, path }
    }

    /// Ground-truth bounding box at `frame_idx`, or `None` when fully
    /// outside a `frame_w x frame_h` frame.
    pub fn bbox(&self, frame_idx: u64, frame_w: u32, frame_h: u32) -> Option<Rect> {
        let (cx, cy) = self.path.position(frame_idx);
        let x0 = cx - f64::from(self.w) / 2.0;
        let y0 = cy - f64::from(self.h) / 2.0;
        let x1 = x0 + f64::from(self.w);
        let y1 = y0 + f64::from(self.h);
        if x1 <= 0.0 || y1 <= 0.0 || x0 >= f64::from(frame_w) || y0 >= f64::from(frame_h) {
            return None;
        }
        let cx0 = x0.max(0.0) as u32;
        let cy0 = y0.max(0.0) as u32;
        let cx1 = (x1.min(f64::from(frame_w))).ceil() as u32;
        let cy1 = (y1.min(f64::from(frame_h))).ceil() as u32;
        if cx1 > cx0 && cy1 > cy0 {
            Some(Rect::new(cx0, cy0, cx1 - cx0, cy1 - cy0))
        } else {
            None
        }
    }

    /// Draws the sprite into `frame` at its `frame_idx` position.
    pub fn draw(&self, frame: &mut GrayFrame, frame_idx: u64) {
        let (cx, cy) = self.path.position(frame_idx);
        let hw = f64::from(self.w) / 2.0;
        let hh = f64::from(self.h) / 2.0;
        let x_lo = (cx - hw).floor().max(0.0) as i64;
        let y_lo = (cy - hh).floor().max(0.0) as i64;
        let x_hi = ((cx + hw).ceil() as i64).min(i64::from(frame.width()));
        let y_hi = ((cy + hh).ceil() as i64).min(i64::from(frame.height()));
        for y in y_lo.max(0)..y_hi.max(0) {
            for x in x_lo.max(0)..x_hi.max(0) {
                // Normalized sprite-local coordinates in [-1, 1].
                let nx = (x as f64 - cx) / hw.max(1.0);
                let ny = (y as f64 - cy) / hh.max(1.0);
                if let Some(v) = self.shade(nx, ny) {
                    frame.set(x as u32, y as u32, v);
                }
            }
        }
    }

    /// Pixel value at normalized sprite coordinates, `None` outside the
    /// sprite's silhouette.
    fn shade(&self, nx: f64, ny: f64) -> Option<u8> {
        match self.shape {
            SpriteShape::Disc => {
                if nx * nx + ny * ny <= 1.0 {
                    Some(240)
                } else {
                    None
                }
            }
            SpriteShape::Face => {
                if nx * nx + ny * ny > 1.0 {
                    return None;
                }
                // Eyes: small dark discs — fine structure that only
                // survives at adequate spatial resolution.
                let eye = |ex: f64| ((nx - ex).powi(2) + (ny + 0.35).powi(2)) < 0.016;
                if eye(-0.38) || eye(0.38) {
                    return Some(25);
                }
                // Mouth: thin dark horizontal bar.
                if ny > 0.42 && ny < 0.52 && nx.abs() < 0.40 {
                    return Some(40);
                }
                // Skin with slight radial shading.
                let r = (nx * nx + ny * ny).sqrt();
                Some((215.0 - 40.0 * r) as u8)
            }
            SpriteShape::TexturedRect => {
                if nx.abs() > 1.0 || ny.abs() > 1.0 {
                    return None;
                }
                // 4x4 checker texture for corner features.
                let cell = (((nx + 1.0) * 2.0) as i64 + ((ny + 1.0) * 2.0) as i64) % 2;
                Some(if cell == 0 { 230 } else { 35 })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_frame::Plane;

    #[test]
    fn fixed_path_does_not_move() {
        let p = MotionPath::Fixed { x: 5.0, y: 6.0 };
        assert_eq!(p.position(0), p.position(100));
        assert_eq!(p.speed(3), 0.0);
    }

    #[test]
    fn linear_path_moves_at_velocity() {
        let p = MotionPath::Linear { x0: 0.0, y0: 0.0, vx: 3.0, vy: 4.0 };
        assert_eq!(p.position(2), (6.0, 8.0));
        assert!((p.speed(0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bounce_stays_in_box() {
        let p = MotionPath::Bounce { x0: 10.0, y0: 10.0, vx: 7.3, vy: -4.1, w: 100.0, h: 80.0 };
        for t in 0..500 {
            let (x, y) = p.position(t);
            assert!((0.0..=100.0).contains(&x), "x={x} at t={t}");
            assert!((0.0..=80.0).contains(&y), "y={y} at t={t}");
        }
    }

    #[test]
    fn sway_oscillates_around_center() {
        let p = MotionPath::Sway { cx: 50.0, cy: 60.0, ax: 10.0, ay: 5.0, omega: 0.3 };
        for t in 0..100 {
            let (x, y) = p.position(t);
            assert!((40.0..=60.0).contains(&x));
            assert!((55.0..=65.0).contains(&y));
        }
    }

    #[test]
    fn bbox_is_none_when_offscreen() {
        let s = Sprite::new(
            SpriteShape::Disc,
            20,
            20,
            MotionPath::Fixed { x: -100.0, y: -100.0 },
        );
        assert_eq!(s.bbox(0, 640, 480), None);
    }

    #[test]
    fn bbox_clamps_at_edges() {
        let s = Sprite::new(SpriteShape::Disc, 20, 20, MotionPath::Fixed { x: 0.0, y: 0.0 });
        let b = s.bbox(0, 640, 480).unwrap();
        assert_eq!((b.x, b.y), (0, 0));
        assert!(b.w <= 10 && b.h <= 10);
    }

    #[test]
    fn draw_changes_pixels_inside_bbox_only() {
        let mut frame: GrayFrame = Plane::new(64, 64);
        let s = Sprite::new(SpriteShape::Disc, 16, 16, MotionPath::Fixed { x: 32.0, y: 32.0 });
        s.draw(&mut frame, 0);
        assert_eq!(frame.get(32, 32), Some(240));
        assert_eq!(frame.get(0, 0), Some(0));
        let bbox = s.bbox(0, 64, 64).unwrap();
        for y in 0..64 {
            for x in 0..64 {
                if frame.get(x, y) != Some(0) {
                    assert!(bbox.contains(x, y), "pixel ({x},{y}) outside bbox");
                }
            }
        }
    }

    #[test]
    fn face_has_internal_structure() {
        let mut frame: GrayFrame = Plane::new(64, 64);
        let s = Sprite::new(SpriteShape::Face, 32, 40, MotionPath::Fixed { x: 32.0, y: 32.0 });
        s.draw(&mut frame, 0);
        let values: std::collections::HashSet<u8> =
            frame.as_slice().iter().copied().collect();
        // Background + eyes + mouth + shaded skin.
        assert!(values.len() > 4, "face too flat: {} distinct values", values.len());
    }
}

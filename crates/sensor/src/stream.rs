use rpr_frame::GrayFrame;

/// One pixel of the raster-scan read-out: position plus value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PixelEvent {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
    /// Pixel value.
    pub value: u8,
    /// True on the last pixel of a row (the line-valid boundary the
    /// encoder's DMA uses to commit burst writes).
    pub end_of_row: bool,
}

/// Iterator adaptor presenting a frame as the raster-scan pixel stream a
/// sensor emits — the exact input interface of the streaming rhythmic
/// encoder.
///
/// # Example
///
/// ```
/// use rpr_frame::Plane;
/// use rpr_sensor::RasterScanStream;
///
/// let frame = Plane::from_fn(3, 2, |x, y| (y * 3 + x) as u8);
/// let events: Vec<_> = RasterScanStream::new(&frame).collect();
/// assert_eq!(events.len(), 6);
/// assert_eq!(events[2].value, 2);
/// assert!(events[2].end_of_row);
/// assert!(!events[3].end_of_row);
/// ```
#[derive(Debug, Clone)]
pub struct RasterScanStream<'a> {
    frame: &'a GrayFrame,
    x: u32,
    y: u32,
}

impl<'a> RasterScanStream<'a> {
    /// Creates a stream over `frame`.
    pub fn new(frame: &'a GrayFrame) -> Self {
        RasterScanStream { frame, x: 0, y: 0 }
    }

    /// Pixels remaining in the stream.
    pub fn remaining(&self) -> usize {
        let consumed = self.y as usize * self.frame.width() as usize + self.x as usize;
        self.frame.len() - consumed
    }
}

impl Iterator for RasterScanStream<'_> {
    type Item = PixelEvent;

    fn next(&mut self) -> Option<PixelEvent> {
        if self.y >= self.frame.height() || self.frame.width() == 0 {
            return None;
        }
        let event = PixelEvent {
            x: self.x,
            y: self.y,
            value: self.frame.get(self.x, self.y).expect("in bounds"),
            end_of_row: self.x + 1 == self.frame.width(),
        };
        self.x += 1;
        if self.x >= self.frame.width() {
            self.x = 0;
            self.y += 1;
        }
        Some(event)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for RasterScanStream<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_frame::Plane;

    #[test]
    fn visits_every_pixel_in_raster_order() {
        let frame = Plane::from_fn(4, 3, |x, y| (y * 4 + x) as u8);
        let values: Vec<u8> = RasterScanStream::new(&frame).map(|e| e.value).collect();
        assert_eq!(values, (0..12).collect::<Vec<u8>>());
    }

    #[test]
    fn end_of_row_flags_line_boundaries() {
        let frame: GrayFrame = Plane::new(3, 2);
        let eors: Vec<bool> = RasterScanStream::new(&frame).map(|e| e.end_of_row).collect();
        assert_eq!(eors, vec![false, false, true, false, false, true]);
    }

    #[test]
    fn size_hint_is_exact() {
        let frame: GrayFrame = Plane::new(5, 4);
        let mut s = RasterScanStream::new(&frame);
        assert_eq!(s.len(), 20);
        s.next();
        assert_eq!(s.len(), 19);
    }

    #[test]
    fn empty_frame_yields_nothing() {
        let frame: GrayFrame = Plane::new(0, 0);
        assert_eq!(RasterScanStream::new(&frame).count(), 0);
    }
}

use crate::{CameraPose, ValueNoise};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rpr_frame::{GrayFrame, Plane, RgbFrame};

/// A large, feature-rich textured plane that cameras fly over.
///
/// The texture mixes multi-octave value noise with scattered
/// high-contrast markers (checker patches, crosses, corner squares) so
/// the FAST/ORB feature stack finds the hundreds of corners per frame
/// the paper's V-SLAM case study depends on.
#[derive(Debug, Clone)]
pub struct TextureWorld {
    luma: GrayFrame,
    chroma_seed: u64,
}

impl TextureWorld {
    /// Generates a `width x height` world deterministically from `seed`.
    pub fn generate(width: u32, height: u32, seed: u64) -> Self {
        let noise = ValueNoise::new(seed);
        let mut luma: GrayFrame = Plane::from_fn(width, height, |x, y| {
            let v = noise.fbm(f64::from(x), f64::from(y), 4, 0.015);
            (40.0 + v * 170.0) as u8
        });

        // Scatter high-contrast fiducial markers.
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF1D0);
        let marker_count = (width as usize * height as usize) / 4096;
        for _ in 0..marker_count {
            let mx = rng.gen_range(0..width.saturating_sub(16));
            let my = rng.gen_range(0..height.saturating_sub(16));
            let bright: u8 = if rng.gen_bool(0.5) { 235 } else { 20 };
            let dark: u8 = 255 - bright;
            match rng.gen_range(0..3u32) {
                0 => {
                    // 2x2 checker of 6px cells.
                    for cy in 0..2u32 {
                        for cx in 0..2u32 {
                            let v = if (cx + cy) % 2 == 0 { bright } else { dark };
                            for dy in 0..6 {
                                for dx in 0..6 {
                                    luma.set(mx + cx * 6 + dx, my + cy * 6 + dy, v);
                                }
                            }
                        }
                    }
                }
                1 => {
                    // Cross.
                    for d in 0..12 {
                        for t in 0..3 {
                            luma.set(mx + d, my + 5 + t, bright);
                            luma.set(mx + 5 + t, my + d, bright);
                        }
                    }
                }
                _ => {
                    // Solid corner square.
                    for dy in 0..8 {
                        for dx in 0..8 {
                            luma.set(mx + dx, my + dy, bright);
                        }
                    }
                }
            }
        }
        TextureWorld { luma, chroma_seed: seed ^ 0xC0FFEE }
    }

    /// World width in pixels.
    pub fn width(&self) -> u32 {
        self.luma.width()
    }

    /// World height in pixels.
    pub fn height(&self) -> u32 {
        self.luma.height()
    }

    /// Direct access to the luminance plane (e.g. to composite sprites).
    pub fn luma(&self) -> &GrayFrame {
        &self.luma
    }

    /// Mutable access to the luminance plane.
    pub fn luma_mut(&mut self) -> &mut GrayFrame {
        &mut self.luma
    }

    /// Renders the camera's `out_w x out_h` view under `pose` with
    /// bilinear sampling (gray). Coordinates outside the world clamp to
    /// its edge.
    pub fn render_view_gray(&self, pose: &CameraPose, out_w: u32, out_h: u32) -> GrayFrame {
        let half_w = f64::from(out_w) / 2.0;
        let half_h = f64::from(out_h) / 2.0;
        Plane::from_fn(out_w, out_h, |x, y| {
            let vx = f64::from(x) - half_w;
            let vy = f64::from(y) - half_h;
            let (wx, wy) = pose.view_to_world(vx, vy);
            self.luma.sample_bilinear(wx, wy)
        })
    }

    /// Renders the camera's view as RGB: luminance from the world plus a
    /// smooth low-frequency chroma field, so the Bayer sensor and ISP
    /// demosaic path operate on colour data.
    pub fn render_view(&self, pose: &CameraPose, out_w: u32, out_h: u32) -> RgbFrame {
        let gray = self.render_view_gray(pose, out_w, out_h);
        let chroma = ValueNoise::new(self.chroma_seed);
        let half_w = f64::from(out_w) / 2.0;
        let half_h = f64::from(out_h) / 2.0;
        RgbFrame::from_fn(out_w, out_h, |x, y| {
            let l = f64::from(gray.get(x, y).unwrap_or(0));
            let vx = f64::from(x) - half_w;
            let vy = f64::from(y) - half_h;
            let (wx, wy) = pose.view_to_world(vx, vy);
            let cr = chroma.fbm(wx, wy, 2, 0.01) - 0.5;
            let cb = chroma.fbm(wx + 9000.0, wy, 2, 0.01) - 0.5;
            let r = (l + 60.0 * cr).clamp(0.0, 255.0) as u8;
            let g = l.clamp(0.0, 255.0) as u8;
            let b = (l + 60.0 * cb).clamp(0.0, 255.0) as u8;
            [r, g, b]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = TextureWorld::generate(128, 128, 9);
        let b = TextureWorld::generate(128, 128, 9);
        assert_eq!(a.luma(), b.luma());
    }

    #[test]
    fn different_seeds_give_different_worlds() {
        let a = TextureWorld::generate(64, 64, 1);
        let b = TextureWorld::generate(64, 64, 2);
        assert_ne!(a.luma(), b.luma());
    }

    #[test]
    fn world_has_feature_contrast() {
        let w = TextureWorld::generate(256, 256, 3);
        let data = w.luma().as_slice();
        let min = *data.iter().min().unwrap();
        let max = *data.iter().max().unwrap();
        assert!(max - min > 150, "contrast {min}..{max}");
    }

    #[test]
    fn view_rendering_translates_with_pose() {
        let w = TextureWorld::generate(512, 512, 4);
        let a = w.render_view_gray(&CameraPose::new(200.0, 200.0, 0.0), 64, 64);
        let b = w.render_view_gray(&CameraPose::new(210.0, 200.0, 0.0), 64, 64);
        // View B shifted left by 10 px equals view A's right part.
        assert_eq!(a.get(20, 32), b.get(10, 32));
        assert_ne!(a, b);
    }

    #[test]
    fn rgb_view_luma_tracks_gray_view() {
        let w = TextureWorld::generate(256, 256, 5);
        let pose = CameraPose::new(128.0, 128.0, 0.2);
        let gray = w.render_view_gray(&pose, 32, 32);
        let rgb = w.render_view(&pose, 32, 32);
        // Green channel carries the luminance exactly.
        for y in 0..32 {
            for x in 0..32 {
                assert_eq!(rgb.get(x, y).unwrap()[1], gray.get(x, y).unwrap());
            }
        }
    }
}

//! Run-length coding of the 2-bit EncMask.
//!
//! The EncMask is the dominant metadata cost (2 bits for every pixel of
//! the original frame, ~506 KB at 1080p) and is extremely runny in
//! practice: region interiors are solid `R`/`St`/`Sk` spans and the
//! background is one giant `N` run per row gap. The wire format
//! therefore codes the mask as a sequence of runs in raster order, one
//! varint per run:
//!
//! ```text
//! run := varint( run_len << 2 | status_bits )     run_len >= 1
//! ```
//!
//! Runs up to 31 pixels fit in one byte. The decoder requires the run
//! lengths to sum to exactly `width * height`; anything else is a
//! typed [`WireError::BadRle`]. Degenerate masks (e.g. per-pixel
//! checkerboards) can inflate past the raw packed size, which is why
//! the frame codec measures both and keeps whichever is smaller
//! ([`crate::MaskCodec::Auto`]).

use crate::varint::{read_varint, write_varint};
use crate::{Result, WireError};

/// Iterates the 2-bit entries of a packed mask (4 per byte, entry `i`
/// in bits `2*(i%4)` — the [`rpr_core::EncMask`] layout).
#[inline]
fn packed_get(packed: &[u8], i: usize) -> u8 {
    // Out-of-range entries read as 0 (`N`): compress/compressed_len are
    // public, so a caller-supplied pixel count larger than the packed
    // buffer must not panic.
    (packed.get(i / 4).copied().unwrap_or(0) >> ((i % 4) * 2)) & 0b11
}

/// RLE-compresses `pixels` 2-bit entries of `packed` into `out`.
/// Returns the number of bytes appended.
pub fn compress(packed: &[u8], pixels: usize, out: &mut Vec<u8>) -> usize {
    let mut written = 0;
    let mut i = 0;
    while i < pixels {
        let status = packed_get(packed, i);
        let mut run = 1usize;
        while i + run < pixels && packed_get(packed, i + run) == status {
            run += 1;
        }
        written += write_varint(out, (run as u64) << 2 | u64::from(status));
        i += run;
    }
    written
}

/// Size in bytes [`compress`] would produce, without allocating.
pub fn compressed_len(packed: &[u8], pixels: usize) -> usize {
    let mut len = 0;
    let mut i = 0;
    while i < pixels {
        let status = packed_get(packed, i);
        let mut run = 1usize;
        while i + run < pixels && packed_get(packed, i + run) == status {
            run += 1;
        }
        len += crate::varint::varint_len((run as u64) << 2 | u64::from(status));
        i += run;
    }
    len
}

/// Inflates an RLE stream back into packed 2-bit form.
///
/// `buf` must hold exactly the runs for `pixels` entries — trailing
/// bytes, zero-length runs, and run totals under or over `pixels` are
/// all rejected. The returned buffer is `pixels.div_ceil(4)` bytes
/// with unused high bits zero (the canonical [`rpr_core::EncMask`]
/// layout).
///
/// # Errors
///
/// [`WireError::BadRle`] or [`WireError::BadVarint`] describing the
/// first defect found.
pub fn inflate(buf: &[u8], pixels: usize) -> Result<Vec<u8>> {
    let mut packed = vec![0u8; pixels.div_ceil(4)];
    let mut pos = 0usize;
    let mut filled = 0usize;
    while pos < buf.len() {
        let v = read_varint(buf, &mut pos, "rle run")?;
        let status = (v & 0b11) as u8; // rpr-check: allow(truncating-cast): masked to 2 bits before the cast
        let run = v >> 2;
        if run == 0 {
            return Err(WireError::BadRle { reason: "zero-length run".into() });
        }
        let run = usize::try_from(run)
            .map_err(|_| WireError::BadRle { reason: "run length overflows usize".into() })?;
        let end = filled.checked_add(run).filter(|&e| e <= pixels).ok_or_else(|| {
            WireError::BadRle {
                reason: format!("runs overrun the mask: {filled} + {run} > {pixels}"),
            }
        })?;
        if status != 0 {
            for i in filled..end {
                if let Some(b) = packed.get_mut(i / 4) {
                    *b |= status << ((i % 4) * 2);
                }
            }
        }
        filled = end;
    }
    if filled != pixels {
        return Err(WireError::BadRle {
            reason: format!("runs cover {filled} of {pixels} pixels"),
        });
    }
    Ok(packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_core::{EncMask, PixelStatus};

    fn mask_with_regions() -> EncMask {
        let mut m = EncMask::new(32, 8);
        for y in 2..6 {
            for x in 4..20 {
                m.set(x, y, if y < 4 { PixelStatus::Regional } else { PixelStatus::Strided });
            }
        }
        m
    }

    fn roundtrip(mask: &EncMask) {
        let pixels = mask.width() as usize * mask.height() as usize;
        let mut rle = Vec::new();
        let n = compress(mask.as_bytes(), pixels, &mut rle);
        assert_eq!(n, rle.len());
        assert_eq!(n, compressed_len(mask.as_bytes(), pixels));
        let back = inflate(&rle, pixels).unwrap();
        assert_eq!(back, mask.as_bytes(), "packed bytes must round-trip exactly");
    }

    #[test]
    fn region_masks_roundtrip_and_shrink() {
        let mask = mask_with_regions();
        roundtrip(&mask);
        let pixels = 32 * 8;
        assert!(
            compressed_len(mask.as_bytes(), pixels) < mask.size_bytes(),
            "runny masks must compress below 2 bits/px"
        );
    }

    #[test]
    fn uniform_mask_is_tiny() {
        let mask = EncMask::new(1920, 4);
        let pixels = 1920 * 4;
        // One all-N run: one varint of (7680 << 2).
        assert_eq!(compressed_len(mask.as_bytes(), pixels), 3);
        roundtrip(&mask);
    }

    #[test]
    fn worst_case_checkerboard_roundtrips() {
        let mut mask = EncMask::new(17, 3); // non-multiple-of-4 tail
        for y in 0..3 {
            for x in 0..17 {
                if (x + y) % 2 == 0 {
                    mask.set(x, y, PixelStatus::Regional);
                }
            }
        }
        roundtrip(&mask);
    }

    #[test]
    fn empty_mask_roundtrips() {
        let back = inflate(&[], 0).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn short_and_long_totals_are_rejected() {
        let mut rle = Vec::new();
        compress(EncMask::new(8, 1).as_bytes(), 8, &mut rle);
        assert!(matches!(inflate(&rle, 9), Err(WireError::BadRle { .. })));
        assert!(matches!(inflate(&rle, 7), Err(WireError::BadRle { .. })));
    }

    #[test]
    fn zero_run_is_rejected() {
        let mut rle = Vec::new();
        write_varint(&mut rle, 0b11); // run_len 0, status R
        assert!(matches!(inflate(&rle, 4), Err(WireError::BadRle { .. })));
    }

    #[test]
    fn truncated_varint_is_rejected() {
        let rle = [0x80u8]; // continuation bit, no next byte
        assert!(matches!(inflate(&rle, 4), Err(WireError::BadVarint { .. })));
    }
}

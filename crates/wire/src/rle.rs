//! Run-length coding of the 2-bit EncMask.
//!
//! The EncMask is the dominant metadata cost (2 bits for every pixel of
//! the original frame, ~506 KB at 1080p) and is extremely runny in
//! practice: region interiors are solid `R`/`St`/`Sk` spans and the
//! background is one giant `N` run per row gap. The wire format
//! therefore codes the mask as a sequence of runs in raster order, one
//! varint per run:
//!
//! ```text
//! run := varint( run_len << 2 | status_bits )     run_len >= 1
//! ```
//!
//! Runs up to 31 pixels fit in one byte. The decoder requires the run
//! lengths to sum to exactly `width * height`; anything else is a
//! typed [`WireError::BadRle`]. Degenerate masks (e.g. per-pixel
//! checkerboards) can inflate past the raw packed size, which is why
//! the frame codec measures both and keeps whichever is smaller
//! ([`crate::MaskCodec::Auto`]).
//!
//! The run finder is the chunked word-at-a-time scanner shared with
//! the encoder/decoder ([`rpr_core::kernels::for_each_run`] — 32
//! entries per step through uniform spans), and [`inflate`] fills run
//! bodies a splat byte at a time instead of entry-by-entry. The
//! original per-entry loops are retained as `*_scalar` references for
//! the kernel-equivalence battery (TESTING.md).

use crate::varint::{read_varint, varint_len, write_varint};
use crate::{Result, WireError};
use rpr_core::kernels::{for_each_run, splat_byte};

/// Iterates the 2-bit entries of a packed mask (4 per byte, entry `i`
/// in bits `2*(i%4)` — the [`rpr_core::EncMask`] layout).
#[inline]
fn packed_get(packed: &[u8], i: usize) -> u8 {
    // Out-of-range entries read as 0 (`N`): compress/compressed_len are
    // public, so a caller-supplied pixel count larger than the packed
    // buffer must not panic. `for_each_run` honors the same contract.
    (packed.get(i / 4).copied().unwrap_or(0) >> ((i % 4) * 2)) & 0b11
}

/// RLE-compresses `pixels` 2-bit entries of `packed` into `out`.
/// Returns the number of bytes appended.
pub fn compress(packed: &[u8], pixels: usize, out: &mut Vec<u8>) -> usize {
    let mut written = 0;
    for_each_run(packed, 0, pixels, |status, run| {
        written += write_varint(out, (run as u64) << 2 | u64::from(status));
    });
    written
}

/// Size in bytes [`compress`] would produce, without allocating.
pub fn compressed_len(packed: &[u8], pixels: usize) -> usize {
    let mut len = 0;
    for_each_run(packed, 0, pixels, |status, run| {
        len += varint_len((run as u64) << 2 | u64::from(status));
    });
    len
}

/// Per-entry reference implementation of [`compress`] — the loop it
/// originally shipped with, pinned byte-identical by the equivalence
/// suite. Keep it untouched when optimizing `compress`.
pub fn compress_scalar(packed: &[u8], pixels: usize, out: &mut Vec<u8>) -> usize {
    let mut written = 0;
    let mut i = 0;
    while i < pixels {
        let status = packed_get(packed, i);
        let mut run = 1usize;
        while i + run < pixels && packed_get(packed, i + run) == status {
            run += 1;
        }
        written += write_varint(out, (run as u64) << 2 | u64::from(status));
        i += run;
    }
    written
}

/// Inflates an RLE stream back into packed 2-bit form.
///
/// `buf` must hold exactly the runs for `pixels` entries — trailing
/// bytes, zero-length runs, and run totals under or over `pixels` are
/// all rejected. The returned buffer is `pixels.div_ceil(4)` bytes
/// with unused high bits zero (the canonical [`rpr_core::EncMask`]
/// layout).
///
/// # Errors
///
/// [`WireError::BadRle`] or [`WireError::BadVarint`] describing the
/// first defect found.
pub fn inflate(buf: &[u8], pixels: usize) -> Result<Vec<u8>> {
    let mut packed = Vec::new();
    inflate_into(buf, pixels, &mut packed)?;
    Ok(packed)
}

/// [`inflate`] into a caller-supplied buffer (cleared and resized to
/// `pixels.div_ceil(4)`), so a pool can recycle the allocation.
///
/// # Errors
///
/// Same as [`inflate`]; on error the buffer contents are unspecified.
pub fn inflate_into(buf: &[u8], pixels: usize, packed: &mut Vec<u8>) -> Result<()> {
    packed.clear();
    packed.resize(pixels.div_ceil(4), 0);
    let mut pos = 0usize;
    let mut filled = 0usize;
    while pos < buf.len() {
        let v = read_varint(buf, &mut pos, "rle run")?;
        let status = (v & 0b11) as u8; // rpr-check: allow(truncating-cast): masked to 2 bits before the cast
        let run = v >> 2;
        if run == 0 {
            return Err(WireError::BadRle { reason: "zero-length run".into() });
        }
        let run = usize::try_from(run)
            .map_err(|_| WireError::BadRle { reason: "run length overflows usize".into() })?;
        let end = filled.checked_add(run).filter(|&e| e <= pixels).ok_or_else(|| {
            WireError::BadRle {
                reason: format!("runs overrun the mask: {filled} + {run} > {pixels}"),
            }
        })?;
        if status != 0 {
            fill_entries(packed, filled, end, status);
        }
        filled = end;
    }
    if filled != pixels {
        return Err(WireError::BadRle {
            reason: format!("runs cover {filled} of {pixels} pixels"),
        });
    }
    Ok(())
}

/// Sets entries `[start, end)` of a zeroed packed buffer to `status`:
/// per-entry ORs up to the first byte boundary, one `slice::fill` of
/// the splat byte across the body, per-entry ORs for the tail.
fn fill_entries(packed: &mut [u8], start: usize, end: usize, status: u8) {
    let body_first = start.div_ceil(4); // first byte fully inside the run
    let body_last = end / 4; // one past the last fully covered byte
    if body_first >= body_last {
        // The run covers no whole byte: per-entry ORs only.
        for i in start..end {
            if let Some(b) = packed.get_mut(i / 4) {
                *b |= status << ((i % 4) * 2);
            }
        }
        return;
    }
    // Head entries before the first whole byte.
    for i in start..body_first * 4 {
        if let Some(b) = packed.get_mut(i / 4) {
            *b |= status << ((i % 4) * 2);
        }
    }
    // Body: one memset of the splat byte (runs never overlap, so a
    // plain fill equals the OR on the zeroed buffer).
    if let Some(body) = packed.get_mut(body_first..body_last) {
        body.fill(splat_byte(status));
    }
    // Tail entries after the last whole byte.
    for i in body_last * 4..end {
        if let Some(b) = packed.get_mut(i / 4) {
            *b |= status << ((i % 4) * 2);
        }
    }
}

/// Per-entry reference implementation of [`inflate`] — the loop it
/// originally shipped with; the equivalence suite pins the fast path
/// to it across every run phase and length.
pub fn inflate_scalar(buf: &[u8], pixels: usize) -> Result<Vec<u8>> {
    let mut packed = vec![0u8; pixels.div_ceil(4)];
    let mut pos = 0usize;
    let mut filled = 0usize;
    while pos < buf.len() {
        let v = read_varint(buf, &mut pos, "rle run")?;
        let status = (v & 0b11) as u8; // rpr-check: allow(truncating-cast): masked to 2 bits before the cast
        let run = v >> 2;
        if run == 0 {
            return Err(WireError::BadRle { reason: "zero-length run".into() });
        }
        let run = usize::try_from(run)
            .map_err(|_| WireError::BadRle { reason: "run length overflows usize".into() })?;
        let end = filled.checked_add(run).filter(|&e| e <= pixels).ok_or_else(|| {
            WireError::BadRle {
                reason: format!("runs overrun the mask: {filled} + {run} > {pixels}"),
            }
        })?;
        if status != 0 {
            for i in filled..end {
                if let Some(b) = packed.get_mut(i / 4) {
                    *b |= status << ((i % 4) * 2);
                }
            }
        }
        filled = end;
    }
    if filled != pixels {
        return Err(WireError::BadRle {
            reason: format!("runs cover {filled} of {pixels} pixels"),
        });
    }
    Ok(packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_core::{EncMask, PixelStatus};

    fn mask_with_regions() -> EncMask {
        let mut m = EncMask::new(32, 8);
        for y in 2..6 {
            for x in 4..20 {
                m.set(x, y, if y < 4 { PixelStatus::Regional } else { PixelStatus::Strided });
            }
        }
        m
    }

    fn roundtrip(mask: &EncMask) {
        let pixels = mask.width() as usize * mask.height() as usize;
        let mut rle = Vec::new();
        let n = compress(mask.as_bytes(), pixels, &mut rle);
        assert_eq!(n, rle.len());
        assert_eq!(n, compressed_len(mask.as_bytes(), pixels));
        let back = inflate(&rle, pixels).unwrap();
        assert_eq!(back, mask.as_bytes(), "packed bytes must round-trip exactly");
        // And the scalar references agree at every step.
        let mut rle_ref = Vec::new();
        assert_eq!(compress_scalar(mask.as_bytes(), pixels, &mut rle_ref), n);
        assert_eq!(rle_ref, rle, "chunked compress must match the scalar reference");
        assert_eq!(inflate_scalar(&rle, pixels).unwrap(), back);
    }

    #[test]
    fn region_masks_roundtrip_and_shrink() {
        let mask = mask_with_regions();
        roundtrip(&mask);
        let pixels = 32 * 8;
        assert!(
            compressed_len(mask.as_bytes(), pixels) < mask.size_bytes(),
            "runny masks must compress below 2 bits/px"
        );
    }

    #[test]
    fn uniform_mask_is_tiny() {
        let mask = EncMask::new(1920, 4);
        let pixels = 1920 * 4;
        // One all-N run: one varint of (7680 << 2).
        assert_eq!(compressed_len(mask.as_bytes(), pixels), 3);
        roundtrip(&mask);
    }

    #[test]
    fn worst_case_checkerboard_roundtrips() {
        let mut mask = EncMask::new(17, 3); // non-multiple-of-4 tail
        for y in 0..3 {
            for x in 0..17 {
                if (x + y) % 2 == 0 {
                    mask.set(x, y, PixelStatus::Regional);
                }
            }
        }
        roundtrip(&mask);
    }

    #[test]
    fn empty_mask_roundtrips() {
        let back = inflate(&[], 0).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn run_fill_matches_scalar_at_every_phase() {
        // Runs starting/ending at every 2-bit phase, crossing 0..=3
        // byte boundaries, exercise fill_entries' head/body/tail split.
        for start in 0..12usize {
            for len in 1..40usize {
                let pixels = start + len + 5;
                let mut rle = Vec::new();
                if start > 0 {
                    write_varint(&mut rle, (start as u64) << 2); // N prefix
                }
                write_varint(&mut rle, (len as u64) << 2 | 0b11); // R run
                write_varint(&mut rle, 5u64 << 2 | 0b01); // St suffix
                let fast = inflate(&rle, pixels).unwrap();
                let slow = inflate_scalar(&rle, pixels).unwrap();
                assert_eq!(fast, slow, "start {start} len {len}");
            }
        }
    }

    #[test]
    fn short_and_long_totals_are_rejected() {
        let mut rle = Vec::new();
        compress(EncMask::new(8, 1).as_bytes(), 8, &mut rle);
        assert!(matches!(inflate(&rle, 9), Err(WireError::BadRle { .. })));
        assert!(matches!(inflate(&rle, 7), Err(WireError::BadRle { .. })));
    }

    #[test]
    fn zero_run_is_rejected() {
        let mut rle = Vec::new();
        write_varint(&mut rle, 0b11); // run_len 0, status R
        assert!(matches!(inflate(&rle, 4), Err(WireError::BadRle { .. })));
        assert!(matches!(inflate_scalar(&rle, 4), Err(WireError::BadRle { .. })));
    }

    #[test]
    fn truncated_varint_is_rejected() {
        let rle = [0x80u8]; // continuation bit, no next byte
        assert!(matches!(inflate(&rle, 4), Err(WireError::BadVarint { .. })));
        assert!(matches!(inflate_scalar(&rle, 4), Err(WireError::BadVarint { .. })));
    }

    #[test]
    fn inflate_into_recycles_buffer() {
        let mut rle = Vec::new();
        let mask = mask_with_regions();
        compress(mask.as_bytes(), 32 * 8, &mut rle);
        let mut buf = vec![0xFFu8; 512]; // stale contents must not leak
        inflate_into(&rle, 32 * 8, &mut buf).unwrap();
        assert_eq!(buf, mask.as_bytes());
    }
}

use std::fmt;

/// Typed failure modes of the wire codec and container parser.
///
/// Every way a byte stream can be malformed maps to exactly one
/// variant; the parser never panics on untrusted input. The variants
/// are deliberately fine-grained so the conformance harness can assert
/// that each injected container fault surfaces as a *typed* error, the
/// same way `rpr_core::CoreError::CorruptEncodedFrame` types the
/// in-memory faults.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// An underlying I/O operation failed (writer side only; parsing
    /// operates on in-memory slices).
    Io {
        /// Stringified `std::io::Error` (kept as text so the error
        /// stays `Clone + PartialEq` for test assertions).
        reason: String,
    },
    /// A magic number did not match (`what` says which: file header,
    /// trailer, or chunk).
    BadMagic {
        /// Which magic field mismatched.
        what: &'static str,
    },
    /// The stream declares a format version this parser does not speak.
    UnsupportedVersion {
        /// Version found in the header.
        version: u16,
    },
    /// The buffer ended before a declared structure was complete.
    Truncated {
        /// Which structure was cut short.
        what: &'static str,
        /// Bytes the structure needed.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A *streaming* ingest ended mid-structure: the session closed
    /// while the decoder still held a partial header, chunk, or
    /// trailer. Distinct from [`WireError::Truncated`] (a whole-buffer
    /// parse running off the end) so ingest services can tell a torn
    /// final chunk apart from an ordinary short read — scan recovery
    /// must never report this case as a clean end of stream.
    TruncatedStream {
        /// Which structure was cut short.
        what: &'static str,
        /// Bytes of the partial structure already buffered.
        buffered: u64,
        /// Bytes the structure needs (lower bound when the structure's
        /// own length field had not arrived yet).
        needed: u64,
    },
    /// A stored CRC32 does not match the checksum of the covered bytes.
    ChecksumMismatch {
        /// Which checksummed region mismatched.
        what: &'static str,
        /// CRC stored in the stream.
        stored: u32,
        /// CRC computed over the bytes.
        computed: u32,
    },
    /// A varint ran past its 10-byte maximum or past the buffer.
    BadVarint {
        /// Which field was being decoded.
        what: &'static str,
    },
    /// The RLE-compressed EncMask is malformed (zero-length run, runs
    /// not summing to the pixel count, or trailing bytes).
    BadRle {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A chunk header is malformed (unknown type, impossible length).
    BadChunk {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// The trailing frame index is malformed or disagrees with the
    /// chunk it points at (the stale-index-entry fault class).
    BadIndex {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A declared dimension or length exceeds the parser's hard caps
    /// (defense against allocation bombs in corrupted headers).
    LimitExceeded {
        /// Which limit was exceeded.
        what: &'static str,
        /// Declared value.
        value: u64,
        /// Maximum the parser accepts.
        limit: u64,
    },
    /// The frame parsed structurally but its contents fail
    /// [`rpr_core::EncodedFrame::validate`] (payload/metadata
    /// disagreement or integrity-digest mismatch).
    CorruptFrame {
        /// The underlying validation failure.
        reason: String,
    },
    /// The writer was handed a frame that fails validation; the wire
    /// format only carries self-consistent frames.
    InvalidFrame {
        /// The underlying validation failure.
        reason: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io { reason } => write!(f, "i/o error: {reason}"),
            WireError::BadMagic { what } => write!(f, "bad {what} magic"),
            WireError::UnsupportedVersion { version } => {
                write!(f, "unsupported wire format version {version}")
            }
            WireError::Truncated { what, needed, available } => {
                write!(f, "{what} truncated: needs {needed} bytes, {available} available")
            }
            WireError::TruncatedStream { what, buffered, needed } => {
                write!(
                    f,
                    "stream ended mid-{what}: {buffered} of {needed} bytes buffered"
                )
            }
            WireError::ChecksumMismatch { what, stored, computed } => write!(
                f,
                "{what} checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            WireError::BadVarint { what } => write!(f, "malformed varint in {what}"),
            WireError::BadRle { reason } => write!(f, "malformed RLE mask: {reason}"),
            WireError::BadChunk { reason } => write!(f, "malformed chunk: {reason}"),
            WireError::BadIndex { reason } => write!(f, "malformed frame index: {reason}"),
            WireError::LimitExceeded { what, value, limit } => {
                write!(f, "{what} {value} exceeds parser limit {limit}")
            }
            WireError::CorruptFrame { reason } => write!(f, "corrupt encoded frame: {reason}"),
            WireError::InvalidFrame { reason } => {
                write!(f, "refusing to serialize invalid frame: {reason}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io { reason: e.to_string() }
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, WireError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = WireError::ChecksumMismatch { what: "frame chunk", stored: 1, computed: 2 };
        let s = e.to_string();
        assert!(s.contains("frame chunk") && s.contains("checksum"), "{s}");
        assert!(WireError::BadMagic { what: "trailer" }.to_string().contains("trailer"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::other("disk on fire");
        let e: WireError = io.into();
        assert!(matches!(e, WireError::Io { .. }));
        assert!(e.to_string().contains("disk on fire"));
    }
}

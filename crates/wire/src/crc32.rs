//! CRC32 (IEEE 802.3, polynomial `0xEDB88320`), the per-chunk checksum
//! of the `.rpr` container.
//!
//! Dependency-free and table-driven; the table is built at compile
//! time. CRC32 (rather than the frame-level FNV digest) guards the
//! *transport* layer: it is the checksum DMA engines and NICs already
//! compute in hardware, so a real deployment gets it for free, and its
//! error model (burst errors from torn writes and truncated transfers)
//! matches what a file or socket can do to a chunk.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32; // rpr-check: allow(truncating-cast): i < 256; const fn cannot use try_from
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc; // rpr-check: allow(panic-surface): i < 256 == table.len(); an OOB here fails const evaluation at compile time
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `bytes` (init `0xFFFF_FFFF`, final XOR, reflected — the
/// standard zlib/PNG/Ethernet convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming update: feed `state` through more bytes. Start from
/// `0xFFFF_FFFF` and XOR the final state with `0xFFFF_FFFF` to match
/// [`crc32`].
pub fn update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize; // rpr-check: allow(truncating-cast): masked to 8 bits before the cast
        crc = (crc >> 8) ^ TABLE.get(idx).copied().unwrap_or(0);
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // The canonical check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"rhythmic pixel regions";
        let split = crc32(data);
        let mut state = 0xFFFF_FFFFu32;
        state = update(state, &data[..7]);
        state = update(state, &data[7..]);
        assert_eq!(state ^ 0xFFFF_FFFF, split);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 64];
        let clean = crc32(&data);
        for i in 0..64 {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}

//! CRC32 (IEEE 802.3, polynomial `0xEDB88320`), the per-chunk checksum
//! of the `.rpr` container.
//!
//! Dependency-free and table-driven; the tables are built at compile
//! time. CRC32 (rather than the frame-level FNV digest) guards the
//! *transport* layer: it is the checksum DMA engines and NICs already
//! compute in hardware, so a real deployment gets it for free, and its
//! error model (burst errors from torn writes and truncated transfers)
//! matches what a file or socket can do to a chunk.
//!
//! Two implementations live here on purpose:
//!
//! * [`update_scalar`] — the original byte-at-a-time loop, retained
//!   forever as the reference the fast path is differentially tested
//!   against (`kernel_equivalence` suite, TESTING.md).
//! * [`update`] — slicing-by-8: eight 256-entry tables fold 8 input
//!   bytes per iteration with no inter-byte dependency chain, keeping
//!   multiple table loads in flight per cycle. Same signature,
//!   bit-identical output.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Tables built / bytes folded per hot-loop iteration.
const SLICES: usize = 8;

const fn build_tables() -> [[u32; 256]; SLICES] {
    let mut tables = [[0u32; 256]; SLICES];
    // Table 0 is the classic byte-at-a-time table…
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32; // rpr-check: allow(truncating-cast): i < 256; const fn cannot use try_from
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc; // rpr-check: allow(panic-surface): i < 256 == table len; an OOB here fails const evaluation at compile time
        i += 1;
    }
    // …and table k advances table k-1's entry through one more zero
    // byte, so `tables[k][b]` is the contribution of byte `b` seen `k`
    // positions before the end of an 8-byte group.
    let mut k = 1;
    while k < SLICES {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i]; // rpr-check: allow(panic-surface): k < SLICES and i < 256 by the loop bounds; OOB fails const evaluation
            // rpr-check: allow(truncating-cast): masked to 8 bits before the cast
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize]; // rpr-check: allow(panic-surface): indices masked/bounded as above
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; SLICES] = build_tables();

/// Table lookup that is panic-free by construction; `k` is a constant
/// at every call site, `b` bounds the inner index to 0..=255, so the
/// compiler drops both checks after inlining.
#[inline(always)]
fn tab(k: usize, b: u8) -> u32 {
    match TABLES.get(k) {
        Some(t) => t.get(usize::from(b)).copied().unwrap_or(0),
        None => 0,
    }
}

/// CRC32 of `bytes` (init `0xFFFF_FFFF`, final XOR, reflected — the
/// standard zlib/PNG/Ethernet convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming update: feed `state` through more bytes. Start from
/// `0xFFFF_FFFF` and XOR the final state with `0xFFFF_FFFF` to match
/// [`crc32`]. Slicing-by-8 fast path, bit-identical to
/// [`update_scalar`].
pub fn update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    let mut chunks = bytes.chunks_exact(SLICES);
    for chunk in &mut chunks {
        let &[c0, c1, c2, c3, c4, c5, c6, c7] = chunk else {
            // chunks_exact(8) only yields 8-byte windows.
            return update_scalar(crc, chunk);
        };
        let s = crc.to_le_bytes();
        crc = tab(7, s[0] ^ c0) // rpr-check: allow(panic-surface): constant indexes 0..4 into the [u8; 4] LE bytes of the crc state
            ^ tab(6, s[1] ^ c1) // rpr-check: allow(panic-surface): constant indexes 0..4 into the [u8; 4] LE bytes of the crc state
            ^ tab(5, s[2] ^ c2) // rpr-check: allow(panic-surface): constant indexes 0..4 into the [u8; 4] LE bytes of the crc state
            ^ tab(4, s[3] ^ c3) // rpr-check: allow(panic-surface): constant indexes 0..4 into the [u8; 4] LE bytes of the crc state
            ^ tab(3, c4)
            ^ tab(2, c5)
            ^ tab(1, c6)
            ^ tab(0, c7);
    }
    update_scalar(crc, chunks.remainder())
}

/// The retained byte-at-a-time reference implementation — the loop
/// [`update`] originally shipped with. The differential suite pins the
/// sliced path to it byte-for-byte; keep it untouched when optimizing
/// `update`.
pub fn update_scalar(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize; // rpr-check: allow(truncating-cast): masked to 8 bits before the cast
        crc = (crc >> 8) ^ tab(0, idx as u8); // rpr-check: allow(truncating-cast): idx < 256 by the mask above
    }
    crc
}

/// One-shot CRC32 through the scalar reference path (tests/benches).
pub fn crc32_scalar(bytes: &[u8]) -> u32 {
    update_scalar(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // The canonical check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn scalar_reference_matches_known_vectors() {
        assert_eq!(crc32_scalar(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_scalar(b""), 0);
        assert_eq!(crc32_scalar(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sliced_matches_scalar_at_every_length_and_phase() {
        let data: Vec<u8> = (0..260u32).map(|i| (i.wrapping_mul(31) ^ (i >> 3)) as u8).collect();
        for start in 0..9 {
            for end in (start..data.len()).step_by(3).chain([data.len()]) {
                let s = &data[start..end];
                assert_eq!(crc32(s), crc32_scalar(s), "start {start} len {}", s.len());
            }
        }
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"rhythmic pixel regions";
        let split = crc32(data);
        for cut in [0, 1, 7, 8, 9, data.len()] {
            let mut state = 0xFFFF_FFFFu32;
            state = update(state, &data[..cut]);
            state = update(state, &data[cut..]);
            assert_eq!(state ^ 0xFFFF_FFFF, split, "cut at {cut}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 64];
        let clean = crc32(&data);
        for i in 0..64 {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}

//! The canonical little-endian frame blob and its zero-copy view.
//!
//! One [`rpr_core::EncodedFrame`] serializes to one *frame blob*:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     4  width        u32 LE
//!      4     4  height       u32 LE
//!      8     8  frame_idx    u64 LE
//!     16     8  integrity    u64 LE  (FNV-1a digest, carried verbatim)
//!     24     1  mask_encoding: 0 = raw packed 2-bit, 1 = RLE
//!     25     —  mask_len     varint, then mask_len mask bytes
//!      …     —  rows         varint  (must equal height)
//!      …     —  row offsets: offsets[0] varint, then `rows` deltas
//!      …     —  payload_len  varint, then payload_len payload bytes
//! ```
//!
//! The payload sits last and unencoded so a parsed
//! [`EncodedFrameView`] can borrow it straight out of the input slice;
//! when the mask is raw-encoded the view borrows that too (the
//! `Cow::Borrowed` zero-copy path). Row offsets are delta-coded
//! varints, which makes non-monotonic tables unrepresentable on the
//! wire and typically shrinks the 4-byte-per-row table to ~1 byte/row.

use std::borrow::Cow;

use rpr_core::{EncMask, EncodedFrame, FrameMetadata, RowOffsets};

use crate::varint::{read_varint, write_varint};
use crate::{bytes, rle, Result, WireError};

/// Fixed-size prefix of a frame blob, before the varint fields.
pub const FRAME_HEADER_LEN: usize = 25;

/// Hard cap on either frame dimension; declared dimensions above this
/// are rejected before any allocation.
pub const MAX_DIMENSION: u32 = 1 << 16;

/// Hard cap on `width * height` (64 Mpx) — bounds every allocation the
/// parser can make from untrusted headers.
pub const MAX_PIXELS: u64 = 1 << 26;

/// How the EncMask is coded inside a frame blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaskCodec {
    /// Measure both and keep whichever is smaller (the default).
    #[default]
    Auto,
    /// Always store the packed 2-bit bytes verbatim.
    Raw,
    /// Always run-length code (falls back to raw for the rare mask
    /// whose trailing padding bits are non-canonical, since RLE cannot
    /// represent them and byte-identity would be lost).
    Rle,
}

const MASK_ENC_RAW: u8 = 0;
const MASK_ENC_RLE: u8 = 1;

/// Size accounting for one encoded frame blob, the raw material of the
/// `wire_roundtrip` bench's RLE-vs-raw comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameEncodeStats {
    /// Size of the packed 2-bit mask (what raw encoding would store).
    pub raw_mask_bytes: usize,
    /// Size the RLE coding of the same mask occupies.
    pub rle_mask_bytes: usize,
    /// Mask bytes actually written (min of the two under
    /// [`MaskCodec::Auto`]).
    pub mask_bytes: usize,
    /// True when the written mask is RLE-coded.
    pub mask_rle: bool,
    /// Payload bytes written.
    pub payload_bytes: usize,
    /// Total blob size including the fixed header and varints.
    pub encoded_bytes: usize,
}

/// True when the unused high bits of the last packed byte are zero —
/// the canonical layout [`EncMask::new`] maintains. RLE can only
/// reproduce canonical tails, so non-canonical masks are stored raw.
fn tail_is_canonical(packed: &[u8], pixels: usize) -> bool {
    let rem = pixels % 4;
    if rem == 0 {
        return true;
    }
    match packed.last() {
        None => true,
        Some(tail) => tail >> (rem * 2) == 0,
    }
}

/// Serializes `frame` as one frame blob appended to `out`.
///
/// The frame must pass [`EncodedFrame::validate`]: the wire format
/// only carries self-consistent frames, so every parse failure on the
/// read side is genuine corruption rather than a sloppy writer.
///
/// # Errors
///
/// [`WireError::InvalidFrame`] when the frame fails validation.
pub fn encode_frame(
    frame: &EncodedFrame,
    codec: MaskCodec,
    out: &mut Vec<u8>,
) -> Result<FrameEncodeStats> {
    frame
        .validate()
        .map_err(|e| WireError::InvalidFrame { reason: e.to_string() })?;

    let start = out.len();
    out.extend_from_slice(&frame.width().to_le_bytes());
    out.extend_from_slice(&frame.height().to_le_bytes());
    out.extend_from_slice(&frame.frame_idx().to_le_bytes());
    out.extend_from_slice(&frame.integrity().to_le_bytes());

    let mask = frame.metadata().mask.as_bytes();
    let pixels = bytes::usize_from(
        u64::from(frame.width()) * u64::from(frame.height()),
        "frame pixel count",
    )?;
    let raw_mask_bytes = mask.len();
    let rle_mask_bytes = rle::compressed_len(mask, pixels);
    let rle_ok = tail_is_canonical(mask, pixels);
    let use_rle = match codec {
        MaskCodec::Auto => rle_ok && rle_mask_bytes < raw_mask_bytes,
        MaskCodec::Raw => false,
        MaskCodec::Rle => rle_ok,
    };

    let mask_bytes = if use_rle {
        out.push(MASK_ENC_RLE);
        write_varint(out, rle_mask_bytes as u64);
        rle::compress(mask, pixels, out)
    } else {
        out.push(MASK_ENC_RAW);
        write_varint(out, raw_mask_bytes as u64);
        out.extend_from_slice(mask);
        raw_mask_bytes
    };

    let offsets = frame.metadata().row_offsets.as_slice();
    write_varint(out, u64::from(frame.height()));
    let first = offsets.first().copied().ok_or_else(|| WireError::InvalidFrame {
        reason: "row-offset table is empty".into(),
    })?;
    write_varint(out, u64::from(first));
    for w in offsets.windows(2) {
        if let [lo, hi] = w {
            // Non-negative by validate()'s monotonicity check.
            write_varint(out, u64::from(hi - lo));
        }
    }

    let payload = frame.pixels();
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);

    Ok(FrameEncodeStats {
        raw_mask_bytes,
        rle_mask_bytes,
        mask_bytes,
        mask_rle: use_rle,
        payload_bytes: payload.len(),
        encoded_bytes: out.len() - start,
    })
}

/// A frame blob decoded *in place* over a borrowed byte slice.
///
/// The payload is always a borrow of the input; the mask is borrowed
/// too when it was stored raw (`Cow::Borrowed`) and inflated into an
/// owned buffer only when it was RLE-coded. Parsing performs the
/// structural checks needed to make every accessor panic-free but does
/// not verify the integrity digest — promote to an owned
/// [`EncodedFrame`] with [`EncodedFrameView::to_validated_frame`]
/// before trusting the contents.
#[derive(Debug, Clone)]
pub struct EncodedFrameView<'a> {
    width: u32,
    height: u32,
    frame_idx: u64,
    integrity: u64,
    mask: Cow<'a, [u8]>,
    row_offsets: Vec<u32>,
    payload: &'a [u8],
}

impl<'a> EncodedFrameView<'a> {
    /// Parses one frame blob from the start of `buf`, returning the
    /// view and the number of bytes it occupied.
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] for every malformation: truncation,
    /// malformed varints, dimension/pixel-count limits, bad RLE, or
    /// structurally inconsistent lengths. Never panics, whatever the
    /// input bytes.
    pub fn parse_prefix(buf: &'a [u8]) -> Result<(Self, usize)> {
        if buf.len() < FRAME_HEADER_LEN {
            return Err(WireError::Truncated {
                what: "frame header",
                needed: FRAME_HEADER_LEN as u64,
                available: buf.len() as u64,
            });
        }
        let width = bytes::le_u32(buf, 0, "frame width")?;
        let height = bytes::le_u32(buf, 4, "frame height")?;
        let frame_idx = bytes::le_u64(buf, 8, "frame index")?;
        let integrity = bytes::le_u64(buf, 16, "frame integrity digest")?;
        let mask_encoding = bytes::byte_at(buf, 24, "mask encoding byte")?;

        for (dim, what) in [(width, "frame width"), (height, "frame height")] {
            if dim > MAX_DIMENSION {
                return Err(WireError::LimitExceeded {
                    what,
                    value: u64::from(dim),
                    limit: u64::from(MAX_DIMENSION),
                });
            }
        }
        let pixels = u64::from(width) * u64::from(height);
        if pixels > MAX_PIXELS {
            return Err(WireError::LimitExceeded {
                what: "frame pixel count",
                value: pixels,
                limit: MAX_PIXELS,
            });
        }
        let pixels = bytes::usize_from(pixels, "frame pixel count")?;

        let mut pos = FRAME_HEADER_LEN;
        let mask_len = read_varint(buf, &mut pos, "mask length")?;
        let available = (buf.len() - pos) as u64;
        if mask_len > available {
            return Err(WireError::Truncated {
                what: "frame mask",
                needed: mask_len,
                available,
            });
        }
        let mask_len = bytes::usize_from(mask_len, "mask length")?;
        let mask_bytes = bytes::slice_at(buf, pos, mask_len, "frame mask")?;
        pos += mask_len;
        let expected_mask = pixels.div_ceil(4);
        let mask: Cow<'a, [u8]> = match mask_encoding {
            MASK_ENC_RAW => {
                if mask_len != expected_mask {
                    return Err(WireError::CorruptFrame {
                        reason: format!(
                            "raw mask is {mask_len} bytes, {width}x{height} needs {expected_mask}"
                        ),
                    });
                }
                Cow::Borrowed(mask_bytes)
            }
            MASK_ENC_RLE => Cow::Owned(rle::inflate(mask_bytes, pixels)?),
            other => {
                return Err(WireError::CorruptFrame {
                    reason: format!("unknown mask encoding {other}"),
                })
            }
        };

        let rows = read_varint(buf, &mut pos, "row count")?;
        if rows != u64::from(height) {
            return Err(WireError::CorruptFrame {
                reason: format!("offset table declares {rows} rows, frame has {height}"),
            });
        }
        let row_count = bytes::usize_from(u64::from(height), "row count")?;
        let mut row_offsets = Vec::with_capacity(row_count + 1);
        let mut acc = read_varint(buf, &mut pos, "row offset base")?;
        for _ in 0..=row_count {
            let off = u32::try_from(acc).map_err(|_| WireError::CorruptFrame {
                reason: format!("row offset {acc} overflows u32"),
            })?;
            row_offsets.push(off);
            if row_offsets.len() <= row_count {
                // checked_add: a forged delta near u64::MAX must be a
                // typed error, not a debug-build overflow panic.
                let delta = read_varint(buf, &mut pos, "row offset delta")?;
                acc = acc.checked_add(delta).ok_or_else(|| WireError::CorruptFrame {
                    reason: format!("row offset {acc} + delta {delta} overflows u64"),
                })?;
            }
        }

        let payload_len = read_varint(buf, &mut pos, "payload length")?;
        if payload_len > MAX_PIXELS {
            return Err(WireError::LimitExceeded {
                what: "payload length",
                value: payload_len,
                limit: MAX_PIXELS,
            });
        }
        let available = (buf.len() - pos) as u64;
        if payload_len > available {
            return Err(WireError::Truncated {
                what: "frame payload",
                needed: payload_len,
                available,
            });
        }
        let payload_len = bytes::usize_from(payload_len, "payload length")?;
        let payload = bytes::slice_at(buf, pos, payload_len, "frame payload")?;
        pos += payload_len;

        Ok((
            EncodedFrameView { width, height, frame_idx, integrity, mask, row_offsets, payload },
            pos,
        ))
    }

    /// Parses a buffer that must hold exactly one frame blob (the shape
    /// of a container frame chunk's payload).
    ///
    /// # Errors
    ///
    /// Everything [`EncodedFrameView::parse_prefix`] raises, plus
    /// [`WireError::CorruptFrame`] when bytes trail the blob.
    pub fn parse(buf: &'a [u8]) -> Result<Self> {
        let (view, consumed) = Self::parse_prefix(buf)?;
        if consumed != buf.len() {
            return Err(WireError::CorruptFrame {
                reason: format!("{} trailing bytes after frame blob", buf.len() - consumed),
            });
        }
        Ok(view)
    }

    /// Original frame width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Original frame height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Position of the frame in its capture sequence.
    pub fn frame_idx(&self) -> u64 {
        self.frame_idx
    }

    /// The FNV-1a digest carried from the original [`EncodedFrame`].
    pub fn integrity(&self) -> u64 {
        self.integrity
    }

    /// The packed 2-bit mask bytes (borrowed from the input when the
    /// blob stored them raw).
    pub fn mask_bytes(&self) -> &[u8] {
        &self.mask
    }

    /// True when the mask bytes are a zero-copy borrow of the input
    /// slice (raw mask encoding) rather than an inflated RLE buffer.
    pub fn mask_is_borrowed(&self) -> bool {
        matches!(self.mask, Cow::Borrowed(_))
    }

    /// The cumulative row-offset table (length `height + 1`).
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// The packed regional payload, borrowed from the input slice.
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// The 2-bit status of pixel `(x, y)`, or `None` out of bounds.
    pub fn status_bits(&self, x: u32, y: u32) -> Option<u8> {
        if x >= self.width || y >= self.height {
            return None;
        }
        let i =
            usize::try_from(u64::from(y) * u64::from(self.width) + u64::from(x)).ok()?;
        Some((self.mask.get(i / 4)? >> ((i % 4) * 2)) & 0b11)
    }

    /// Promotes the view to an owned [`EncodedFrame`], copying the
    /// mask and payload. The digest travels verbatim, so the result
    /// compares equal to the frame originally serialized — and
    /// [`EncodedFrame::validate`] still detects content corruption
    /// that slipped past the structural parse.
    pub fn to_frame(&self) -> EncodedFrame {
        let mask = EncMask::from_raw_bytes(self.width, self.height, self.mask.to_vec())
            // rpr-check: allow(panic-surface): parse_prefix checked the mask is exactly width*height 2-bit entries, so from_raw_bytes cannot fail on any view this crate constructs
            .expect("parse sized the mask to width x height");
        let metadata = FrameMetadata {
            row_offsets: RowOffsets::from_raw_offsets(self.row_offsets.clone()),
            mask,
        };
        EncodedFrame::from_raw_parts(
            self.width,
            self.height,
            self.frame_idx,
            self.payload.to_vec(),
            metadata,
            self.integrity,
        )
    }

    /// [`EncodedFrameView::to_frame`] promoting into buffers recycled
    /// from `pool`, so a long-lived stream decoder reaches a
    /// zero-allocation steady state: the mask, offset table, and
    /// payload copies all reuse returned capacity.
    pub fn to_frame_in(&self, pool: &rpr_core::BufferPool) -> EncodedFrame {
        let mut mask_vec = pool.get_vec();
        mask_vec.extend_from_slice(&self.mask);
        let mask = EncMask::from_raw_bytes(self.width, self.height, mask_vec)
            // rpr-check: allow(panic-surface): parse_prefix checked the mask is exactly width*height 2-bit entries, so from_raw_bytes cannot fail on any view this crate constructs
            .expect("parse sized the mask to width x height");
        let mut offsets = pool.get_words();
        offsets.extend_from_slice(&self.row_offsets);
        let mut payload = pool.get_shared();
        std::sync::Arc::make_mut(&mut payload).extend_from_slice(self.payload);
        let metadata =
            FrameMetadata { row_offsets: RowOffsets::from_raw_offsets(offsets), mask };
        EncodedFrame::from_shared_parts(
            self.width,
            self.height,
            self.frame_idx,
            payload,
            metadata,
            self.integrity,
        )
    }

    /// [`EncodedFrameView::to_frame`] plus a full
    /// [`EncodedFrame::validate`] pass.
    ///
    /// # Errors
    ///
    /// [`WireError::CorruptFrame`] wrapping the validation failure.
    pub fn to_validated_frame(&self) -> Result<EncodedFrame> {
        let frame = self.to_frame();
        frame
            .validate()
            .map_err(|e| WireError::CorruptFrame { reason: e.to_string() })?;
        Ok(frame)
    }

    /// [`EncodedFrameView::to_frame_in`] plus a full
    /// [`EncodedFrame::validate`] pass.
    ///
    /// # Errors
    ///
    /// [`WireError::CorruptFrame`] wrapping the validation failure.
    pub fn to_validated_frame_in(&self, pool: &rpr_core::BufferPool) -> Result<EncodedFrame> {
        let frame = self.to_frame_in(pool);
        frame
            .validate()
            .map_err(|e| WireError::CorruptFrame { reason: e.to_string() })?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_core::PixelStatus;

    fn sample_frame(frame_idx: u64) -> EncodedFrame {
        let mut mask = EncMask::new(24, 10);
        let mut payload = Vec::new();
        for y in 3..8 {
            for x in 5..17 {
                if (x + y) % 3 != 0 {
                    mask.set(x, y, PixelStatus::Regional);
                    payload.push((x * 7 + y * 13) as u8);
                } else {
                    mask.set(x, y, PixelStatus::Strided);
                }
            }
        }
        let meta = FrameMetadata::from_mask(mask);
        EncodedFrame::new(24, 10, frame_idx, payload, meta)
    }

    fn encode(frame: &EncodedFrame, codec: MaskCodec) -> (Vec<u8>, FrameEncodeStats) {
        let mut buf = Vec::new();
        let stats = encode_frame(frame, codec, &mut buf).unwrap();
        assert_eq!(stats.encoded_bytes, buf.len());
        (buf, stats)
    }

    #[test]
    fn roundtrip_auto_is_byte_identical() {
        let frame = sample_frame(42);
        let (buf, stats) = encode(&frame, MaskCodec::Auto);
        assert!(stats.mask_rle, "runny sample mask should pick RLE");
        let view = EncodedFrameView::parse(&buf).unwrap();
        assert_eq!(view.frame_idx(), 42);
        let back = view.to_validated_frame().unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn roundtrip_raw_is_byte_identical_and_zero_copy() {
        let frame = sample_frame(7);
        let (buf, stats) = encode(&frame, MaskCodec::Raw);
        assert!(!stats.mask_rle);
        assert_eq!(stats.mask_bytes, stats.raw_mask_bytes);
        let view = EncodedFrameView::parse(&buf).unwrap();
        assert!(view.mask_is_borrowed(), "raw mask must be a zero-copy borrow");
        // The payload always borrows: its bytes live inside `buf`.
        let buf_range = buf.as_ptr() as usize..buf.as_ptr() as usize + buf.len();
        assert!(buf_range.contains(&(view.payload().as_ptr() as usize)));
        assert_eq!(view.to_validated_frame().unwrap(), frame);
    }

    #[test]
    fn rle_view_inflates_mask() {
        let frame = sample_frame(1);
        let (buf, _) = encode(&frame, MaskCodec::Rle);
        let view = EncodedFrameView::parse(&buf).unwrap();
        assert!(!view.mask_is_borrowed());
        assert_eq!(view.mask_bytes(), frame.metadata().mask.as_bytes());
    }

    #[test]
    fn view_accessors_match_frame() {
        let frame = sample_frame(3);
        let (buf, _) = encode(&frame, MaskCodec::Auto);
        let view = EncodedFrameView::parse(&buf).unwrap();
        assert_eq!(view.width(), frame.width());
        assert_eq!(view.height(), frame.height());
        assert_eq!(view.integrity(), frame.integrity());
        assert_eq!(view.payload(), frame.pixels());
        assert_eq!(view.row_offsets(), frame.metadata().row_offsets.as_slice());
        for y in 0..frame.height() {
            for x in 0..frame.width() {
                assert_eq!(
                    view.status_bits(x, y).unwrap(),
                    frame.metadata().mask.get(x, y).bits()
                );
            }
        }
        assert_eq!(view.status_bits(frame.width(), 0), None);
    }

    #[test]
    fn pooled_promotion_matches_plain_promotion() {
        let frame = sample_frame(8);
        let pool = rpr_core::BufferPool::new();
        for codec in [MaskCodec::Raw, MaskCodec::Rle] {
            let (buf, _) = encode(&frame, codec);
            let view = EncodedFrameView::parse(&buf).unwrap();
            let pooled = view.to_validated_frame_in(&pool).unwrap();
            assert_eq!(pooled, view.to_validated_frame().unwrap());
            assert_eq!(pooled, frame);
            pooled.recycle(&pool);
        }
        assert!(pool.stats().puts > 0);
    }

    #[test]
    fn invalid_frames_are_refused_by_the_writer() {
        let frame = sample_frame(0);
        let mut pixels = frame.pixels().to_vec();
        pixels[0] ^= 0xFF;
        let bad = EncodedFrame::from_raw_parts(
            frame.width(),
            frame.height(),
            frame.frame_idx(),
            pixels,
            frame.metadata().clone(),
            frame.integrity(),
        );
        let mut buf = Vec::new();
        assert!(matches!(
            encode_frame(&bad, MaskCodec::Auto, &mut buf),
            Err(WireError::InvalidFrame { .. })
        ));
        assert!(buf.is_empty(), "nothing may be written for refused frames");
    }

    #[test]
    fn truncations_at_every_length_are_typed_errors() {
        let frame = sample_frame(9);
        let (buf, _) = encode(&frame, MaskCodec::Auto);
        for len in 0..buf.len() {
            let err = EncodedFrameView::parse(&buf[..len])
                .expect_err("every strict prefix must fail");
            // Any typed error is acceptable; panics are not.
            let _ = err.to_string();
        }
    }

    #[test]
    fn oversized_dimensions_are_rejected_before_allocating() {
        let mut buf = vec![0u8; FRAME_HEADER_LEN + 8];
        buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        buf[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            EncodedFrameView::parse_prefix(&buf),
            Err(WireError::LimitExceeded { what: "frame width", .. })
        ));
        // Dimensions inside the cap whose product overflows it.
        buf[0..4].copy_from_slice(&MAX_DIMENSION.to_le_bytes());
        buf[4..8].copy_from_slice(&MAX_DIMENSION.to_le_bytes());
        assert!(matches!(
            EncodedFrameView::parse_prefix(&buf),
            Err(WireError::LimitExceeded { what: "frame pixel count", .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected_by_exact_parse() {
        let frame = sample_frame(2);
        let (mut buf, _) = encode(&frame, MaskCodec::Auto);
        buf.push(0);
        assert!(matches!(
            EncodedFrameView::parse(&buf),
            Err(WireError::CorruptFrame { .. })
        ));
        // parse_prefix still succeeds and reports the true length.
        let (view, consumed) = EncodedFrameView::parse_prefix(&buf).unwrap();
        assert_eq!(consumed, buf.len() - 1);
        assert_eq!(view.to_validated_frame().unwrap(), frame);
    }

    #[test]
    fn empty_frame_roundtrips() {
        let mask = EncMask::new(6, 0);
        let meta = FrameMetadata::from_mask(mask);
        let frame = EncodedFrame::new(6, 0, 11, Vec::new(), meta);
        let (buf, _) = encode(&frame, MaskCodec::Auto);
        let back = EncodedFrameView::parse(&buf).unwrap().to_validated_frame().unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn row_offset_delta_overflowing_u64_is_a_typed_error() {
        // Regression: `acc += delta` used to overflow-panic in debug
        // builds when a forged delta varint pushed the accumulator past
        // u64::MAX. Hand-build the blob: 4x2 frame, raw 2-byte mask,
        // base offset at u32::MAX, first delta u64::MAX.
        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.push(0); // raw mask encoding
        write_varint(&mut buf, 2); // mask_len
        buf.extend_from_slice(&[0, 0]);
        write_varint(&mut buf, 2); // rows
        write_varint(&mut buf, u64::from(u32::MAX)); // offset base
        write_varint(&mut buf, u64::MAX); // delta: overflows the accumulator
        write_varint(&mut buf, 0);
        write_varint(&mut buf, 0); // payload_len
        let err = EncodedFrameView::parse_prefix(&buf).expect_err("must not panic");
        assert!(matches!(err, WireError::CorruptFrame { .. }), "{err:?}");
        assert!(err.to_string().contains("overflow"), "{err}");
    }

    #[test]
    fn delta_coded_offsets_cannot_encode_regressions() {
        // A blob whose offset deltas are all valid parses monotonic by
        // construction; corrupting a delta varint to a huge value trips
        // the u32 overflow guard instead of producing a bogus table.
        let frame = sample_frame(5);
        let (buf, _) = encode(&frame, MaskCodec::Raw);
        let view = EncodedFrameView::parse(&buf).unwrap();
        assert!(view.row_offsets().windows(2).all(|w| w[0] <= w[1]));
    }
}

//! Panic-free primitive reads over untrusted byte slices.
//!
//! Every accessor returns a typed [`WireError`] instead of panicking:
//! these helpers are what keep the parse surfaces clean under the
//! rpr-check `panic-surface` and `truncating-cast` lints without
//! sprinkling bounds arithmetic through the format code.

use crate::{Result, WireError};

/// Reads a fixed-size little-endian array at `at`.
///
/// # Errors
///
/// [`WireError::Truncated`] when fewer than `N` bytes remain.
pub(crate) fn take<const N: usize>(
    buf: &[u8],
    at: usize,
    what: &'static str,
) -> Result<[u8; N]> {
    let end = at.checked_add(N).ok_or(WireError::Truncated {
        what,
        needed: u64::MAX,
        available: buf.len() as u64,
    })?;
    buf.get(at..end)
        .and_then(|s| s.try_into().ok())
        .ok_or(WireError::Truncated { what, needed: end as u64, available: buf.len() as u64 })
}

/// Reads a `u16` (little-endian) at `at`.
///
/// # Errors
///
/// [`WireError::Truncated`] when fewer than 2 bytes remain.
pub(crate) fn le_u16(buf: &[u8], at: usize, what: &'static str) -> Result<u16> {
    take::<2>(buf, at, what).map(u16::from_le_bytes)
}

/// Reads a `u32` (little-endian) at `at`.
///
/// # Errors
///
/// [`WireError::Truncated`] when fewer than 4 bytes remain.
pub(crate) fn le_u32(buf: &[u8], at: usize, what: &'static str) -> Result<u32> {
    take::<4>(buf, at, what).map(u32::from_le_bytes)
}

/// Reads a `u64` (little-endian) at `at`.
///
/// # Errors
///
/// [`WireError::Truncated`] when fewer than 8 bytes remain.
pub(crate) fn le_u64(buf: &[u8], at: usize, what: &'static str) -> Result<u64> {
    take::<8>(buf, at, what).map(u64::from_le_bytes)
}

/// Reads the single byte at `at`.
///
/// # Errors
///
/// [`WireError::Truncated`] when `at` is out of bounds.
pub(crate) fn byte_at(buf: &[u8], at: usize, what: &'static str) -> Result<u8> {
    buf.get(at).copied().ok_or(WireError::Truncated {
        what,
        needed: at as u64 + 1,
        available: buf.len() as u64,
    })
}

/// Borrows `len` bytes starting at `at`.
///
/// # Errors
///
/// [`WireError::Truncated`] when the range runs past the buffer (or
/// its end overflows `usize`).
pub(crate) fn slice_at<'a>(
    buf: &'a [u8],
    at: usize,
    len: usize,
    what: &'static str,
) -> Result<&'a [u8]> {
    let end = at.checked_add(len).ok_or(WireError::Truncated {
        what,
        needed: u64::MAX,
        available: buf.len() as u64,
    })?;
    buf.get(at..end).ok_or(WireError::Truncated {
        what,
        needed: end as u64,
        available: buf.len() as u64,
    })
}

/// Converts a wire-declared `u64` length to `usize` without silent
/// truncation (relevant on 32-bit hosts, where a forged 2^40 length
/// must become a typed error, not a wrapped allocation size).
///
/// # Errors
///
/// [`WireError::LimitExceeded`] when the value does not fit.
pub(crate) fn usize_from(v: u64, what: &'static str) -> Result<usize> {
    usize::try_from(v).map_err(|_| WireError::LimitExceeded {
        what,
        value: v,
        limit: usize::MAX as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_match_manual_decoding() {
        let buf = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
        assert_eq!(le_u16(&buf, 0, "t").unwrap(), 0x0201);
        assert_eq!(le_u32(&buf, 1, "t").unwrap(), 0x05040302);
        assert_eq!(le_u64(&buf, 1, "t").unwrap(), 0x0908070605040302);
        assert_eq!(byte_at(&buf, 8, "t").unwrap(), 0x09);
        assert_eq!(slice_at(&buf, 2, 3, "t").unwrap(), &[0x03, 0x04, 0x05]);
    }

    #[test]
    fn out_of_bounds_reads_are_typed_errors() {
        let buf = [0u8; 4];
        assert!(matches!(le_u32(&buf, 1, "t"), Err(WireError::Truncated { .. })));
        assert!(matches!(le_u64(&buf, 0, "t"), Err(WireError::Truncated { .. })));
        assert!(matches!(byte_at(&buf, 4, "t"), Err(WireError::Truncated { .. })));
        assert!(matches!(slice_at(&buf, 3, 2, "t"), Err(WireError::Truncated { .. })));
        // Range-end overflow must not wrap around to a small index.
        assert!(matches!(
            slice_at(&buf, usize::MAX, 2, "t"),
            Err(WireError::Truncated { .. })
        ));
    }
}

//! # rpr-wire
//!
//! The wire format for rhythmic-pixel streams: a canonical
//! little-endian bitstream for [`rpr_core::EncodedFrame`]s and the
//! chunked `.rpr` container that carries them, with record/replay as
//! the driving use case.
//!
//! The paper's encoded representation already makes frames small — the
//! packed `R` payload plus ~2 bits/px of metadata. What it does not
//! give is a way to get those frames *out of the system*: spill them
//! from a live [`rpr-stream`] pipeline, archive them, and replay them
//! later into a workload deterministically. That is this crate:
//!
//! - [`frame`] — one frame as a self-contained little-endian blob:
//!   fixed header, RLE- or raw-coded EncMask, delta-varint row
//!   offsets, raw payload last. See the module docs for the byte
//!   layout.
//! - [`container`] — the `.rpr` file: CRC32-guarded chunks, a
//!   trailing frame index for O(1) seek, a fixed trailer locating it,
//!   and a sequential-scan recovery path for unfinished files.
//! - [`EncodedFrameView`] — zero-copy decoding: the payload (and the
//!   mask, when stored raw) is borrowed straight from the input slice;
//!   nothing is re-allocated until the caller asks for an owned
//!   [`rpr_core::EncodedFrame`].
//!
//! ## Trust model
//!
//! The parser treats every input byte as hostile: all reads are
//! bounds-checked, declared sizes are capped before allocation
//! ([`MAX_DIMENSION`], [`MAX_PIXELS`], [`MAX_FRAME_COUNT`]), and every
//! malformation maps to a typed [`WireError`] — never a panic. Three
//! independent layers catch corruption:
//!
//! 1. **CRC32 per chunk** — transport damage (bit rot, torn writes).
//! 2. **Structural parse** — truncation, bad varints, bad RLE,
//!    inconsistent lengths.
//! 3. **Frame digest** ([`rpr_core::EncodedFrame::validate`]) —
//!    content corruption that forged or repaired CRCs cannot hide,
//!    plus stale index entries via the `frame_idx` cross-check.
//!
//! The `rpr-testkit` conformance harness injects faults at each layer
//! and asserts the matching typed error.
//!
//! ## Example
//!
//! ```
//! use rpr_core::{EncMask, EncodedFrame, FrameMetadata, PixelStatus};
//! use rpr_wire::{write_container, ContainerReader};
//!
//! let mut mask = EncMask::new(8, 4);
//! mask.set(2, 1, PixelStatus::Regional);
//! let frame = EncodedFrame::new(8, 4, 0, vec![123], FrameMetadata::from_mask(mask));
//!
//! let bytes = write_container(std::slice::from_ref(&frame)).unwrap();
//! let reader = ContainerReader::open(&bytes).unwrap();
//! let view = reader.view(0).unwrap();        // zero-copy
//! assert_eq!(view.payload(), &[123]);
//! assert_eq!(reader.frame(0).unwrap(), frame); // owned + validated
//! ```

#![deny(missing_docs)]

mod bytes;
pub mod container;
pub mod crc32;
mod error;
pub mod frame;
pub mod rle;
pub mod stream;
pub mod varint;

pub use container::{
    frame_chunk, list_chunks, parse_entries, read_all, rewrite_chunk_crc, write_container,
    ContainerReader,
    ContainerWriter, FrameEntry, RawChunk, WriterStats, CHUNK_FRAME, CHUNK_HEADER_LEN,
    CHUNK_INDEX, FILE_MAGIC, FORMAT_VERSION, HEADER_LEN, MAX_FRAME_COUNT, TRAILER_LEN,
    TRAILER_MAGIC,
};
pub use crc32::{crc32, crc32_scalar};
pub use error::{Result, WireError};
pub use frame::{
    encode_frame, EncodedFrameView, FrameEncodeStats, MaskCodec, FRAME_HEADER_LEN, MAX_DIMENSION,
    MAX_PIXELS,
};
pub use stream::{StreamDecoder, StreamEvent, MAX_STREAM_CHUNK};

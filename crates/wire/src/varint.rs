//! LEB128 unsigned varints, the variable-length integers of the wire
//! format (lengths, row-offset deltas, index entries).
//!
//! Encoding is the standard protobuf/WebAssembly scheme: 7 value bits
//! per byte, little-endian groups, high bit = continuation. A `u64`
//! occupies at most 10 bytes; the decoder enforces that cap so a
//! corrupted continuation bit cannot walk past the buffer.

use crate::{Result, WireError};

/// Maximum encoded length of a `u64`.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the varint encoding of `value` to `out`. Returns the number
/// of bytes written (1–10).
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7F) as u8; // rpr-check: allow(truncating-cast): masked to the low 7 bits before the cast
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded length of `value` without writing it.
pub fn varint_len(value: u64) -> usize {
    let bits = u64::BITS - value.leading_zeros();
    usize::try_from(bits.div_ceil(7).max(1)).unwrap_or(MAX_VARINT_LEN)
}

/// Decodes a varint from `buf` starting at `*pos`, advancing `*pos`
/// past it. `what` names the field for error reporting.
///
/// # Errors
///
/// [`WireError::BadVarint`] when the buffer ends mid-varint, the
/// encoding exceeds 10 bytes, or the tenth byte carries bits beyond
/// `u64`.
pub fn read_varint(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for i in 0..MAX_VARINT_LEN {
        let Some(&byte) = buf.get(*pos + i) else {
            return Err(WireError::BadVarint { what });
        };
        let low = u64::from(byte & 0x7F);
        // The tenth byte may only contribute the single remaining bit.
        if shift == 63 && low > 1 {
            return Err(WireError::BadVarint { what });
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            *pos += i + 1;
            return Ok(value);
        }
        shift += 7;
    }
    Err(WireError::BadVarint { what })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_representative_values() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            let n = write_varint(&mut buf, v);
            assert_eq!(n, buf.len());
            assert_eq!(n, varint_len(v), "len mismatch for {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos, "test").unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn single_byte_boundary() {
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(u64::MAX), 10);
    }

    #[test]
    fn truncated_buffer_is_typed_error() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1_000_000);
        buf.pop();
        let mut pos = 0;
        assert!(matches!(
            read_varint(&buf, &mut pos, "field"),
            Err(WireError::BadVarint { what: "field" })
        ));
    }

    #[test]
    fn overlong_encoding_is_rejected() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos, "field").is_err());
        // A tenth byte with more than one value bit overflows u64.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos, "field").is_err());
    }
}

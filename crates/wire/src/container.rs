//! The chunked `.rpr` container: file header, CRC-guarded chunks, a
//! trailing frame index for O(1) seek, and a fixed trailer locating it.
//!
//! ```text
//! file   := header chunk* index-chunk trailer
//! header := magic "RPRWIRE1" (8) | version u16 LE | flags u16 LE
//!           | crc32 over bytes 0..12 (4)                      = 16 B
//! chunk  := kind u8 ('F' frame | 'I' index) | payload_len u32 LE
//!           | crc32(payload) u32 LE | payload                 = 9 B + len
//! index  := payload of the 'I' chunk: count varint, then per frame
//!           frame_idx varint | chunk_offset varint | payload_len varint
//! trailer:= index_chunk_offset u64 LE | index_payload_len u32 LE
//!           | crc32 over trailer bytes 0..12 (4) | magic "RPRX" = 20 B
//! ```
//!
//! Readers find the index in O(1) from the trailer and seek straight
//! to any frame chunk; [`ContainerReader::scan`] instead walks the
//! chunks sequentially, which recovers unfinished files that never got
//! an index. Every structure is checksummed independently, so the
//! conformance harness can corrupt one layer at a time and assert the
//! matching typed [`WireError`].

use std::io::Write;

use rpr_core::EncodedFrame;
use serde::{Deserialize, Serialize};

use crate::bytes as raw;
use crate::crc32::crc32;
use crate::frame::{encode_frame, EncodedFrameView, MaskCodec};
use crate::varint::{read_varint, write_varint};
use crate::{Result, WireError};

/// File header magic.
pub const FILE_MAGIC: [u8; 8] = *b"RPRWIRE1";
/// Trailer magic (last four bytes of every finished container).
pub const TRAILER_MAGIC: [u8; 4] = *b"RPRX";
/// Container format version this crate reads and writes.
pub const FORMAT_VERSION: u16 = 1;
/// Size of the file header in bytes.
pub const HEADER_LEN: usize = 16;
/// Size of a chunk header (kind + payload_len + crc32).
pub const CHUNK_HEADER_LEN: usize = 9;
/// Size of the fixed trailer in bytes.
pub const TRAILER_LEN: usize = 20;
/// Chunk kind carrying one frame blob.
pub const CHUNK_FRAME: u8 = b'F';
/// Chunk kind carrying the frame index.
pub const CHUNK_INDEX: u8 = b'I';
/// Hard cap on the declared index entry count (allocation-bomb guard).
pub const MAX_FRAME_COUNT: u64 = 1 << 24;

/// One entry of the trailing frame index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameEntry {
    /// `frame_idx` of the frame the chunk claims to hold. Readers
    /// cross-check this against the parsed blob, which is what catches
    /// stale index entries pointing at the wrong chunk.
    pub frame_idx: u64,
    /// Byte offset of the frame chunk's header from the file start.
    pub offset: u64,
    /// Length of the chunk's payload (the frame blob).
    pub len: u32,
}

/// Aggregate size accounting from a [`ContainerWriter`], the numbers
/// behind `BENCH_wire.json`'s RLE-vs-raw comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WriterStats {
    /// Frames appended.
    pub frames: u64,
    /// Sum of payload bytes across frames.
    pub payload_bytes: u64,
    /// Sum of packed 2-bit mask sizes (what raw coding would store).
    pub raw_mask_bytes: u64,
    /// Sum of RLE-coded mask sizes (whether or not RLE was chosen).
    pub rle_mask_bytes: u64,
    /// Mask bytes actually written.
    pub mask_bytes_written: u64,
    /// Frames whose mask was RLE-coded.
    pub rle_frames: u64,
    /// Total container size, header through trailer.
    pub container_bytes: u64,
}

/// Streaming writer producing a `.rpr` container on any [`Write`].
///
/// Frames are validated and flushed chunk-by-chunk as they arrive;
/// [`ContainerWriter::finish`] appends the index and trailer. Dropping
/// the writer without finishing leaves a header + frame chunks file
/// that [`ContainerReader::scan`] can still recover.
pub struct ContainerWriter<W: Write> {
    sink: W,
    codec: MaskCodec,
    offset: u64,
    entries: Vec<FrameEntry>,
    stats: WriterStats,
    scratch: Vec<u8>,
}

impl<W: Write> ContainerWriter<W> {
    /// Starts a container on `sink` with the default
    /// [`MaskCodec::Auto`], writing the file header immediately.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the sink rejects the header.
    pub fn new(sink: W) -> Result<Self> {
        Self::with_codec(sink, MaskCodec::Auto)
    }

    /// Starts a container with an explicit mask codec.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the sink rejects the header.
    pub fn with_codec(mut sink: W, codec: MaskCodec) -> Result<Self> {
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&FILE_MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        sink.write_all(&header)?;
        Ok(ContainerWriter {
            sink,
            codec,
            offset: HEADER_LEN as u64,
            entries: Vec::new(),
            stats: WriterStats { container_bytes: HEADER_LEN as u64, ..Default::default() },
            scratch: Vec::new(),
        })
    }

    fn write_chunk(&mut self, kind: u8, payload: &[u8]) -> Result<u64> {
        let len = u32::try_from(payload.len()).map_err(|_| WireError::BadChunk {
            reason: format!("chunk payload of {} bytes exceeds u32", payload.len()),
        })?;
        let chunk_offset = self.offset;
        // Stack-built header: append() is the hot path and must not
        // allocate per chunk.
        let mut head = [0u8; CHUNK_HEADER_LEN];
        head[0] = kind; // rpr-check: allow(panic-surface): constant index into a [u8; CHUNK_HEADER_LEN] array
        head[1..5].copy_from_slice(&len.to_le_bytes()); // rpr-check: allow(panic-surface): constant range inside the 9-byte header array
        head[5..9].copy_from_slice(&crc32(payload).to_le_bytes()); // rpr-check: allow(panic-surface): constant range inside the 9-byte header array
        self.sink.write_all(&head)?;
        self.sink.write_all(payload)?;
        self.offset += (CHUNK_HEADER_LEN + payload.len()) as u64;
        self.stats.container_bytes = self.offset;
        Ok(chunk_offset)
    }

    /// Appends one frame as a CRC-guarded frame chunk.
    ///
    /// # Errors
    ///
    /// [`WireError::InvalidFrame`] when the frame fails
    /// [`EncodedFrame::validate`], [`WireError::Io`] on sink failure.
    pub fn append(&mut self, frame: &EncodedFrame) -> Result<()> {
        let mut blob = std::mem::take(&mut self.scratch);
        blob.clear();
        let frame_stats = encode_frame(frame, self.codec, &mut blob)?;
        let result = self.write_chunk(CHUNK_FRAME, &blob);
        self.scratch = blob;
        let chunk_offset = result?;
        let len = u32::try_from(frame_stats.encoded_bytes).map_err(|_| WireError::BadChunk {
            reason: format!("frame blob of {} bytes exceeds u32", frame_stats.encoded_bytes),
        })?;
        self.entries.push(FrameEntry {
            frame_idx: frame.frame_idx(),
            offset: chunk_offset,
            len,
        });
        self.stats.frames += 1;
        self.stats.payload_bytes += frame_stats.payload_bytes as u64;
        self.stats.raw_mask_bytes += frame_stats.raw_mask_bytes as u64;
        self.stats.rle_mask_bytes += frame_stats.rle_mask_bytes as u64;
        self.stats.mask_bytes_written += frame_stats.mask_bytes as u64;
        self.stats.rle_frames += u64::from(frame_stats.mask_rle);
        Ok(())
    }

    /// Frames appended so far.
    pub fn stats(&self) -> &WriterStats {
        &self.stats
    }

    /// Writes the index chunk and trailer, returning the sink and the
    /// final accounting.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on sink failure.
    pub fn finish(mut self) -> Result<(W, WriterStats)> {
        let mut index = Vec::new();
        write_varint(&mut index, self.entries.len() as u64);
        for e in &self.entries {
            write_varint(&mut index, e.frame_idx);
            write_varint(&mut index, e.offset);
            write_varint(&mut index, u64::from(e.len));
        }
        let index_len = u32::try_from(index.len()).map_err(|_| WireError::BadChunk {
            reason: format!("index payload of {} bytes exceeds u32", index.len()),
        })?;
        let index_offset = self.write_chunk(CHUNK_INDEX, &index)?;

        let mut trailer = Vec::with_capacity(TRAILER_LEN);
        trailer.extend_from_slice(&index_offset.to_le_bytes());
        trailer.extend_from_slice(&index_len.to_le_bytes());
        let crc = crc32(&trailer);
        trailer.extend_from_slice(&crc.to_le_bytes());
        trailer.extend_from_slice(&TRAILER_MAGIC);
        self.sink.write_all(&trailer)?;
        self.sink.flush()?;
        self.offset += TRAILER_LEN as u64;
        self.stats.container_bytes = self.offset;
        Ok((self.sink, self.stats))
    }
}

/// Checks the 16-byte file header. Returns nothing; the version and
/// flags are the only variable fields and v1 readers ignore flags
/// (reserved, writers emit zero).
pub(crate) fn check_header(bytes: &[u8]) -> Result<()> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            what: "file header",
            needed: HEADER_LEN as u64,
            available: bytes.len() as u64,
        });
    }
    if raw::slice_at(bytes, 0, 8, "file header magic")? != FILE_MAGIC {
        return Err(WireError::BadMagic { what: "file header" });
    }
    let stored = raw::le_u32(bytes, 12, "file header checksum")?;
    let computed = crc32(raw::slice_at(bytes, 0, 12, "file header")?);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { what: "file header", stored, computed });
    }
    let version = raw::le_u16(bytes, 8, "format version")?;
    if version != FORMAT_VERSION {
        return Err(WireError::UnsupportedVersion { version });
    }
    Ok(())
}

/// Parses the fixed trailer, returning `(index_chunk_offset,
/// index_payload_len)`.
fn parse_trailer(bytes: &[u8]) -> Result<(u64, u32)> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(WireError::Truncated {
            what: "container trailer",
            needed: (HEADER_LEN + TRAILER_LEN) as u64,
            available: bytes.len() as u64,
        });
    }
    let t = raw::slice_at(bytes, bytes.len() - TRAILER_LEN, TRAILER_LEN, "container trailer")?;
    parse_trailer_slice(t)
}

/// Parses exactly the [`TRAILER_LEN`] trailer bytes — the shared core
/// of [`parse_trailer`] and the streaming decoder, which holds the
/// trailer in its own buffer rather than at the end of a whole file.
pub(crate) fn parse_trailer_slice(t: &[u8]) -> Result<(u64, u32)> {
    if raw::slice_at(t, 16, 4, "trailer magic")? != TRAILER_MAGIC {
        return Err(WireError::BadMagic { what: "trailer" });
    }
    let stored = raw::le_u32(t, 12, "trailer checksum")?;
    let computed = crc32(raw::slice_at(t, 0, 12, "trailer")?);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { what: "trailer", stored, computed });
    }
    let index_offset = raw::le_u64(t, 0, "trailer index offset")?;
    let index_len = raw::le_u32(t, 8, "trailer index length")?;
    Ok((index_offset, index_len))
}

/// Reads the chunk whose header starts at `offset`, verifying its CRC.
/// Returns the kind byte and a borrow of the payload.
fn read_chunk(bytes: &[u8], offset: u64) -> Result<(u8, &[u8])> {
    let offset = usize::try_from(offset).map_err(|_| WireError::BadChunk {
        reason: format!("chunk offset {offset} overflows usize"),
    })?;
    let end = offset.checked_add(CHUNK_HEADER_LEN).filter(|&e| e <= bytes.len()).ok_or(
        WireError::Truncated {
            what: "chunk header",
            needed: CHUNK_HEADER_LEN as u64,
            available: bytes.len().saturating_sub(offset) as u64,
        },
    )?;
    let head = raw::slice_at(bytes, offset, CHUNK_HEADER_LEN, "chunk header")?;
    let kind = raw::byte_at(head, 0, "chunk kind")?;
    if kind != CHUNK_FRAME && kind != CHUNK_INDEX {
        return Err(WireError::BadChunk { reason: format!("unknown chunk kind {kind:#04x}") });
    }
    let len = raw::usize_from(u64::from(raw::le_u32(head, 1, "chunk payload length")?), "chunk payload length")?;
    let stored = raw::le_u32(head, 5, "chunk checksum")?;
    if end.checked_add(len).filter(|&e| e <= bytes.len()).is_none() {
        return Err(WireError::Truncated {
            what: "chunk payload",
            needed: len as u64,
            available: (bytes.len() - end) as u64,
        });
    }
    let payload = raw::slice_at(bytes, end, len, "chunk payload")?;
    let computed = crc32(payload);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { what: "chunk payload", stored, computed });
    }
    Ok((kind, payload))
}

/// Parses an index chunk's payload into frame entries.
///
/// # Errors
///
/// [`WireError::BadVarint`], [`WireError::LimitExceeded`] (declared
/// count above [`MAX_FRAME_COUNT`]), or [`WireError::BadIndex`] for
/// trailing bytes or entry fields that cannot fit their types.
pub fn parse_entries(payload: &[u8]) -> Result<Vec<FrameEntry>> {
    let mut pos = 0usize;
    let count = read_varint(payload, &mut pos, "index entry count")?;
    if count > MAX_FRAME_COUNT {
        return Err(WireError::LimitExceeded {
            what: "index entry count",
            value: count,
            limit: MAX_FRAME_COUNT,
        });
    }
    let mut entries = Vec::with_capacity(raw::usize_from(count, "index entry count")?);
    for _ in 0..count {
        let frame_idx = read_varint(payload, &mut pos, "index frame_idx")?;
        let offset = read_varint(payload, &mut pos, "index chunk offset")?;
        let len = read_varint(payload, &mut pos, "index payload length")?;
        let len = u32::try_from(len).map_err(|_| WireError::BadIndex {
            reason: format!("entry payload length {len} overflows u32"),
        })?;
        entries.push(FrameEntry { frame_idx, offset, len });
    }
    if pos != payload.len() {
        return Err(WireError::BadIndex {
            reason: format!("{} trailing bytes after index entries", payload.len() - pos),
        });
    }
    Ok(entries)
}

/// A parsed container over a borrowed byte slice, exposing O(1)
/// frame access through the trailing index.
pub struct ContainerReader<'a> {
    bytes: &'a [u8],
    entries: Vec<FrameEntry>,
}

impl<'a> ContainerReader<'a> {
    /// Opens a finished container: checks the header, locates the
    /// index through the trailer, and parses its entries. O(index
    /// size), independent of frame count or payload bytes.
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] for any malformed header, trailer, index
    /// chunk, or index payload.
    pub fn open(bytes: &'a [u8]) -> Result<Self> {
        check_header(bytes)?;
        let (index_offset, index_len) = parse_trailer(bytes)?;
        let body =
            raw::slice_at(bytes, 0, bytes.len().saturating_sub(TRAILER_LEN), "container body")?;
        let (kind, payload) = read_chunk(body, index_offset)?;
        if kind != CHUNK_INDEX {
            return Err(WireError::BadIndex {
                reason: format!("trailer points at chunk kind {kind:#04x}, not the index"),
            });
        }
        if payload.len() as u64 != u64::from(index_len) {
            return Err(WireError::BadIndex {
                reason: format!(
                    "trailer declares a {index_len}-byte index, chunk holds {}",
                    payload.len()
                ),
            });
        }
        let entries = parse_entries(payload)?;
        Ok(ContainerReader { bytes, entries })
    }

    /// Opens a container by walking its chunks sequentially, ignoring
    /// the trailer — the recovery path for unfinished files that never
    /// got an index (the entries are rebuilt from the frame chunks
    /// actually present). Stops cleanly at the index chunk or when
    /// fewer than a chunk header's bytes remain.
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] for a malformed header or any malformed
    /// chunk encountered before the stop condition.
    pub fn scan(bytes: &'a [u8]) -> Result<Self> {
        check_header(bytes)?;
        let mut entries = Vec::new();
        let mut pos = HEADER_LEN as u64;
        while pos + CHUNK_HEADER_LEN as u64 <= bytes.len() as u64 {
            let (kind, payload) = read_chunk(bytes, pos)?;
            if kind == CHUNK_INDEX {
                break;
            }
            if payload.len() < crate::frame::FRAME_HEADER_LEN {
                return Err(WireError::BadChunk {
                    reason: format!("frame chunk payload of {} bytes is too short", payload.len()),
                });
            }
            let frame_idx = raw::le_u64(payload, 8, "frame index")?;
            let len = u32::try_from(payload.len()).map_err(|_| WireError::BadChunk {
                reason: format!("chunk payload of {} bytes exceeds u32", payload.len()),
            })?;
            entries.push(FrameEntry { frame_idx, offset: pos, len });
            pos += (CHUNK_HEADER_LEN + payload.len()) as u64;
        }
        Ok(ContainerReader { bytes, entries })
    }

    /// Number of indexed frames.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the container indexes no frames.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The frame index entries, in container order.
    pub fn entries(&self) -> &[FrameEntry] {
        &self.entries
    }

    /// The underlying bytes the reader was opened over.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Decodes frame `i` as a zero-copy [`EncodedFrameView`] borrowing
    /// from the container bytes: one seek via the index entry, one CRC
    /// pass over the chunk, no payload copy.
    ///
    /// # Errors
    ///
    /// [`WireError::BadIndex`] for out-of-range `i` or an entry that
    /// disagrees with the chunk it points at (wrong kind, wrong length,
    /// or a `frame_idx` mismatch — the stale-entry fault); otherwise
    /// whatever [`read_chunk`]/[`EncodedFrameView::parse`] raise.
    pub fn view(&self, i: usize) -> Result<EncodedFrameView<'a>> {
        let entry = self.entries.get(i).ok_or_else(|| WireError::BadIndex {
            reason: format!("frame {i} out of range ({} indexed)", self.entries.len()),
        })?;
        frame_chunk(self.bytes, entry)
    }

    /// Decodes frame `i` to an owned, fully validated [`EncodedFrame`].
    ///
    /// # Errors
    ///
    /// Everything [`ContainerReader::view`] raises, plus
    /// [`WireError::CorruptFrame`] when the digest check fails.
    pub fn frame(&self, i: usize) -> Result<EncodedFrame> {
        self.view(i)?.to_validated_frame()
    }
}

/// Reads and decodes the frame chunk an index entry points at,
/// cross-checking the entry against the parsed blob — the seek
/// primitive behind [`ContainerReader::view`], exposed standalone so
/// owners of a byte buffer plus pre-parsed entries (e.g. a stream
/// replay source) can decode without re-opening the container.
///
/// # Errors
///
/// [`WireError::BadIndex`] when the entry points at a non-frame
/// chunk, disagrees on the payload length, or names a different
/// `frame_idx` than the blob carries (a stale entry); otherwise the
/// chunk-read and frame-parse errors.
pub fn frame_chunk<'a>(bytes: &'a [u8], entry: &FrameEntry) -> Result<EncodedFrameView<'a>> {
    let (kind, payload) = read_chunk(bytes, entry.offset)?;
    if kind != CHUNK_FRAME {
        return Err(WireError::BadIndex {
            reason: format!("entry points at chunk kind {kind:#04x}, not a frame"),
        });
    }
    if payload.len() as u64 != u64::from(entry.len) {
        return Err(WireError::BadIndex {
            reason: format!(
                "entry declares {} payload bytes, chunk holds {}",
                entry.len,
                payload.len()
            ),
        });
    }
    let view = EncodedFrameView::parse(payload)?;
    if view.frame_idx() != entry.frame_idx {
        return Err(WireError::BadIndex {
            reason: format!(
                "stale index entry: index says frame_idx {}, chunk holds {}",
                entry.frame_idx,
                view.frame_idx()
            ),
        });
    }
    Ok(view)
}

/// A raw chunk located by [`list_chunks`] — the handle fault injectors
/// and the fuzzer use to aim mutations at specific container layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawChunk {
    /// Byte offset of the chunk header from the file start.
    pub offset: usize,
    /// The chunk kind byte.
    pub kind: u8,
    /// Byte range of the payload within the file.
    pub payload: std::ops::Range<usize>,
}

/// Walks a *finished* container's chunks (header through the region
/// the trailer delimits) without verifying payload CRCs, returning
/// their positions. Requires a valid header and trailer.
///
/// # Errors
///
/// Typed [`WireError`]s for malformed header/trailer or a chunk that
/// runs past the trailer.
pub fn list_chunks(bytes: &[u8]) -> Result<Vec<RawChunk>> {
    check_header(bytes)?;
    parse_trailer(bytes)?;
    let body_end = bytes.len() - TRAILER_LEN;
    let mut chunks = Vec::new();
    let mut pos = HEADER_LEN;
    while pos < body_end {
        let end = pos.checked_add(CHUNK_HEADER_LEN).filter(|&e| e <= body_end).ok_or(
            WireError::Truncated {
                what: "chunk header",
                needed: CHUNK_HEADER_LEN as u64,
                available: (body_end - pos) as u64,
            },
        )?;
        let kind = raw::byte_at(bytes, pos, "chunk kind")?;
        let len = raw::usize_from(
            u64::from(raw::le_u32(bytes, pos + 1, "chunk payload length")?),
            "chunk payload length",
        )?;
        let payload_end = end.checked_add(len).filter(|&e| e <= body_end).ok_or(
            WireError::Truncated {
                what: "chunk payload",
                needed: len as u64,
                available: (body_end - end) as u64,
            },
        )?;
        chunks.push(RawChunk { offset: pos, kind, payload: end..payload_end });
        pos = payload_end;
    }
    Ok(chunks)
}

/// Recomputes and stores the CRC of the chunk whose header starts at
/// `chunk_offset` — how fault injectors make a *content* corruption
/// survive the transport checksum (e.g. a corrupted RLE run that the
/// deep parser, not the CRC, must catch).
///
/// # Errors
///
/// [`WireError::Truncated`] when no whole chunk starts there.
pub fn rewrite_chunk_crc(bytes: &mut [u8], chunk_offset: usize) -> Result<()> {
    let end = chunk_offset.checked_add(CHUNK_HEADER_LEN).filter(|&e| e <= bytes.len()).ok_or(
        WireError::Truncated {
            what: "chunk header",
            needed: CHUNK_HEADER_LEN as u64,
            available: bytes.len().saturating_sub(chunk_offset) as u64,
        },
    )?;
    let len = raw::usize_from(
        u64::from(raw::le_u32(&*bytes, chunk_offset + 1, "chunk payload length")?),
        "chunk payload length",
    )?;
    let crc = crc32(raw::slice_at(&*bytes, end, len, "chunk payload")?);
    let available = bytes.len().saturating_sub(chunk_offset) as u64;
    let crc_slot = bytes.get_mut(chunk_offset + 5..chunk_offset + 9).ok_or(
        WireError::Truncated { what: "chunk header", needed: CHUNK_HEADER_LEN as u64, available },
    )?;
    crc_slot.copy_from_slice(&crc.to_le_bytes());
    Ok(())
}

/// Serializes `frames` into a complete in-memory container.
///
/// # Errors
///
/// [`WireError::InvalidFrame`] for any frame failing validation.
pub fn write_container(frames: &[EncodedFrame]) -> Result<Vec<u8>> {
    let mut w = ContainerWriter::new(Vec::new())?;
    for f in frames {
        w.append(f)?;
    }
    let (bytes, _) = w.finish()?;
    Ok(bytes)
}

/// Decodes every indexed frame of a container to owned, validated
/// [`EncodedFrame`]s.
///
/// # Errors
///
/// Any typed [`WireError`] from opening or decoding.
pub fn read_all(bytes: &[u8]) -> Result<Vec<EncodedFrame>> {
    let reader = ContainerReader::open(bytes)?;
    (0..reader.len()).map(|i| reader.frame(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_core::{EncMask, FrameMetadata, PixelStatus};

    fn frame(frame_idx: u64, width: u32, height: u32) -> EncodedFrame {
        let mut mask = EncMask::new(width, height);
        let mut payload = Vec::new();
        for y in 0..height {
            for x in 0..width {
                if (x + y + frame_idx as u32).is_multiple_of(4) {
                    mask.set(x, y, PixelStatus::Regional);
                    payload.push((x ^ y) as u8 ^ frame_idx as u8);
                }
            }
        }
        let meta = FrameMetadata::from_mask(mask);
        EncodedFrame::new(width, height, frame_idx, payload, meta)
    }

    fn sample_frames() -> Vec<EncodedFrame> {
        (0..5).map(|i| frame(i * 3, 20, 12)).collect()
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let frames = sample_frames();
        let bytes = write_container(&frames).unwrap();
        let back = read_all(&bytes).unwrap();
        assert_eq!(back, frames);
    }

    #[test]
    fn random_access_by_index() {
        let frames = sample_frames();
        let bytes = write_container(&frames).unwrap();
        let reader = ContainerReader::open(&bytes).unwrap();
        assert_eq!(reader.len(), 5);
        assert_eq!(reader.frame(3).unwrap(), frames[3]);
        assert_eq!(reader.frame(0).unwrap(), frames[0]);
        assert_eq!(reader.entries()[3].frame_idx, 9);
        assert!(matches!(reader.view(5), Err(WireError::BadIndex { .. })));
    }

    #[test]
    fn views_borrow_the_container_bytes() {
        let frames = sample_frames();
        let bytes = write_container(&frames).unwrap();
        let reader = ContainerReader::open(&bytes).unwrap();
        let view = reader.view(2).unwrap();
        let range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        assert!(range.contains(&(view.payload().as_ptr() as usize)));
    }

    #[test]
    fn writer_stats_account_for_everything() {
        let frames = sample_frames();
        let mut w = ContainerWriter::new(Vec::new()).unwrap();
        for f in &frames {
            w.append(f).unwrap();
        }
        let (bytes, stats) = w.finish().unwrap();
        assert_eq!(stats.frames, 5);
        assert_eq!(stats.container_bytes, bytes.len() as u64);
        assert_eq!(
            stats.payload_bytes,
            frames.iter().map(|f| f.pixels().len() as u64).sum::<u64>()
        );
        assert!(stats.mask_bytes_written <= stats.raw_mask_bytes);
    }

    #[test]
    fn empty_container_roundtrips() {
        let bytes = write_container(&[]).unwrap();
        let reader = ContainerReader::open(&bytes).unwrap();
        assert!(reader.is_empty());
        assert_eq!(bytes.len(), HEADER_LEN + CHUNK_HEADER_LEN + 1 + TRAILER_LEN);
    }

    #[test]
    fn scan_matches_open_and_recovers_unfinished_files() {
        let frames = sample_frames();
        let bytes = write_container(&frames).unwrap();
        let scanned = ContainerReader::scan(&bytes).unwrap();
        assert_eq!(scanned.entries(), ContainerReader::open(&bytes).unwrap().entries());

        // A writer dropped before finish() leaves header + frame
        // chunks only; simulate by stripping the index and trailer.
        let unfinished = {
            let mut w = ContainerWriter::new(Vec::new()).unwrap();
            for f in &frames[..3] {
                w.append(f).unwrap();
            }
            let (full, _) = w.finish().unwrap();
            let chunks = list_chunks(&full).unwrap();
            let index = chunks.iter().find(|c| c.kind == CHUNK_INDEX).unwrap();
            full[..index.offset].to_vec()
        };
        assert!(matches!(
            ContainerReader::open(&unfinished),
            Err(WireError::BadMagic { what: "trailer" })
        ));
        let recovered = ContainerReader::scan(&unfinished).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(recovered.frame(2).unwrap(), frames[2]);
    }

    #[test]
    fn header_and_trailer_corruption_are_typed() {
        let bytes = write_container(&sample_frames()).unwrap();

        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            ContainerReader::open(&bad),
            Err(WireError::BadMagic { what: "file header" })
        ));

        let mut bad = bytes.clone();
        bad[8] = 0xFF; // version
        assert!(matches!(
            ContainerReader::open(&bad),
            Err(WireError::ChecksumMismatch { what: "file header", .. })
        ));
        // Fix the header CRC so the version check itself is reached.
        let crc = crc32(&bad[0..12]);
        bad[12..16].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            ContainerReader::open(&bad),
            Err(WireError::UnsupportedVersion { version: 0x00FF })
        ));

        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 1] ^= 0xFF;
        assert!(matches!(
            ContainerReader::open(&bad),
            Err(WireError::BadMagic { what: "trailer" })
        ));

        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - TRAILER_LEN] ^= 0xFF; // index offset byte under the trailer CRC
        assert!(matches!(
            ContainerReader::open(&bad),
            Err(WireError::ChecksumMismatch { what: "trailer", .. })
        ));
    }

    #[test]
    fn chunk_payload_corruption_is_caught_by_crc() {
        let frames = sample_frames();
        let mut bytes = write_container(&frames).unwrap();
        let chunks = list_chunks(&bytes).unwrap();
        let target = &chunks[1];
        assert_eq!(target.kind, CHUNK_FRAME);
        bytes[target.payload.start + 30] ^= 0x01;
        let reader = ContainerReader::open(&bytes).unwrap();
        assert!(matches!(
            reader.frame(1),
            Err(WireError::ChecksumMismatch { what: "chunk payload", .. })
        ));
        // Other frames are unaffected.
        assert_eq!(reader.frame(0).unwrap(), frames[0]);
    }

    #[test]
    fn crc_fixed_content_corruption_is_caught_by_validation() {
        let frames = sample_frames();
        let mut bytes = write_container(&frames).unwrap();
        let chunks = list_chunks(&bytes).unwrap();
        let target = chunks[2].clone();
        // Flip a payload byte *and* repair the transport CRC: only the
        // frame-level digest can see this one.
        bytes[target.payload.end - 1] ^= 0x80;
        rewrite_chunk_crc(&mut bytes, target.offset).unwrap();
        let reader = ContainerReader::open(&bytes).unwrap();
        assert!(reader.view(2).is_ok(), "structural parse alone cannot detect it");
        assert!(matches!(reader.frame(2), Err(WireError::CorruptFrame { .. })));
    }

    #[test]
    fn stale_index_entries_are_detected() {
        let frames = sample_frames();
        let bytes = write_container(&frames).unwrap();
        let chunks = list_chunks(&bytes).unwrap();
        let index_chunk = chunks.iter().find(|c| c.kind == CHUNK_INDEX).unwrap().clone();
        let mut entries = parse_entries(&bytes[index_chunk.payload.clone()]).unwrap();
        // Repoint entry 4 at frame 1's chunk, keeping its frame_idx.
        entries[4].offset = entries[1].offset;
        entries[4].len = entries[1].len;
        let mut payload = Vec::new();
        write_varint(&mut payload, entries.len() as u64);
        for e in &entries {
            write_varint(&mut payload, e.frame_idx);
            write_varint(&mut payload, e.offset);
            write_varint(&mut payload, u64::from(e.len));
        }
        assert_eq!(payload.len(), index_chunk.payload.len(), "same varint widths");
        let mut bytes = bytes;
        bytes[index_chunk.payload.clone()].copy_from_slice(&payload);
        rewrite_chunk_crc(&mut bytes, index_chunk.offset).unwrap();
        let reader = ContainerReader::open(&bytes).unwrap();
        assert!(matches!(reader.frame(4), Err(WireError::BadIndex { .. })));
        assert_eq!(reader.frame(1).unwrap(), frames[1]);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let frames = sample_frames();
        let bytes = write_container(&frames).unwrap();
        for len in 0..bytes.len() {
            match ContainerReader::open(&bytes[..len]) {
                Ok(_) => panic!("truncated container at {len} bytes opened cleanly"),
                Err(e) => {
                    let _ = e.to_string();
                }
            }
        }
    }
}

//! Incremental (streaming) ingest of a `.rpr` container.
//!
//! [`ContainerReader`](crate::ContainerReader) wants the whole file in
//! memory; an ingestion service sees the same bytes arrive in
//! arbitrary network-sized pieces, interleaved with thousands of other
//! sessions. [`StreamDecoder`] is the incremental front end: feed it
//! byte slices as they arrive ([`StreamDecoder::push`]) and drain
//! fully-validated frames as soon as their chunk is complete
//! ([`StreamDecoder::next_event`]) — no frame is ever re-parsed and
//! the internal buffer never holds more than one unfinished chunk
//! (bounded by [`MAX_STREAM_CHUNK`]).
//!
//! End-of-stream semantics mirror scan recovery, with one sharpening:
//! a session that ends exactly on a chunk boundary before the index
//! arrived is *recovered* (every complete frame was already
//! delivered, like [`ContainerReader::scan`](crate::ContainerReader::scan)
//! on an unfinished file), but a session whose final chunk is cut
//! mid-structure is a typed [`WireError::TruncatedStream`] from
//! [`StreamDecoder::finish`] — never a silent success. The distinction
//! is what lets a multi-tenant server tell a cleanly-interrupted
//! recording apart from a torn write or a lying client.

use rpr_core::EncodedFrame;

use crate::container::{check_header, parse_entries, parse_trailer_slice};
use crate::crc32::crc32;
use crate::frame::EncodedFrameView;
use crate::{
    bytes as raw, Result, WireError, CHUNK_FRAME, CHUNK_HEADER_LEN, CHUNK_INDEX, HEADER_LEN,
    MAX_FRAME_COUNT, TRAILER_LEN,
};

/// Hard cap on a streamed chunk's declared payload length (64 MiB).
/// A whole-file reader already holds the bytes, so it can afford any
/// declared length; a streaming decoder *buffers up to* the declared
/// length, so a forged 4 GiB chunk header would be an allocation bomb.
pub const MAX_STREAM_CHUNK: u64 = 1 << 26;

/// One decoded unit of the incoming container stream.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A complete, CRC-checked, fully validated frame.
    Frame(EncodedFrame),
    /// The index chunk and trailer arrived and verified: the container
    /// is complete. No further events follow.
    Finished {
        /// Frames the trailing index declared (cross-checked against
        /// the frames actually streamed).
        indexed_frames: u64,
    },
}

/// Parse position of the decoder within the container grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Waiting for the 16-byte file header.
    Header,
    /// Waiting for the next chunk (frame or index).
    Chunks,
    /// Index seen; waiting for the 20-byte trailer.
    Trailer,
    /// Trailer verified; the stream is complete.
    Done,
    /// A previous call returned an error; the decoder is poisoned.
    Failed,
}

/// Incremental `.rpr` container parser for streaming ingest.
///
/// ```
/// use rpr_core::{EncMask, EncodedFrame, FrameMetadata, PixelStatus};
/// use rpr_wire::{write_container, StreamDecoder, StreamEvent};
///
/// let mut mask = EncMask::new(8, 4);
/// mask.set(2, 1, PixelStatus::Regional);
/// let frame = EncodedFrame::new(8, 4, 0, vec![123], FrameMetadata::from_mask(mask));
/// let bytes = write_container(std::slice::from_ref(&frame)).unwrap();
///
/// // Feed the container one byte at a time; the frame pops out the
/// // moment its chunk is complete.
/// let mut dec = StreamDecoder::new();
/// let mut events = Vec::new();
/// for b in &bytes {
///     dec.push(std::slice::from_ref(b));
///     while let Some(ev) = dec.next_event().unwrap() {
///         events.push(ev);
///     }
/// }
/// assert_eq!(events.len(), 2); // Frame + Finished
/// assert!(matches!(&events[0], StreamEvent::Frame(f) if *f == frame));
/// assert_eq!(dec.finish().unwrap(), 1);
/// ```
#[derive(Debug)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    pos: usize,
    state: State,
    frames: u64,
    bytes_fed: u64,
    /// When set, decoded frames are promoted into recycled buffers —
    /// the zero-allocation steady state for long-lived sessions.
    pool: Option<rpr_core::BufferPool>,
}

impl Default for StreamDecoder {
    fn default() -> Self {
        StreamDecoder::new()
    }
}

/// Compact the buffer once the dead prefix dominates it; keeps
/// steady-state ingest at O(one chunk) of memory without memmoving on
/// every event.
const COMPACT_THRESHOLD: usize = 64 * 1024;

impl StreamDecoder {
    /// A decoder expecting a container stream from its first byte.
    pub fn new() -> Self {
        StreamDecoder {
            buf: Vec::new(),
            pos: 0,
            state: State::Header,
            frames: 0,
            bytes_fed: 0,
            pool: None,
        }
    }

    /// A decoder promoting every frame into buffers recycled from
    /// `pool`. Recycle drained frames back with
    /// [`rpr_core::EncodedFrame::recycle`] to close the loop.
    pub fn with_pool(pool: rpr_core::BufferPool) -> Self {
        StreamDecoder { pool: Some(pool), ..StreamDecoder::new() }
    }

    /// Appends newly-arrived session bytes. Cheap: one extend; parsing
    /// happens in [`StreamDecoder::next_event`].
    pub fn push(&mut self, bytes: &[u8]) {
        self.bytes_fed += bytes.len() as u64;
        self.buf.extend_from_slice(bytes);
    }

    /// Total bytes pushed so far.
    pub fn bytes_fed(&self) -> u64 {
        self.bytes_fed
    }

    /// Frames successfully decoded so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Bytes buffered but not yet consumed by a complete structure.
    pub fn buffered(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// True once the trailer verified and the stream is complete.
    pub fn is_finished(&self) -> bool {
        self.state == State::Done
    }

    fn pending(&self) -> &[u8] {
        self.buf.get(self.pos..).unwrap_or(&[])
    }

    fn consume(&mut self, n: usize) {
        self.pos = self.pos.saturating_add(n).min(self.buf.len());
        if self.pos >= COMPACT_THRESHOLD || self.pos * 2 >= self.buf.len().max(1) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    fn fail<T>(&mut self, e: WireError) -> Result<T> {
        self.state = State::Failed;
        Err(e)
    }

    /// Advances the parse as far as the buffered bytes allow, returning
    /// the next complete event, or `Ok(None)` when more bytes are
    /// needed. Call in a loop after each [`StreamDecoder::push`] until
    /// it returns `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Any typed [`WireError`] a whole-file parse would raise for the
    /// same malformation, plus [`WireError::LimitExceeded`] for a
    /// declared chunk length above [`MAX_STREAM_CHUNK`]. After an
    /// error the decoder is poisoned: further calls return the same
    /// class of failure rather than resynchronizing.
    pub fn next_event(&mut self) -> Result<Option<StreamEvent>> {
        loop {
            match self.state {
                State::Failed => {
                    return Err(WireError::BadChunk {
                        reason: "stream decoder poisoned by an earlier error".to_string(),
                    })
                }
                State::Done => return Ok(None),
                State::Header => {
                    if self.pending().len() < HEADER_LEN {
                        return Ok(None);
                    }
                    let mut header = [0u8; HEADER_LEN];
                    if let Some(src) = self.pending().get(..HEADER_LEN) {
                        header.copy_from_slice(src);
                    }
                    if let Err(e) = check_header(&header) {
                        return self.fail(e);
                    }
                    self.consume(HEADER_LEN);
                    self.state = State::Chunks;
                }
                State::Chunks => {
                    let avail = self.pending();
                    if avail.len() < CHUNK_HEADER_LEN {
                        return Ok(None);
                    }
                    let kind = match raw::byte_at(avail, 0, "chunk kind") {
                        Ok(k) => k,
                        Err(e) => return self.fail(e),
                    };
                    if kind != CHUNK_FRAME && kind != CHUNK_INDEX {
                        return self.fail(WireError::BadChunk {
                            reason: format!("unknown chunk kind {kind:#04x}"),
                        });
                    }
                    let len64 = match raw::le_u32(avail, 1, "chunk payload length") {
                        Ok(l) => u64::from(l),
                        Err(e) => return self.fail(e),
                    };
                    if len64 > MAX_STREAM_CHUNK {
                        return self.fail(WireError::LimitExceeded {
                            what: "streamed chunk payload length",
                            value: len64,
                            limit: MAX_STREAM_CHUNK,
                        });
                    }
                    let len = match raw::usize_from(len64, "chunk payload length") {
                        Ok(l) => l,
                        Err(e) => return self.fail(e),
                    };
                    let Some(total) = CHUNK_HEADER_LEN.checked_add(len) else {
                        return self.fail(WireError::BadChunk {
                            reason: format!("chunk payload length {len} overflows"),
                        });
                    };
                    if avail.len() < total {
                        return Ok(None);
                    }
                    let stored = match raw::le_u32(avail, 5, "chunk checksum") {
                        Ok(c) => c,
                        Err(e) => return self.fail(e),
                    };
                    let payload = match raw::slice_at(avail, CHUNK_HEADER_LEN, len, "chunk payload")
                    {
                        Ok(p) => p,
                        Err(e) => return self.fail(e),
                    };
                    let computed = crc32(payload);
                    if stored != computed {
                        return self.fail(WireError::ChecksumMismatch {
                            what: "chunk payload",
                            stored,
                            computed,
                        });
                    }
                    if kind == CHUNK_FRAME {
                        let frame = match EncodedFrameView::parse(payload).and_then(|v| {
                            match &self.pool {
                                Some(pool) => v.to_validated_frame_in(pool),
                                None => v.to_validated_frame(),
                            }
                        }) {
                            Ok(f) => f,
                            Err(e) => return self.fail(e),
                        };
                        self.frames += 1;
                        if self.frames > MAX_FRAME_COUNT {
                            return self.fail(WireError::LimitExceeded {
                                what: "streamed frame count",
                                value: self.frames,
                                limit: MAX_FRAME_COUNT,
                            });
                        }
                        self.consume(total);
                        return Ok(Some(StreamEvent::Frame(frame)));
                    }
                    // Index chunk: cross-check its entry count against
                    // the frames this decoder actually delivered.
                    let entries = match parse_entries(payload) {
                        Ok(e) => e,
                        Err(e) => return self.fail(e),
                    };
                    if entries.len() as u64 != self.frames {
                        let declared = entries.len();
                        return self.fail(WireError::BadIndex {
                            reason: format!(
                                "index declares {declared} frames, stream carried {}",
                                self.frames
                            ),
                        });
                    }
                    self.consume(total);
                    self.state = State::Trailer;
                }
                State::Trailer => {
                    if self.pending().len() < TRAILER_LEN {
                        return Ok(None);
                    }
                    let mut trailer = [0u8; TRAILER_LEN];
                    if let Some(src) = self.pending().get(..TRAILER_LEN) {
                        trailer.copy_from_slice(src);
                    }
                    if let Err(e) = parse_trailer_slice(&trailer) {
                        return self.fail(e);
                    }
                    self.consume(TRAILER_LEN);
                    self.state = State::Done;
                    return Ok(Some(StreamEvent::Finished { indexed_frames: self.frames }));
                }
            }
        }
    }

    /// Declares end of stream: the session closed and no more bytes
    /// will arrive. Returns the number of frames delivered.
    ///
    /// A finished container (trailer verified) and an unfinished one
    /// cut exactly at a chunk boundary both succeed — the latter is
    /// the scan-recovery contract for a writer that died before
    /// `finish()`. Anything else is typed:
    ///
    /// # Errors
    ///
    /// [`WireError::TruncatedStream`] when bytes of a partial header,
    /// chunk, or trailer remain buffered (the torn-final-chunk case),
    /// or [`WireError::BadChunk`] when the decoder was already
    /// poisoned by an earlier parse error.
    pub fn finish(&self) -> Result<u64> {
        let buffered = self.buffered() as u64;
        match self.state {
            State::Failed => Err(WireError::BadChunk {
                reason: "stream decoder poisoned by an earlier error".to_string(),
            }),
            State::Done => Ok(self.frames),
            State::Header => {
                if buffered == 0 && self.bytes_fed == 0 {
                    // An empty session carried no container at all;
                    // treat as zero recovered frames, matching a
                    // zero-byte file fed to scan (which errors) —
                    // except a *session* that sent nothing is a
                    // protocol matter, not a wire truncation.
                    Ok(0)
                } else {
                    Err(WireError::TruncatedStream {
                        what: "file header",
                        buffered,
                        needed: HEADER_LEN as u64,
                    })
                }
            }
            State::Chunks => {
                if buffered == 0 {
                    // Clean chunk boundary: scan recovery of an
                    // unfinished container.
                    Ok(self.frames)
                } else if buffered < CHUNK_HEADER_LEN as u64 {
                    Err(WireError::TruncatedStream {
                        what: "chunk header",
                        buffered,
                        needed: CHUNK_HEADER_LEN as u64,
                    })
                } else {
                    let declared = raw::le_u32(self.pending(), 1, "chunk payload length")
                        .map(u64::from)
                        .unwrap_or(0);
                    Err(WireError::TruncatedStream {
                        what: "chunk payload",
                        buffered,
                        needed: (CHUNK_HEADER_LEN as u64).saturating_add(declared),
                    })
                }
            }
            State::Trailer => Err(WireError::TruncatedStream {
                what: "container trailer",
                buffered,
                needed: TRAILER_LEN as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::write_container;
    use rpr_core::{EncMask, FrameMetadata, PixelStatus};

    fn frame(frame_idx: u64, width: u32, height: u32) -> EncodedFrame {
        let mut mask = EncMask::new(width, height);
        let mut payload = Vec::new();
        for y in 0..height {
            for x in 0..width {
                if (x + y + frame_idx as u32).is_multiple_of(3) {
                    mask.set(x, y, PixelStatus::Regional);
                    payload.push((x * 7 + y) as u8 ^ frame_idx as u8);
                }
            }
        }
        EncodedFrame::new(width, height, frame_idx, payload, FrameMetadata::from_mask(mask))
    }

    fn sample() -> (Vec<EncodedFrame>, Vec<u8>) {
        let frames: Vec<_> = (0..6).map(|i| frame(i * 2, 24, 16)).collect();
        let bytes = write_container(&frames).unwrap();
        (frames, bytes)
    }

    fn drive(dec: &mut StreamDecoder, bytes: &[u8], step: usize) -> Vec<StreamEvent> {
        let mut events = Vec::new();
        for piece in bytes.chunks(step.max(1)) {
            dec.push(piece);
            while let Some(ev) = dec.next_event().unwrap() {
                events.push(ev);
            }
        }
        events
    }

    #[test]
    fn every_split_granularity_matches_whole_file_parse() {
        let (frames, bytes) = sample();
        for step in [1, 2, 3, 7, 16, 64, 1024, bytes.len()] {
            let mut dec = StreamDecoder::new();
            let events = drive(&mut dec, &bytes, step);
            let decoded: Vec<_> = events
                .iter()
                .filter_map(|e| match e {
                    StreamEvent::Frame(f) => Some(f.clone()),
                    StreamEvent::Finished { .. } => None,
                })
                .collect();
            assert_eq!(decoded, frames, "step {step}");
            assert!(matches!(
                events.last(),
                Some(StreamEvent::Finished { indexed_frames: 6 })
            ));
            assert_eq!(dec.finish().unwrap(), 6);
            assert!(dec.is_finished());
        }
    }

    #[test]
    fn chunk_boundary_cut_recovers_like_scan() {
        let (frames, bytes) = sample();
        let chunks = crate::list_chunks(&bytes).unwrap();
        // Cut right after the third frame chunk: an unfinished file.
        let cut = chunks[3].offset;
        let mut dec = StreamDecoder::new();
        let events = drive(&mut dec, &bytes[..cut], 13);
        assert_eq!(events.len(), 3);
        for (i, ev) in events.iter().enumerate() {
            assert!(matches!(ev, StreamEvent::Frame(f) if *f == frames[i]));
        }
        assert_eq!(dec.finish().unwrap(), 3, "clean boundary is scan recovery");
    }

    #[test]
    fn mid_frame_cut_is_a_typed_stream_truncation() {
        let (_, bytes) = sample();
        let chunks = crate::list_chunks(&bytes).unwrap();
        // Cut inside the fourth frame chunk's payload.
        let cut = chunks[3].payload.start + chunks[3].payload.len() / 2;
        let mut dec = StreamDecoder::new();
        let events = drive(&mut dec, &bytes[..cut], 17);
        assert_eq!(events.len(), 3, "frames before the tear still arrive");
        let err = dec.finish().unwrap_err();
        assert!(
            matches!(err, WireError::TruncatedStream { what: "chunk payload", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn mid_header_and_mid_trailer_cuts_are_typed() {
        let (_, bytes) = sample();
        let mut dec = StreamDecoder::new();
        dec.push(&bytes[..7]);
        assert!(dec.next_event().unwrap().is_none());
        assert!(matches!(
            dec.finish().unwrap_err(),
            WireError::TruncatedStream { what: "file header", .. }
        ));

        let mut dec = StreamDecoder::new();
        let events = drive(&mut dec, &bytes[..bytes.len() - 5], 29);
        assert!(!events.iter().any(|e| matches!(e, StreamEvent::Finished { .. })));
        assert!(matches!(
            dec.finish().unwrap_err(),
            WireError::TruncatedStream { what: "container trailer", .. }
        ));
    }

    #[test]
    fn empty_session_finishes_with_zero_frames() {
        let dec = StreamDecoder::new();
        assert_eq!(dec.finish().unwrap(), 0);
    }

    #[test]
    fn corrupt_payload_is_caught_at_the_chunk() {
        let (_, mut bytes) = sample();
        let chunks = crate::list_chunks(&bytes).unwrap();
        bytes[chunks[1].payload.start + 4] ^= 0x20;
        let mut dec = StreamDecoder::new();
        dec.push(&bytes);
        assert!(matches!(dec.next_event(), Ok(Some(StreamEvent::Frame(_)))));
        assert!(matches!(
            dec.next_event(),
            Err(WireError::ChecksumMismatch { what: "chunk payload", .. })
        ));
        // Poisoned: both further events and finish stay errors.
        assert!(dec.next_event().is_err());
        assert!(dec.finish().is_err());
    }

    #[test]
    fn declared_length_bomb_is_capped() {
        let (_, bytes) = sample();
        let mut dec = StreamDecoder::new();
        dec.push(&bytes[..HEADER_LEN]);
        assert!(dec.next_event().unwrap().is_none());
        // Forge a frame-chunk header declaring 1 GiB.
        let mut head = vec![CHUNK_FRAME];
        head.extend_from_slice(&(1u32 << 30).to_le_bytes());
        head.extend_from_slice(&0u32.to_le_bytes());
        dec.push(&head);
        assert!(matches!(
            dec.next_event(),
            Err(WireError::LimitExceeded { what: "streamed chunk payload length", .. })
        ));
    }

    #[test]
    fn index_frame_count_mismatch_is_detected() {
        let (frames, bytes) = sample();
        let chunks = crate::list_chunks(&bytes).unwrap();
        // Splice out the first frame chunk: the stream then carries 5
        // frames but the index still declares 6.
        let first = &chunks[0];
        let mut spliced = Vec::new();
        spliced.extend_from_slice(&bytes[..first.offset]);
        spliced.extend_from_slice(&bytes[first.payload.end..]);
        let mut dec = StreamDecoder::new();
        let mut saw_err = None;
        for piece in spliced.chunks(31) {
            dec.push(piece);
            loop {
                match dec.next_event() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        saw_err = Some(e);
                        break;
                    }
                }
            }
            if saw_err.is_some() {
                break;
            }
        }
        assert!(
            matches!(saw_err, Some(WireError::BadIndex { .. })),
            "{saw_err:?} (container had {} frames)",
            frames.len()
        );
    }

    #[test]
    fn pooled_decoding_matches_and_reuses_recycled_buffers() {
        let (frames, bytes) = sample();
        let pool = rpr_core::BufferPool::new();
        let mut dec = StreamDecoder::with_pool(pool.clone());
        let events = drive(&mut dec, &bytes, 37);
        let decoded: Vec<_> = events
            .into_iter()
            .filter_map(|e| match e {
                StreamEvent::Frame(f) => Some(f),
                StreamEvent::Finished { .. } => None,
            })
            .collect();
        assert_eq!(decoded, frames);
        // Dismantle the drained frames back into the pool; a second
        // session over the same bytes then allocates nothing new.
        for f in decoded {
            f.recycle(&pool);
        }
        let misses_before = pool.stats().misses;
        let mut dec = StreamDecoder::with_pool(pool.clone());
        drive(&mut dec, &bytes, 37);
        assert_eq!(
            pool.stats().misses,
            misses_before,
            "steady-state stream decode must reuse recycled buffers"
        );
    }

    #[test]
    fn buffer_stays_bounded_across_a_long_stream() {
        let frames: Vec<_> = (0..40).map(|i| frame(i, 32, 24)).collect();
        let bytes = write_container(&frames).unwrap();
        let mut dec = StreamDecoder::new();
        let mut max_buf = 0usize;
        for piece in bytes.chunks(97) {
            dec.push(piece);
            while dec.next_event().unwrap().is_some() {}
            max_buf = max_buf.max(dec.buffered());
        }
        assert_eq!(dec.finish().unwrap(), 40);
        // Buffered bytes never exceed one chunk + one read quantum.
        let biggest_chunk = crate::list_chunks(&bytes)
            .unwrap()
            .iter()
            .map(|c| c.payload.len() + CHUNK_HEADER_LEN)
            .max()
            .unwrap();
        assert!(max_buf <= biggest_chunk + 97, "{max_buf} vs {biggest_chunk}");
    }
}

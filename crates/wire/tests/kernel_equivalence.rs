//! Differential equivalence battery for the wire-layer chunked
//! kernels (ISSUE 7 satellite 1): the slice-by-8 CRC32 and the
//! word-at-a-time mask RLE must be byte-identical to their retained
//! scalar references on arbitrary inputs, including lengths not
//! divisible by 8 or 64, empty inputs, and misaligned resume phases.

use proptest::prelude::*;
use rpr_wire::crc32;
use rpr_wire::rle;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Slice-by-8 CRC equals the bitwise scalar CRC on any byte string.
    #[test]
    fn crc32_equals_scalar(bytes in proptest::collection::vec(0u8..=255, 0..300)) {
        prop_assert_eq!(crc32::crc32(&bytes), crc32::crc32_scalar(&bytes));
    }

    /// Incremental updates agree with the scalar path at any split
    /// point — the slice-by-8 loop must handle misaligned heads and
    /// short tails on resume.
    #[test]
    fn crc32_update_equals_scalar_at_any_split(
        bytes in proptest::collection::vec(0u8..=255, 0..300),
        split_pick in 0usize..300,
    ) {
        let split = split_pick.min(bytes.len());
        let (head, tail) = bytes.split_at(split);
        let fast = crc32::update(crc32::update(0xFFFF_FFFF, head), tail);
        let slow = crc32::update_scalar(crc32::update_scalar(0xFFFF_FFFF, head), tail);
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(fast ^ 0xFFFF_FFFF, crc32::crc32(&bytes));
    }

    /// Word-at-a-time RLE compression equals the per-entry scalar
    /// compressor on any packed mask, at any pixel count the mask can
    /// hold — including counts not divisible by 4, 8, or 64.
    #[test]
    fn rle_compress_equals_scalar(
        packed in proptest::collection::vec(0u8..=255, 0..80),
        trim in 0usize..4,
    ) {
        let pixels = (packed.len() * 4).saturating_sub(trim);
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        let n_fast = rle::compress(&packed, pixels, &mut fast);
        let n_slow = rle::compress_scalar(&packed, pixels, &mut slow);
        prop_assert_eq!(n_fast, n_slow);
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(fast.len(), rle::compressed_len(&packed, pixels));
    }

    /// The splat-filling inflater and the scalar inflater reconstruct
    /// identical packed masks, and both invert compression exactly.
    #[test]
    fn rle_inflate_equals_scalar_and_inverts_compress(
        packed in proptest::collection::vec(0u8..=255, 1..80),
        trim in 0usize..4,
    ) {
        let pixels = (packed.len() * 4).saturating_sub(trim);
        // Canonicalize: entries past `pixels` are padding the encoder
        // never writes, so zero them before comparing round-trips.
        let mut canonical = packed.clone();
        for i in pixels..packed.len() * 4 {
            canonical[i / 4] &= !(0b11 << (2 * (i % 4)));
        }
        let mut compressed = Vec::new();
        rle::compress(&canonical, pixels, &mut compressed);

        let fast = rle::inflate(&compressed, pixels);
        let slow = rle::inflate_scalar(&compressed, pixels);
        prop_assert_eq!(&fast, &slow);
        let fast = fast.expect("canonical mask must inflate");
        prop_assert_eq!(&fast, &canonical);

        let mut reused = vec![0xFFu8; 7];
        rle::inflate_into(&compressed, pixels, &mut reused)
            .expect("canonical mask must inflate into a reused buffer");
        prop_assert_eq!(reused, fast);
    }
}

/// Zero-length input is a degenerate shape both CRC paths and both RLE
/// paths must agree on without touching their word fast paths.
#[test]
fn empty_inputs_agree() {
    assert_eq!(crc32::crc32(&[]), crc32::crc32_scalar(&[]));
    let mut fast = Vec::new();
    let mut slow = Vec::new();
    assert_eq!(
        rle::compress(&[], 0, &mut fast),
        rle::compress_scalar(&[], 0, &mut slow)
    );
    assert_eq!(fast, slow);
    assert_eq!(rle::inflate(&fast, 0).ok(), rle::inflate_scalar(&slow, 0).ok());
}

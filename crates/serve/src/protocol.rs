//! The length-framed session protocol cameras speak to the server.
//!
//! A session is one TCP/in-memory connection carrying one `.rpr`
//! container. The framing is deliberately thin — the container format
//! already carries CRCs, indexes, and frame structure; the session
//! layer only adds identity and message boundaries:
//!
//! ```text
//! client → server   HELLO: "RPRS" | version u16 | flags u16
//!                          | camera_id u64 | tenant_len u16 | tenant
//! server → client   1 byte AdmitCode (0 = accepted)
//! client → server   messages: kind u8 | len u32 | payload
//!                     'D' — len bytes of raw .rpr container stream
//!                     'B' — bye (len 0): the container is complete
//! ```
//!
//! All integers are little-endian. A session that closes without `B`
//! is judged by the wire decoder's end-of-stream rules: clean chunk
//! boundary → scan recovery, mid-structure → typed truncation.
//!
//! This module is a parse surface for untrusted network bytes: it is
//! covered by the rpr-check panic-surface and truncating-cast lints,
//! so every read is bounds-checked and every malformation maps to a
//! typed [`ServeError`](crate::ServeError) — never a panic.

use crate::error::{Result, ServeError};

/// Magic opening every session hello.
pub const HELLO_MAGIC: &[u8; 4] = b"RPRS";
/// Protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;
/// Fixed-size prefix of the hello (through `tenant_len`).
pub const HELLO_FIXED_LEN: usize = 18;
/// Longest accepted tenant name, in bytes.
pub const MAX_TENANT_LEN: usize = 256;
/// Per-message header: kind byte plus payload length.
pub const MSG_HEADER_LEN: usize = 5;
/// Hard cap on one message's declared payload (1 MiB). Cameras send
/// the container in read-sized pieces; a forged length above this is
/// an attack, not a workload.
pub const MAX_MSG_LEN: u32 = 1 << 20;

/// Message kind: a piece of the `.rpr` container stream.
pub const MSG_DATA: u8 = b'D';
/// Message kind: the client finished its container cleanly.
pub const MSG_BYE: u8 = b'B';
/// Message kind: metrics scrape. Client→server it is a request and
/// must carry no payload; server→client the payload is the
/// Prometheus-format exposition text.
pub const MSG_METRICS: u8 = b'M';

/// The server's one-byte admission verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum AdmitCode {
    /// Session admitted; stream away.
    Accepted = 0,
    /// The hello named a tenant the server does not know.
    UnknownTenant = 1,
    /// The tenant is at its concurrent-session limit.
    SessionLimit = 2,
    /// The hello was malformed (bad magic/version/tenant).
    BadHello = 3,
    /// The server is draining toward shutdown.
    ShuttingDown = 4,
}

impl AdmitCode {
    /// Decodes the wire byte.
    pub fn from_byte(b: u8) -> Option<AdmitCode> {
        match b {
            0 => Some(AdmitCode::Accepted),
            1 => Some(AdmitCode::UnknownTenant),
            2 => Some(AdmitCode::SessionLimit),
            3 => Some(AdmitCode::BadHello),
            4 => Some(AdmitCode::ShuttingDown),
            _ => None,
        }
    }
}

/// A parsed session hello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version the client speaks.
    pub version: u16,
    /// Reserved flag bits (must be zero in v1).
    pub flags: u16,
    /// Client-chosen camera identifier, unique per tenant.
    pub camera_id: u64,
    /// Tenant the session bills to.
    pub tenant: String,
}

/// Encodes a hello for `tenant` / `camera_id` (client side).
pub fn encode_hello(tenant: &str, camera_id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HELLO_FIXED_LEN + tenant.len());
    out.extend_from_slice(HELLO_MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&camera_id.to_le_bytes());
    let len = u16::try_from(tenant.len().min(MAX_TENANT_LEN)).unwrap_or(u16::MAX);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(tenant.as_bytes().get(..usize::from(len)).unwrap_or(b""));
    out
}

/// Encodes one data message carrying `payload` container bytes
/// (client side). Payloads above [`MAX_MSG_LEN`] must be split by the
/// caller; this truncates defensively rather than panicking.
pub fn encode_data(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).unwrap_or(MAX_MSG_LEN).min(MAX_MSG_LEN);
    let take = usize::try_from(len).unwrap_or(0);
    let mut out = Vec::with_capacity(MSG_HEADER_LEN + take);
    out.push(MSG_DATA);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload.get(..take).unwrap_or(b""));
    out
}

/// Encodes the bye message (client side).
pub fn encode_bye() -> Vec<u8> {
    let mut out = Vec::with_capacity(MSG_HEADER_LEN);
    out.push(MSG_BYE);
    out.extend_from_slice(&0u32.to_le_bytes());
    out
}

/// Encodes a metrics scrape request (client side, empty payload).
pub fn encode_metrics_request() -> Vec<u8> {
    let mut out = Vec::with_capacity(MSG_HEADER_LEN);
    out.push(MSG_METRICS);
    out.extend_from_slice(&0u32.to_le_bytes());
    out
}

/// Encodes a metrics scrape response carrying the exposition text
/// (server side). Truncates defensively at [`MAX_MSG_LEN`] rather than
/// panicking; exposition pages are KiB-scale in practice.
pub fn encode_metrics_response(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).unwrap_or(MAX_MSG_LEN).min(MAX_MSG_LEN);
    let take = usize::try_from(len).unwrap_or(0);
    let mut out = Vec::with_capacity(MSG_HEADER_LEN + take);
    out.push(MSG_METRICS);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload.get(..take).unwrap_or(b""));
    out
}

fn le_u16_at(buf: &[u8], at: usize) -> Option<u16> {
    buf.get(at..at.checked_add(2)?).and_then(|s| s.try_into().ok()).map(u16::from_le_bytes)
}

fn le_u32_at(buf: &[u8], at: usize) -> Option<u32> {
    buf.get(at..at.checked_add(4)?).and_then(|s| s.try_into().ok()).map(u32::from_le_bytes)
}

fn le_u64_at(buf: &[u8], at: usize) -> Option<u64> {
    buf.get(at..at.checked_add(8)?).and_then(|s| s.try_into().ok()).map(u64::from_le_bytes)
}

/// Attempts to parse a hello from the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed, and
/// `Ok(Some((hello, consumed)))` once complete.
///
/// # Errors
///
/// [`ServeError::Protocol`] for a bad magic, unsupported version,
/// nonzero flags, over-long tenant, or non-UTF-8 tenant bytes.
pub fn try_parse_hello(buf: &[u8]) -> Result<Option<(Hello, usize)>> {
    if buf.len() < HELLO_FIXED_LEN {
        // Reject a wrong magic as soon as the prefix disagrees, so a
        // port-scanner blob is refused without waiting for 18 bytes.
        let prefix = buf.len().min(HELLO_MAGIC.len());
        if buf.get(..prefix) != HELLO_MAGIC.get(..prefix) {
            return Err(ServeError::Protocol { reason: "bad hello magic".to_string() });
        }
        return Ok(None);
    }
    if buf.get(..4) != Some(HELLO_MAGIC.as_slice()) {
        return Err(ServeError::Protocol { reason: "bad hello magic".to_string() });
    }
    let version = le_u16_at(buf, 4)
        .ok_or_else(|| ServeError::Protocol { reason: "hello truncated".to_string() })?;
    if version != PROTOCOL_VERSION {
        return Err(ServeError::Protocol {
            reason: format!("unsupported protocol version {version}"),
        });
    }
    let flags = le_u16_at(buf, 6)
        .ok_or_else(|| ServeError::Protocol { reason: "hello truncated".to_string() })?;
    if flags != 0 {
        return Err(ServeError::Protocol { reason: format!("nonzero hello flags {flags:#06x}") });
    }
    let camera_id = le_u64_at(buf, 8)
        .ok_or_else(|| ServeError::Protocol { reason: "hello truncated".to_string() })?;
    let tenant_len = usize::from(
        le_u16_at(buf, 16)
            .ok_or_else(|| ServeError::Protocol { reason: "hello truncated".to_string() })?,
    );
    if tenant_len == 0 || tenant_len > MAX_TENANT_LEN {
        return Err(ServeError::Protocol {
            reason: format!("tenant length {tenant_len} outside 1..={MAX_TENANT_LEN}"),
        });
    }
    let Some(end) = HELLO_FIXED_LEN.checked_add(tenant_len) else {
        return Err(ServeError::Protocol { reason: "tenant length overflows".to_string() });
    };
    let Some(name) = buf.get(HELLO_FIXED_LEN..end) else {
        return Ok(None);
    };
    let tenant = std::str::from_utf8(name)
        .map_err(|_| ServeError::Protocol { reason: "tenant name is not UTF-8".to_string() })?
        .to_string();
    Ok(Some((Hello { version, flags, camera_id, tenant }, end)))
}

/// One parsed session message. Data payloads borrow from the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg<'a> {
    /// A piece of the `.rpr` container stream.
    Data(&'a [u8]),
    /// The client declared its container complete.
    Bye,
    /// A metrics scrape: an empty payload is a request (client→server),
    /// a non-empty one the exposition text (server→client).
    Metrics(&'a [u8]),
}

/// Attempts to parse one message from the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed, else the message and
/// the bytes consumed.
///
/// # Errors
///
/// [`ServeError::Protocol`] for an unknown kind byte, a declared
/// length above [`MAX_MSG_LEN`], or a bye carrying a payload.
pub fn try_parse_msg(buf: &[u8]) -> Result<Option<(Msg<'_>, usize)>> {
    let Some(&kind) = buf.first() else {
        return Ok(None);
    };
    if kind != MSG_DATA && kind != MSG_BYE && kind != MSG_METRICS {
        return Err(ServeError::Protocol {
            reason: format!("unknown message kind {kind:#04x}"),
        });
    }
    let Some(len) = le_u32_at(buf, 1) else {
        return Ok(None);
    };
    if len > MAX_MSG_LEN {
        return Err(ServeError::Protocol {
            reason: format!("message length {len} exceeds cap {MAX_MSG_LEN}"),
        });
    }
    if kind == MSG_BYE && len != 0 {
        return Err(ServeError::Protocol {
            reason: format!("bye message carries {len} payload bytes"),
        });
    }
    let len_usize = usize::try_from(len).map_err(|_| ServeError::Protocol {
        reason: format!("message length {len} exceeds address space"),
    })?;
    let Some(end) = MSG_HEADER_LEN.checked_add(len_usize) else {
        return Err(ServeError::Protocol { reason: "message length overflows".to_string() });
    };
    let Some(payload) = buf.get(MSG_HEADER_LEN..end) else {
        return Ok(None);
    };
    let msg = match kind {
        MSG_BYE => Msg::Bye,
        MSG_METRICS => Msg::Metrics(payload),
        _ => Msg::Data(payload),
    };
    Ok(Some((msg, end)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrips_at_every_split() {
        let bytes = encode_hello("acme-fleet", 42);
        for cut in 0..bytes.len() {
            let r = try_parse_hello(&bytes[..cut]).unwrap();
            assert!(r.is_none(), "cut {cut} should need more bytes");
        }
        let (hello, used) = try_parse_hello(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(hello.tenant, "acme-fleet");
        assert_eq!(hello.camera_id, 42);
        assert_eq!(hello.version, PROTOCOL_VERSION);
    }

    #[test]
    fn wrong_magic_is_rejected_early() {
        assert!(try_parse_hello(b"HTTP").is_err(), "full wrong magic");
        assert!(try_parse_hello(b"HT").is_err(), "prefix already disagrees");
        assert!(try_parse_hello(b"RP").unwrap().is_none(), "agreeing prefix waits");
    }

    #[test]
    fn bad_hello_fields_are_typed_errors() {
        let mut v = encode_hello("t", 1);
        v[4] = 9; // version
        assert!(try_parse_hello(&v).is_err());

        let mut v = encode_hello("t", 1);
        v[6] = 1; // flags
        assert!(try_parse_hello(&v).is_err());

        let mut v = encode_hello("t", 1);
        v[16] = 0; // tenant_len = 0
        v[17] = 0;
        assert!(try_parse_hello(&v).is_err());

        let mut v = encode_hello("t", 1);
        v.truncate(HELLO_FIXED_LEN);
        v.push(0xff); // invalid UTF-8 tenant
        assert!(try_parse_hello(&v).is_err());
    }

    #[test]
    fn messages_roundtrip_and_cap() {
        let data = encode_data(b"hello container");
        let (msg, used) = try_parse_msg(&data).unwrap().unwrap();
        assert_eq!(used, data.len());
        assert_eq!(msg, Msg::Data(b"hello container"));

        let bye = encode_bye();
        let (msg, used) = try_parse_msg(&bye).unwrap().unwrap();
        assert_eq!(used, bye.len());
        assert_eq!(msg, Msg::Bye);

        assert!(try_parse_msg(&data[..3]).unwrap().is_none(), "short header waits");
        assert!(try_parse_msg(&data[..7]).unwrap().is_none(), "short payload waits");

        let mut forged = vec![MSG_DATA];
        forged.extend_from_slice(&(MAX_MSG_LEN + 1).to_le_bytes());
        assert!(try_parse_msg(&forged).is_err(), "length bomb refused before buffering");

        let mut fat_bye = vec![MSG_BYE];
        fat_bye.extend_from_slice(&4u32.to_le_bytes());
        fat_bye.extend_from_slice(b"oops");
        assert!(try_parse_msg(&fat_bye).is_err());

        assert!(try_parse_msg(&[0x7a]).is_err(), "unknown kind");
        assert!(try_parse_msg(&[]).unwrap().is_none());
    }

    #[test]
    fn metrics_messages_roundtrip_both_directions() {
        let req = encode_metrics_request();
        let (msg, used) = try_parse_msg(&req).unwrap().unwrap();
        assert_eq!(used, req.len());
        assert_eq!(msg, Msg::Metrics(b""));

        let page = b"# TYPE rpr_frames_accepted_total counter\n";
        let resp = encode_metrics_response(page);
        let (msg, used) = try_parse_msg(&resp).unwrap().unwrap();
        assert_eq!(used, resp.len());
        assert_eq!(msg, Msg::Metrics(page.as_slice()));

        assert!(try_parse_msg(&resp[..4]).unwrap().is_none(), "short header waits");
        assert!(try_parse_msg(&resp[..9]).unwrap().is_none(), "short payload waits");
    }

    #[test]
    fn admit_codes_roundtrip() {
        for code in [
            AdmitCode::Accepted,
            AdmitCode::UnknownTenant,
            AdmitCode::SessionLimit,
            AdmitCode::BadHello,
            AdmitCode::ShuttingDown,
        ] {
            assert_eq!(AdmitCode::from_byte(code as u8), Some(code));
        }
        assert_eq!(AdmitCode::from_byte(99), None);
    }
}

//! Minimal session clients for tests, examples, and load generation.
//!
//! A camera client is fundamentally a byte script: hello, then the
//! container sliced into data messages, then bye. [`ScriptedClient`]
//! materializes that script once and pushes it through the bounded
//! transport as fast as the server's reading allows — which makes the
//! *client* side of backpressure observable: a stalled server shows up
//! as a client whose [`ScriptedClient::flush`] stops making progress.

use crate::protocol::{
    encode_bye, encode_data, encode_hello, encode_metrics_request, try_parse_msg, AdmitCode, Msg,
};
use crate::transport::{Conn, ConnRead, MemConn, MemListener};

/// Builds the full byte script of one camera session: hello for
/// `tenant`/`camera_id`, the container in `chunk`-byte data messages,
/// and (optionally) the closing bye.
pub fn session_script(
    tenant: &str,
    camera_id: u64,
    container: &[u8],
    chunk: usize,
    include_bye: bool,
) -> Vec<u8> {
    let chunk = chunk.max(1);
    let mut script = encode_hello(tenant, camera_id);
    for piece in container.chunks(chunk) {
        script.extend_from_slice(&encode_data(piece));
    }
    if include_bye {
        script.extend_from_slice(&encode_bye());
    }
    script
}

/// A camera session driven from a pre-built byte script.
#[derive(Debug)]
pub struct ScriptedClient {
    conn: MemConn,
    script: Vec<u8>,
    pos: usize,
    admit: Option<AdmitCode>,
    closed_after: bool,
}

impl ScriptedClient {
    /// Connects to `listener` (per-direction ring of `ring` bytes) and
    /// stages `script` for transmission. Nothing is sent until
    /// [`ScriptedClient::flush`].
    pub fn connect(listener: &MemListener, ring: usize, script: Vec<u8>) -> Self {
        ScriptedClient {
            conn: listener.connect(ring),
            script,
            pos: 0,
            admit: None,
            closed_after: false,
        }
    }

    /// Pushes as much of the remaining script as the transport
    /// accepts, returning the bytes moved. Closes the connection once
    /// the script is fully sent (the clean-session signal when the
    /// script ends in a bye; a mid-stream cut when it does not).
    pub fn flush(&mut self) -> usize {
        self.poll_admit();
        if self.rejected() {
            return 0;
        }
        let remaining = self.script.get(self.pos..).unwrap_or(&[]);
        if remaining.is_empty() {
            if !self.closed_after {
                self.conn.close();
                self.closed_after = true;
            }
            return 0;
        }
        let n = self.conn.write_ready(remaining);
        self.pos += n;
        if self.pos >= self.script.len() && !self.closed_after {
            self.conn.close();
            self.closed_after = true;
        }
        n
    }

    fn poll_admit(&mut self) {
        if self.admit.is_some() {
            return;
        }
        let mut byte = [0u8; 1];
        if let ConnRead::Data(1) = self.conn.read_ready(&mut byte) {
            self.admit = AdmitCode::from_byte(byte[0]);
        }
    }

    /// The admission verdict, once the server has replied.
    pub fn admit_code(&mut self) -> Option<AdmitCode> {
        self.poll_admit();
        self.admit
    }

    /// True once the server replied with anything but
    /// [`AdmitCode::Accepted`].
    pub fn rejected(&mut self) -> bool {
        self.poll_admit();
        matches!(self.admit, Some(c) if c != AdmitCode::Accepted)
    }

    /// True once the whole script has been handed to the transport.
    pub fn done(&self) -> bool {
        self.pos >= self.script.len()
    }

    /// Bytes of script not yet accepted by the transport.
    pub fn remaining(&self) -> usize {
        self.script.len().saturating_sub(self.pos)
    }
}

/// A scrape-only session: hello, one metrics request, bye. Poll it
/// alongside [`Server::step`](crate::Server::step) until the server's
/// Prometheus exposition page arrives — which works *mid-flight*, while
/// other sessions of the same server are still streaming frames.
#[derive(Debug)]
pub struct ScrapeClient {
    conn: MemConn,
    script: Vec<u8>,
    pos: usize,
    admit: Option<AdmitCode>,
    inbox: Vec<u8>,
    response: Option<String>,
}

impl ScrapeClient {
    /// Connects to `listener` (per-direction ring of `ring` bytes) and
    /// stages the scrape script under `tenant` / `camera_id`.
    pub fn connect(listener: &MemListener, ring: usize, tenant: &str, camera_id: u64) -> Self {
        let mut script = encode_hello(tenant, camera_id);
        script.extend_from_slice(&encode_metrics_request());
        script.extend_from_slice(&encode_bye());
        ScrapeClient {
            conn: listener.connect(ring),
            script,
            pos: 0,
            admit: None,
            inbox: Vec::new(),
            response: None,
        }
    }

    /// One non-blocking pump: pushes what remains of the script and
    /// drains whatever the server wrote. Returns the exposition page
    /// once the response frame is complete.
    pub fn poll(&mut self) -> Option<&str> {
        let remaining = self.script.get(self.pos..).unwrap_or(&[]);
        if !remaining.is_empty() {
            self.pos += self.conn.write_ready(remaining);
        }
        let mut buf = [0u8; 4096];
        while let ConnRead::Data(n) = self.conn.read_ready(&mut buf) {
            self.inbox.extend_from_slice(buf.get(..n).unwrap_or(&[]));
            if n < buf.len() {
                break;
            }
        }
        if self.admit.is_none() {
            if let Some((&byte, rest)) = self.inbox.split_first() {
                self.admit = AdmitCode::from_byte(byte);
                self.inbox = rest.to_vec();
            }
        }
        if matches!(self.admit, Some(c) if c != AdmitCode::Accepted) {
            return None;
        }
        if self.response.is_none() {
            if let Ok(Some((Msg::Metrics(payload), _))) = try_parse_msg(&self.inbox) {
                let page = String::from_utf8_lossy(payload).into_owned();
                self.response = Some(page);
                self.conn.close();
            }
        }
        self.response.as_deref()
    }

    /// The scraped page, once [`ScrapeClient::poll`] completed.
    pub fn response(&self) -> Option<&str> {
        self.response.as_deref()
    }

    /// The admission verdict, once the server replied.
    pub fn admit_code(&self) -> Option<AdmitCode> {
        self.admit
    }
}

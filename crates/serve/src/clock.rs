//! Injectable time for the server.
//!
//! Every time-dependent decision in `rpr-serve` — token-bucket refill,
//! ingest timestamps, latency accounting — reads a [`Clock`] rather
//! than the wall clock, so the whole server runs deterministically
//! under a [`ManualClock`] in tests and in the CI smoke gate. This
//! file is the crate's only allowlisted home for raw `Instant` reads
//! (rpr-check RPR003); [`SystemClock`] is the sole caller.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond counter the server schedules against.
pub trait Clock: Send + Sync {
    /// Microseconds since the clock's epoch. Must never go backwards.
    fn now_micros(&self) -> u64;
}

/// Deterministic clock advanced explicitly by the test or driver.
/// Cloning shares the underlying counter, so a driver can hold one
/// handle while the server holds another.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    micros: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock starting at microsecond zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `micros`.
    pub fn advance(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::Release);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Acquire)
    }
}

/// Wall-clock time, anchored at construction.
#[derive(Debug)]
pub struct SystemClock {
    start: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl SystemClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        SystemClock { start: Instant::now() }
    }
}

impl Clock for SystemClock {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_shared_across_clones() {
        let c = ManualClock::new();
        let c2 = c.clone();
        assert_eq!(c.now_micros(), 0);
        c.advance(1_000);
        assert_eq!(c2.now_micros(), 1_000);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }
}

//! The event-loop server: accept, admit, ingest, enforce, deliver.
//!
//! One [`Server`] multiplexes every live session in a single polled
//! loop — [`Server::step`] makes one pass over the accept queue and
//! all sessions, never blocking on any of them. Determinism falls out:
//! driven by a [`ManualClock`](crate::ManualClock) and a fixed client
//! schedule, two runs make byte-identical decisions, which is what
//! lets the CI smoke gate diff serving metrics like any other
//! RunReport.
//!
//! The per-frame path is: session bytes → protocol messages →
//! incremental container decode → **tenant quota** (token buckets;
//! insufficient tokens throttles the frame) → **tenant queue**
//! (bounded [`StageQueue`], whose [`BackpressureMode`] is the tenant's
//! QoS class). A frame refused by a full `Block`/`Degrade` queue parks
//! as the session's *pending* frame, and the server stops reading that
//! session — backpressure propagates to the client through the
//! transport's bounded ring, never to other tenants.

use rpr_core::EncodedFrame;
use rpr_stream::{StageQueue, TryPush};
use rpr_trace::{
    EventKind, FlightRecorder, FrameCtx, LiveMetrics, Provenance, RunReport, SloSection,
    TenantLive, TenantSection, TraceEvent,
};
use rpr_wire::WireError;
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::clock::Clock;
use crate::error::ServeError;
use crate::protocol::{encode_metrics_response, AdmitCode};
use crate::session::{Session, SessionEnd, SessionPhase};
use crate::tenant::{TenantAccounting, TenantConfig};
use crate::transport::{Conn, MemListener};

/// A frame that cleared admission, quota, and queueing: what the
/// serving layer hands to pipelines.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivered {
    /// Tenant the frame billed to.
    pub tenant: Arc<str>,
    /// Camera that produced it (from the session hello).
    pub camera_id: u64,
    /// Server-assigned session id.
    pub session_id: u64,
    /// The decoded, validated frame.
    pub frame: EncodedFrame,
    /// Server clock reading when the frame cleared quota.
    pub accepted_micros: u64,
    /// Trace context: the frame's end-to-end identity, threaded through
    /// the bridge into stage spans and latency accounting.
    pub ctx: FrameCtx,
}

/// Server-wide counters (tenant-agnostic failures live here; per-tenant
/// accounting lives in [`TenantSection`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted off the listener.
    pub sessions_opened: u64,
    /// Sessions that ended cleanly (bye / finished container).
    pub sessions_clean: u64,
    /// Sessions recovered at a chunk boundary (peer vanished).
    pub sessions_recovered: u64,
    /// Sessions ended by a torn final chunk (typed
    /// [`WireError::TruncatedStream`]).
    pub sessions_truncated: u64,
    /// Sessions ended by protocol or other wire errors.
    pub sessions_errored: u64,
    /// Hellos naming a tenant the server does not know.
    pub rejected_unknown_tenant: u64,
    /// Hellos refused because the tenant was at its session limit.
    pub rejected_session_limit: u64,
    /// Hellos refused during shutdown drain.
    pub rejected_shutting_down: u64,
}

/// What one [`Server::step`] accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Connections accepted this step.
    pub accepted: usize,
    /// Bytes read off all sessions this step.
    pub bytes_read: usize,
    /// Frames enqueued toward tenants this step.
    pub frames_enqueued: usize,
    /// Sessions that reached `Closed` this step.
    pub sessions_closed: usize,
}

impl StepStats {
    /// True when the step moved anything at all.
    pub fn progressed(&self) -> bool {
        self.accepted > 0
            || self.bytes_read > 0
            || self.frames_enqueued > 0
            || self.sessions_closed > 0
    }
}

struct TenantEntry {
    name: Arc<str>,
    config: TenantConfig,
    acct: TenantAccounting,
    queue: Arc<StageQueue<Delivered>>,
    live: Arc<TenantLive>,
    /// True while the tenant is inside one SLO-breach episode, so the
    /// flight recorder fires once per episode rather than every step.
    breach_latch: bool,
    breaches: u64,
    flight_dumps: u64,
}

struct Slot {
    session: Session,
    pending: Option<Delivered>,
}

/// The multi-tenant ingestion server.
pub struct Server {
    clock: Arc<dyn Clock>,
    listener: MemListener,
    tenants: BTreeMap<String, TenantEntry>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    next_session: u64,
    accepting: bool,
    read_quantum: usize,
    stats: ServerStats,
    live: Arc<LiveMetrics>,
    flight: FlightRecorder,
    flight_tids: BTreeMap<(u32, u64), u64>,
    flight_names: Vec<(u64, String)>,
    next_flight_tid: u64,
    flight_dump: Option<String>,
    fault_storm_threshold: u64,
    fault_window_micros: u64,
    fault_window_start: u64,
    faults_in_window: u64,
    report_interval_micros: Option<u64>,
    last_report_micros: u64,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("tenants", &self.tenants.len())
            .field("open_sessions", &self.open_sessions())
            .field("accepting", &self.accepting)
            .finish()
    }
}

impl Server {
    /// A server reading time from `clock`, with an empty tenant table
    /// and a fresh in-memory listener.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Server {
            clock,
            listener: MemListener::new(),
            tenants: BTreeMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_session: 1,
            accepting: true,
            read_quantum: 64 * 1024,
            stats: ServerStats::default(),
            live: Arc::new(LiveMetrics::new()),
            flight: FlightRecorder::new(4096),
            flight_tids: BTreeMap::new(),
            flight_names: Vec::new(),
            next_flight_tid: 1,
            flight_dump: None,
            fault_storm_threshold: 8,
            fault_window_micros: 1_000_000,
            fault_window_start: 0,
            faults_in_window: 0,
            report_interval_micros: None,
            last_report_micros: 0,
        }
    }

    /// Caps the bytes read from any one session per step (fairness
    /// quantum). Default 64 KiB.
    pub fn with_read_quantum(mut self, bytes: usize) -> Self {
        self.read_quantum = bytes.max(1);
        self
    }

    /// Sets the flight recorder's span capacity (default 4096).
    pub fn with_flight_capacity(mut self, events: usize) -> Self {
        self.flight = FlightRecorder::new(events);
        self
    }

    /// Tunes the session-fault storm trigger: `threshold` session
    /// failures within `window_micros` dump the flight recorder
    /// (defaults: 8 faults within one second).
    pub fn with_fault_storm(mut self, threshold: u64, window_micros: u64) -> Self {
        self.fault_storm_threshold = threshold.max(1);
        self.fault_window_micros = window_micros.max(1);
        self
    }

    /// Enables periodic live-RunReport snapshots: once at least
    /// `micros` of server-clock time pass, the next
    /// [`Server::poll_report`] returns a report.
    pub fn with_report_interval(mut self, micros: u64) -> Self {
        self.report_interval_micros = Some(micros.max(1));
        self
    }

    /// Registers `name` with its policy. Sessions for unregistered
    /// tenants are rejected at hello time.
    pub fn add_tenant(&mut self, name: &str, config: TenantConfig) {
        let now = self.clock.now_micros();
        let queue = Arc::new(StageQueue::new(
            &format!("tenant-{name}"),
            config.queue_capacity.max(1),
            config.backpressure,
        ));
        let live = self.live.register(name, config.slo);
        self.tenants.insert(
            name.to_string(),
            TenantEntry {
                name: Arc::from(name),
                acct: TenantAccounting::new(name, &config, now),
                config,
                queue,
                live,
                breach_latch: false,
                breaches: 0,
                flight_dumps: 0,
            },
        );
    }

    /// The listener clients connect to.
    pub fn listener(&self) -> MemListener {
        self.listener.clone()
    }

    /// Adopts an already-established connection (e.g. an accepted
    /// [`TcpConn`](crate::TcpConn)) as a new session.
    pub fn adopt(&mut self, conn: Box<dyn Conn>) -> u64 {
        let id = self.next_session;
        self.next_session += 1;
        self.stats.sessions_opened += 1;
        let slot = Slot { session: Session::new(id, conn), pending: None };
        if let Some(i) = self.free.pop() {
            self.slots[i] = Some(slot);
        } else {
            self.slots.push(Some(slot));
        }
        id
    }

    /// The delivery queue for `tenant` — consumers pop [`Delivered`]
    /// frames from it (blocking `pop` from consumer threads, or
    /// `try_pop` from a driving loop).
    pub fn tenant_queue(&self, tenant: &str) -> Option<Arc<StageQueue<Delivered>>> {
        self.tenants.get(tenant).map(|t| Arc::clone(&t.queue))
    }

    /// Stops admitting new sessions; existing ones drain. Hellos
    /// arriving after this are refused with
    /// [`AdmitCode::ShuttingDown`].
    pub fn begin_shutdown(&mut self) {
        self.accepting = false;
    }

    /// Closes every tenant queue. Call only once ingest is idle;
    /// consumers drain what is queued, then see end-of-stream.
    pub fn close_tenant_queues(&self) {
        for t in self.tenants.values() {
            t.queue.close();
        }
    }

    /// Sessions not yet closed.
    pub fn open_sessions(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .filter(|s| s.session.phase() != SessionPhase::Closed || s.pending.is_some())
            .count()
    }

    /// True when no session can make further progress without new
    /// input and no frame is parked waiting for queue space.
    pub fn is_idle(&self) -> bool {
        self.open_sessions() == 0 && self.listener.backlog() == 0
    }

    /// Server-wide counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The live metrics plane the server writes: scrapeable while
    /// [`Server::step`] runs from the loop's own thread.
    pub fn live(&self) -> Arc<LiveMetrics> {
        Arc::clone(&self.live)
    }

    /// One tenant's live handle (e.g. for a consumer loop that records
    /// delivery latency on pop).
    pub fn tenant_live(&self, tenant: &str) -> Option<Arc<TenantLive>> {
        self.tenants.get(tenant).map(|t| Arc::clone(&t.live))
    }

    /// Renders the Prometheus-format exposition page for the current
    /// live state (what a `METRICS` protocol request returns).
    pub fn render_metrics(&self) -> String {
        let now = self.clock.now_micros();
        rpr_trace::render_prometheus(&self.live.snapshot(), &self.slo_sections(), now)
    }

    /// Per-tenant SLO outcomes at the current server-clock reading, one
    /// section per tenant that declared an SLO.
    pub fn slo_sections(&self) -> Vec<SloSection> {
        let now = self.clock.now_micros();
        self.tenants
            .values()
            .filter_map(|entry| {
                let slo = entry.live.slo()?;
                let (good, bad) = slo.window_totals(now);
                let cfg = slo.config();
                Some(SloSection {
                    tenant: entry.live.name.clone(),
                    target_delivery_us: cfg.target_delivery_us,
                    budget_fraction: cfg.budget_fraction,
                    window_micros: cfg.window_micros,
                    good_events: good,
                    bad_events: bad,
                    burn_rate: slo.burn_rate(now),
                    breaches: entry.breaches,
                    flight_dumps: entry.flight_dumps,
                })
            })
            .collect()
    }

    /// A live [`RunReport`] snapshot of the run so far: per-tenant
    /// accounting plus SLO outcomes, diffable by `rpr-report` like any
    /// finished run.
    pub fn live_report(&self) -> RunReport {
        let frames = self.live.snapshot().iter().map(|t| t.frames_accepted).sum();
        RunReport {
            schema_version: rpr_trace::REPORT_SCHEMA_VERSION,
            task: "serve-live".to_string(),
            dataset: "live".to_string(),
            baseline: "rpr-serve".to_string(),
            frames,
            tenants: self.tenant_sections(),
            slos: Some(self.slo_sections()),
            ..Default::default()
        }
    }

    /// Returns a live report once per configured
    /// [`Server::with_report_interval`] window; `None` between emits or
    /// when no interval was set. Call from the driving loop.
    pub fn poll_report(&mut self) -> Option<RunReport> {
        let every = self.report_interval_micros?;
        let now = self.clock.now_micros();
        if now.saturating_sub(self.last_report_micros) < every {
            return None;
        }
        self.last_report_micros = now;
        Some(self.live_report())
    }

    /// Takes the pending flight-recorder trace dump (Chrome trace-event
    /// JSON), produced automatically on an SLO breach or a
    /// session-fault storm.
    pub fn take_flight_dump(&mut self) -> Option<String> {
        self.flight_dump.take()
    }

    /// Per-tenant accounting, with `delivered_fraction` computed.
    pub fn tenant_sections(&self) -> Vec<TenantSection> {
        self.tenants
            .values()
            .map(|t| {
                let mut s = t.acct.section.clone();
                s.delivered_fraction = if s.frames_accepted == 0 {
                    1.0
                } else {
                    s.frames_delivered as f64 / s.frames_accepted as f64
                };
                s
            })
            .collect()
    }

    /// One non-blocking pass: accept pending connections, then give
    /// every session a fair read-parse-deliver quantum.
    pub fn step(&mut self) -> StepStats {
        let mut stats = StepStats::default();
        while let Some(conn) = self.listener.accept() {
            self.adopt(Box::new(conn));
            stats.accepted += 1;
        }
        for i in 0..self.slots.len() {
            self.step_slot(i, &mut stats);
        }
        // Fold queue pressure into per-tenant degrade accounting once
        // per step (the flag is level-triggered while a producer waits
        // on a full Degrade queue).
        for t in self.tenants.values_mut() {
            if t.queue.take_pressure() {
                t.acct.section.degrade_events += 1;
            }
        }
        // Evaluate SLO burn once per step; a tenant entering a breach
        // episode fires the flight recorder exactly once.
        let now = self.clock.now_micros();
        let mut breach_entered = false;
        for t in self.tenants.values_mut() {
            let Some(slo) = t.live.slo() else { continue };
            if slo.breached(now) {
                if !t.breach_latch {
                    t.breach_latch = true;
                    t.breaches += 1;
                    t.flight_dumps += 1;
                    breach_entered = true;
                }
            } else {
                t.breach_latch = false;
            }
        }
        if breach_entered {
            self.trigger_flight_dump();
        }
        stats
    }

    /// Steps until a full pass makes no progress, up to `max_steps`.
    /// Returns the steps taken. Note that a parked pending frame only
    /// clears when a *consumer* pops the tenant queue, so a driving
    /// loop should interleave queue drains with this call.
    pub fn pump_until_idle(&mut self, max_steps: usize) -> usize {
        for n in 0..max_steps {
            if !self.step().progressed() {
                return n + 1;
            }
        }
        max_steps
    }

    fn step_slot(&mut self, i: usize, stats: &mut StepStats) {
        let Some(mut slot) = self.slots.get_mut(i).and_then(Option::take) else {
            return;
        };
        self.drive_slot(&mut slot, stats);
        if slot.session.phase() == SessionPhase::Closed && slot.pending.is_none() {
            stats.sessions_closed += 1;
            self.free.push(i);
            if let Some(s) = self.slots.get_mut(i) {
                *s = None;
            }
        } else if let Some(s) = self.slots.get_mut(i) {
            *s = Some(slot);
        }
    }

    fn drive_slot(&mut self, slot: &mut Slot, stats: &mut StepStats) {
        // A parked frame must clear before the session reads again:
        // this is the per-tenant backpressure point.
        if let Some(frame) = slot.pending.take() {
            match self.offer(frame) {
                Offer::Delivered => stats.frames_enqueued += 1,
                Offer::Parked(frame) => {
                    slot.pending = Some(frame);
                    return;
                }
                Offer::Gone => {}
            }
        }
        match slot.session.phase() {
            SessionPhase::AwaitHello => {
                stats.bytes_read += slot.session.pump_read(self.read_quantum);
                match slot.session.poll_hello() {
                    Ok(Some(hello)) => self.admit_or_reject(&mut slot.session, &hello),
                    Ok(None) => {}
                    Err(_) => {
                        slot.session.reject(AdmitCode::BadHello);
                        self.stats.sessions_errored += 1;
                    }
                }
                // Fall through so an admitted session's already-read
                // bytes parse this same step.
                if slot.session.phase() == SessionPhase::Ingest {
                    self.ingest(slot, stats);
                }
            }
            SessionPhase::Ingest => {
                stats.bytes_read += slot.session.pump_read(self.read_quantum);
                self.ingest(slot, stats);
            }
            SessionPhase::Closed => {}
        }
    }

    fn ingest(&mut self, slot: &mut Slot, stats: &mut StepStats) {
        loop {
            match slot.session.poll_frame() {
                Ok(Some(frame)) => {
                    let Some(delivered) = self.admit_frame(&slot.session, frame) else {
                        continue; // throttled by quota
                    };
                    match self.offer(delivered) {
                        Offer::Delivered => stats.frames_enqueued += 1,
                        Offer::Parked(frame) => {
                            slot.pending = Some(frame);
                            return; // stop reading: backpressure
                        }
                        Offer::Gone => {}
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    self.account_session_error(&slot.session, &e);
                    self.release_session(&slot.session);
                    return;
                }
            }
        }
        if slot.session.take_metrics_request() {
            let page = self.render_metrics();
            slot.session.queue_response(&encode_metrics_response(page.as_bytes()));
        }
        slot.session.pump_write();
        if slot.session.input_exhausted() {
            if !slot.session.outbox_drained() {
                // Hold the slot open until the queued response flushes.
                return;
            }
            let end = slot.session.end();
            match &end {
                SessionEnd::Clean(_) => self.stats.sessions_clean += 1,
                SessionEnd::Recovered(_) => self.stats.sessions_recovered += 1,
                SessionEnd::Failed(e) => self.account_session_error(&slot.session, e),
            }
            self.release_session(&slot.session);
        }
    }

    fn admit_or_reject(&mut self, session: &mut Session, hello: &crate::protocol::Hello) {
        let Some(entry) = self.tenants.get_mut(&hello.tenant) else {
            self.stats.rejected_unknown_tenant += 1;
            session.reject(AdmitCode::UnknownTenant);
            return;
        };
        entry.acct.section.sessions_offered += 1;
        if !self.accepting {
            self.stats.rejected_shutting_down += 1;
            session.reject(AdmitCode::ShuttingDown);
            return;
        }
        if entry.acct.sessions_active >= entry.config.max_sessions {
            self.stats.rejected_session_limit += 1;
            session.reject(AdmitCode::SessionLimit);
            return;
        }
        entry.acct.sessions_active += 1;
        entry.acct.section.sessions_admitted += 1;
        session.admit(hello);
    }

    /// Applies the tenant's token buckets to a decoded frame. `None`
    /// means the frame was throttled (counted, discarded).
    fn admit_frame(&mut self, session: &Session, frame: EncodedFrame) -> Option<Delivered> {
        let tenant = session.tenant.as_deref()?;
        let now = self.clock.now_micros();
        let cost = frame.total_bytes() as u64;
        let (accepted, name, live) = {
            let entry = self.tenants.get_mut(tenant)?;
            let frame_ok = entry.acct.frame_bucket.try_take(1, now);
            let bytes_ok = frame_ok && entry.acct.byte_bucket.try_take(cost, now);
            if !frame_ok || !bytes_ok {
                if frame_ok {
                    // The byte bucket vetoed after the frame token was
                    // taken; refund it so the two throttle as one
                    // decision.
                    entry.acct.frame_bucket.refund(1);
                }
                entry.acct.section.frames_dropped += 1;
                entry.acct.section.quota_throttles += 1;
                entry.live.quota_throttles.add(1);
                entry.live.record_drop(now);
                (false, Arc::clone(&entry.name), Arc::clone(&entry.live))
            } else {
                entry.acct.section.frames_accepted += 1;
                entry.acct.section.bytes_ingested += cost;
                entry.live.frames_accepted.add(1);
                entry.live.bytes_ingested.add(cost);
                (true, Arc::clone(&entry.name), Arc::clone(&entry.live))
            }
        };
        let ctx = FrameCtx {
            tenant: live.id,
            camera: session.camera_id,
            session: session.id,
            frame_seq: session.frames_returned().saturating_sub(1),
            ingest_micros: now,
        };
        let tid = self.flight_tid(&name, live.id, session.camera_id);
        let verdict = if accepted { 1.0 } else { 0.0 };
        self.flight_record(rpr_trace::names::SERVE_ADMIT, tid, now, verdict, ctx);
        if !accepted {
            return None;
        }
        rpr_trace::counter_for_ctx(rpr_trace::names::SERVE_ADMIT, "serve", ctx, 1.0);
        Some(Delivered {
            tenant: name,
            camera_id: session.camera_id,
            session_id: session.id,
            frame,
            accepted_micros: now,
            ctx,
        })
    }

    fn offer(&mut self, delivered: Delivered) -> Offer {
        let now = self.clock.now_micros();
        let ctx = delivered.ctx;
        let camera = delivered.camera_id;
        let Some(entry) = self.tenants.get_mut(delivered.tenant.as_ref()) else {
            return Offer::Gone;
        };
        let name = Arc::clone(&entry.name);
        let tenant_id = entry.live.id;
        let result = match entry.queue.try_push(delivered) {
            TryPush::Pushed => {
                entry.acct.section.frames_delivered += 1;
                Offer::Delivered
            }
            TryPush::Dropped => {
                // The new frame is in; an older queued frame was
                // evicted. It had been counted delivered, so the books
                // move one from delivered to dropped; the evicted frame
                // also burns SLO error budget.
                entry.acct.section.frames_dropped += 1;
                entry.live.record_drop(now);
                Offer::Delivered
            }
            TryPush::Full(frame) => Offer::Parked(frame),
            TryPush::Closed(_) => {
                entry.acct.section.frames_dropped += 1;
                entry.live.record_drop(now);
                Offer::Gone
            }
        };
        if matches!(result, Offer::Delivered) {
            let tid = self.flight_tid(&name, tenant_id, camera);
            self.flight_record(rpr_trace::names::SERVE_DELIVER, tid, now, 1.0, ctx);
        }
        result
    }

    /// Compact flight-recorder track id for a `(tenant, camera)` pair,
    /// assigning one (and its `tenant/camera-N` track name) on first
    /// sight.
    fn flight_tid(&mut self, tenant: &str, tenant_id: u32, camera: u64) -> u64 {
        if let Some(tid) = self.flight_tids.get(&(tenant_id, camera)) {
            return *tid;
        }
        let tid = self.next_flight_tid;
        self.next_flight_tid = self.next_flight_tid.saturating_add(1);
        self.flight_tids.insert((tenant_id, camera), tid);
        self.flight_names.push((tid, format!("{tenant}/camera-{camera}")));
        tid
    }

    fn flight_record(&mut self, name: &'static str, tid: u64, now_micros: u64, value: f64, ctx: FrameCtx) {
        self.flight.record(TraceEvent {
            name,
            cat: "serve",
            kind: EventKind::Instant,
            tid,
            ts_ns: now_micros.saturating_mul(1_000),
            dur_ns: 0,
            value,
            provenance: Provenance {
                frame_idx: Some(ctx.frame_seq),
                ctx: Some(ctx),
                ..Default::default()
            },
        });
    }

    fn trigger_flight_dump(&mut self) {
        // A pending dump is the interesting one (first breach of the
        // episode); don't overwrite it before anyone reads it.
        if self.flight_dump.is_some() {
            return;
        }
        let events = self.flight.dump();
        self.flight_dump = Some(rpr_trace::chrome_trace_json_named(
            &events,
            &self.flight_names,
            "rpr-serve",
        ));
    }

    fn release_session(&mut self, session: &Session) {
        if let Some(tenant) = session.tenant.as_deref() {
            if let Some(entry) = self.tenants.get_mut(tenant) {
                entry.acct.sessions_active = entry.acct.sessions_active.saturating_sub(1);
            }
        }
    }

    fn account_session_error(&mut self, _session: &Session, e: &ServeError) {
        match e {
            ServeError::Wire(WireError::TruncatedStream { .. }) => {
                self.stats.sessions_truncated += 1;
            }
            _ => self.stats.sessions_errored += 1,
        }
        // Session-fault storm: a burst of failures inside one window
        // dumps the flight recorder for postmortem.
        let now = self.clock.now_micros();
        if now.saturating_sub(self.fault_window_start) > self.fault_window_micros {
            self.fault_window_start = now;
            self.faults_in_window = 0;
        }
        self.faults_in_window = self.faults_in_window.saturating_add(1);
        if self.faults_in_window >= self.fault_storm_threshold {
            self.faults_in_window = 0;
            self.trigger_flight_dump();
        }
    }
}

enum Offer {
    Delivered,
    Parked(Delivered),
    Gone,
}

//! Per-tenant policy: admission limits, token-bucket quotas, QoS.
//!
//! The server's fairness story is entirely per-tenant: every session
//! bills its bytes and frames to one tenant, and every policy decision
//! (admit the session? accept the frame? block, drop, or degrade when
//! the pipeline lags?) consults that tenant's [`TenantConfig`]. A
//! misbehaving tenant therefore throttles *itself* — its token buckets
//! empty, its queue fills, its sessions block — while other tenants'
//! buckets and queues are untouched.

use rpr_stream::BackpressureMode;
use rpr_trace::{SloConfig, TenantSection};

/// A token bucket: `rate` tokens/second refill toward a `burst` cap.
///
/// Refill arithmetic runs in integer microseconds against the injected
/// [`Clock`](crate::Clock); fractional-token remainders are carried in
/// the timestamp (the bucket only advances `last` by the time whose
/// tokens it credited), so slow drips are not rounded away.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens: u64,
    burst: u64,
    rate: u64,
    last_micros: u64,
}

impl TokenBucket {
    /// A bucket starting full at `burst` tokens, refilling at `rate`
    /// tokens per second. `rate == 0` never refills; `burst == 0`
    /// never holds a token (the zero-quota tenant).
    pub fn new(rate: u64, burst: u64, now_micros: u64) -> Self {
        TokenBucket { tokens: burst, burst, rate, last_micros: now_micros }
    }

    fn refill(&mut self, now_micros: u64) {
        let elapsed = now_micros.saturating_sub(self.last_micros);
        if elapsed == 0 || self.rate == 0 {
            self.last_micros = self.last_micros.max(now_micros);
            return;
        }
        let credit = u128::from(self.rate) * u128::from(elapsed) / 1_000_000;
        let credit64 = u64::try_from(credit).unwrap_or(u64::MAX);
        self.tokens = self.tokens.saturating_add(credit64).min(self.burst);
        if self.tokens == self.burst {
            self.last_micros = now_micros;
        } else {
            // Advance only by the microseconds actually converted to
            // tokens, carrying the fractional remainder.
            let used = u64::try_from(credit * 1_000_000 / u128::from(self.rate).max(1))
                .unwrap_or(elapsed);
            self.last_micros = self.last_micros.saturating_add(used.min(elapsed));
        }
    }

    /// Takes `cost` tokens if available at `now_micros`. A burst that
    /// lands exactly on the remaining balance is admitted (`>=`, not
    /// `>`), draining the bucket to zero.
    pub fn try_take(&mut self, cost: u64, now_micros: u64) -> bool {
        self.refill(now_micros);
        if self.tokens >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Returns `n` tokens to the bucket (used when a composite
    /// admission decision takes from one bucket, then a sibling bucket
    /// vetoes — the two must throttle as one decision).
    pub fn refund(&mut self, n: u64) {
        self.tokens = self.tokens.saturating_add(n).min(self.burst);
    }

    /// Tokens currently available (after refilling to `now_micros`).
    pub fn available(&mut self, now_micros: u64) -> u64 {
        self.refill(now_micros);
        self.tokens
    }
}

/// Admission, quota, and QoS policy for one tenant.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Concurrent sessions admitted before [`AdmitCode::SessionLimit`]
    /// (crate::protocol::AdmitCode::SessionLimit).
    pub max_sessions: usize,
    /// Ingest byte quota, bytes/second (payload bytes off the wire).
    pub byte_rate: u64,
    /// Byte-bucket burst capacity.
    pub byte_burst: u64,
    /// Frame quota, frames/second.
    pub frame_rate: u64,
    /// Frame-bucket burst capacity.
    pub frame_burst: u64,
    /// What the tenant's delivery queue does when the pipeline lags:
    /// the per-tenant QoS class. `Block` holds the tenant's own
    /// sessions, `DropOldest` trades its own frames for freshness,
    /// `Degrade` blocks and raises a pressure signal the capture side
    /// can react to. Other tenants are unaffected either way.
    pub backpressure: BackpressureMode,
    /// Capacity of the tenant's delivery queue, in frames.
    pub queue_capacity: usize,
    /// Declarative delivery SLO. When set, the server tracks windowed
    /// burn rate against it and fires the flight recorder on breach.
    pub slo: Option<SloConfig>,
}

impl TenantConfig {
    /// A permissive config: many sessions, effectively-unbounded
    /// quotas, blocking (lossless) QoS.
    pub fn unlimited() -> Self {
        TenantConfig {
            max_sessions: usize::MAX,
            byte_rate: u64::MAX / 2,
            byte_burst: u64::MAX / 2,
            frame_rate: u64::MAX / 2,
            frame_burst: u64::MAX / 2,
            backpressure: BackpressureMode::Block,
            queue_capacity: 1024,
            slo: None,
        }
    }

    /// Sets the session limit.
    pub fn with_max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n;
        self
    }

    /// Sets the byte quota (rate per second and burst).
    pub fn with_byte_quota(mut self, rate: u64, burst: u64) -> Self {
        self.byte_rate = rate;
        self.byte_burst = burst;
        self
    }

    /// Sets the frame quota (rate per second and burst).
    pub fn with_frame_quota(mut self, rate: u64, burst: u64) -> Self {
        self.frame_rate = rate;
        self.frame_burst = burst;
        self
    }

    /// Sets the QoS class and delivery-queue capacity.
    pub fn with_qos(mut self, mode: BackpressureMode, queue_capacity: usize) -> Self {
        self.backpressure = mode;
        self.queue_capacity = queue_capacity.max(1);
        self
    }

    /// Declares a delivery SLO for the tenant.
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = Some(slo);
        self
    }
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig::unlimited()
    }
}

/// Mutable accounting the server keeps per tenant.
#[derive(Debug)]
pub(crate) struct TenantAccounting {
    pub(crate) sessions_active: usize,
    pub(crate) byte_bucket: TokenBucket,
    pub(crate) frame_bucket: TokenBucket,
    pub(crate) section: TenantSection,
}

impl TenantAccounting {
    pub(crate) fn new(name: &str, cfg: &TenantConfig, now_micros: u64) -> Self {
        TenantAccounting {
            sessions_active: 0,
            byte_bucket: TokenBucket::new(cfg.byte_rate, cfg.byte_burst, now_micros),
            frame_bucket: TokenBucket::new(cfg.frame_rate, cfg.frame_burst, now_micros),
            section: TenantSection { tenant: name.to_string(), ..TenantSection::default() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_starts_full_and_drains() {
        let mut b = TokenBucket::new(10, 5, 0);
        assert!(b.try_take(5, 0), "burst exactly on the limit is admitted");
        assert!(!b.try_take(1, 0), "empty bucket refuses");
    }

    #[test]
    fn bucket_refills_at_rate() {
        let mut b = TokenBucket::new(10, 100, 0);
        assert!(b.try_take(100, 0));
        // 10 tokens/s → one token per 100_000 µs.
        assert!(!b.try_take(1, 50_000), "half a token is not a token");
        assert!(b.try_take(1, 100_000));
        assert!(b.try_take(4, 600_000), "4 more tokens by 0.6 s (0.1 spent)");
    }

    #[test]
    fn fractional_refill_is_not_rounded_away() {
        let mut b = TokenBucket::new(3, 10, 0);
        assert!(b.try_take(10, 0));
        // 3 tokens/s: polling every 100 µs for a second must still
        // credit 3 tokens, even though each poll credits < 1 token.
        let mut got = 0u64;
        for t in 1..=10_000u64 {
            if b.try_take(1, t * 100) {
                got += 1;
            }
        }
        assert_eq!(got, 3, "fractional credits accumulate");
    }

    #[test]
    fn zero_quota_never_admits() {
        let mut b = TokenBucket::new(0, 0, 0);
        assert!(!b.try_take(1, 0));
        assert!(!b.try_take(1, 10_000_000));
        assert!(b.try_take(0, 0), "zero-cost take on empty bucket is vacuous");
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut b = TokenBucket::new(1_000, 50, 0);
        assert_eq!(b.available(10_000_000), 50, "idle bucket caps at burst");
    }
}

//! # rpr-serve
//!
//! The multi-tenant ingestion service: thousands of camera sessions
//! stream `.rpr` containers over a length-framed protocol into one
//! event-loop server, which decodes them incrementally and delivers
//! validated frames onto the staged stream executor — with per-tenant
//! admission control, token-bucket quotas, and QoS-aware backpressure
//! so one misbehaving tenant throttles itself instead of its
//! neighbors.
//!
//! The paper's encoding shrinks each camera's traffic; this crate is
//! where that pays off at fleet scale, multiplexing many rhythmic
//! streams into shared compute (the multi-camera service shape of the
//! quad-camera FPGA and time-shared-runtime follow-ups). Module map:
//!
//! - [`protocol`] — the hello/data/bye session framing (untrusted
//!   parse surface, panic-free by lint).
//! - [`session`] — one camera session's state machine around
//!   [`rpr_wire::StreamDecoder`].
//! - [`transport`] — non-blocking [`Conn`] endpoints: in-memory pairs
//!   that scale to 100k sessions, plus TCP.
//! - [`tenant`] — [`TenantConfig`] policy and [`TokenBucket`] quotas.
//! - [`server`] — the [`Server`] event loop and [`Delivered`] frames.
//! - [`bridge`] — demultiplexing delivered frames into per-camera
//!   [`rpr_stream`] pipelines on a [`rpr_stream::StreamPool`].
//! - [`client`] — scripted camera clients for tests and load
//!   generation.
//! - [`clock`] — injectable time ([`ManualClock`] for deterministic
//!   runs, [`SystemClock`] for wall-clock serving).
//!
//! ## Example
//!
//! ```
//! use rpr_core::{EncMask, EncodedFrame, FrameMetadata, PixelStatus};
//! use rpr_serve::{session_script, ManualClock, ScriptedClient, Server, TenantConfig};
//! use std::sync::Arc;
//!
//! let mut mask = EncMask::new(8, 4);
//! mask.set(1, 1, PixelStatus::Regional);
//! let frame = EncodedFrame::new(8, 4, 0, vec![9], FrameMetadata::from_mask(mask));
//! let container = rpr_wire::write_container(std::slice::from_ref(&frame)).unwrap();
//!
//! let clock = Arc::new(ManualClock::new());
//! let mut server = Server::new(clock);
//! server.add_tenant("acme", TenantConfig::unlimited());
//!
//! let listener = server.listener();
//! let script = session_script("acme", 1, &container, 512, true);
//! let mut cam = ScriptedClient::connect(&listener, 1 << 16, script);
//!
//! let queue = server.tenant_queue("acme").unwrap();
//! while !server.is_idle() || cam.remaining() > 0 {
//!     cam.flush();
//!     server.step();
//! }
//! let delivered = queue.try_pop().expect("one frame served");
//! assert_eq!(delivered.frame, frame);
//! assert_eq!(&*delivered.tenant, "acme");
//! ```

#![deny(missing_docs)]

pub mod bridge;
pub mod client;
pub mod clock;
mod error;
pub mod protocol;
pub mod server;
pub mod session;
pub mod tenant;
pub mod transport;

pub use bridge::TenantBridge;
pub use client::{session_script, ScrapeClient, ScriptedClient};
pub use clock::{Clock, ManualClock, SystemClock};
pub use error::{Result, ServeError};
pub use protocol::{AdmitCode, Hello, MAX_MSG_LEN, MAX_TENANT_LEN, PROTOCOL_VERSION};
pub use rpr_trace::SloConfig;
pub use server::{Delivered, Server, ServerStats, StepStats};
pub use session::{Session, SessionEnd, SessionPhase};
pub use tenant::{TenantConfig, TokenBucket};
pub use transport::{mem_pair, Conn, ConnRead, MemConn, MemListener, TcpConn};

//! Typed failure modes of the serving layer.

use rpr_wire::WireError;
use std::fmt;

use crate::protocol::AdmitCode;

/// Everything that can go wrong between a connection arriving and its
/// frames reaching a pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The session framing was malformed (bad hello, unknown message
    /// kind, forged lengths).
    Protocol {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// The `.rpr` byte stream inside the session was malformed; carries
    /// the wire layer's typed error (including
    /// [`WireError::TruncatedStream`] for torn final chunks).
    Wire(WireError),
    /// The server refused the session at admission.
    Rejected(AdmitCode),
    /// The underlying transport failed.
    Io {
        /// Stringified cause (kept as text so the error stays
        /// `Clone + PartialEq`).
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Protocol { reason } => write!(f, "protocol error: {reason}"),
            ServeError::Wire(e) => write!(f, "wire error: {e}"),
            ServeError::Rejected(code) => write!(f, "session rejected: {code:?}"),
            ServeError::Io { reason } => write!(f, "transport error: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io { reason: e.to_string() }
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;

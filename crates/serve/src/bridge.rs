//! Demultiplexing delivered frames into per-camera pipelines.
//!
//! The server delivers one interleaved stream of [`Delivered`] frames
//! per tenant; pipelines want one ordered stream per *camera*. A
//! [`TenantBridge`] sits between: a demux thread pops the tenant
//! queue, routes each frame to its camera's
//! [`channel_source`](rpr_stream::channel_source) channel, and — on
//! first sight of a camera — invokes the caller's factory to stand up
//! a pipeline for it (typically by submitting a
//! [`run_stream`](rpr_stream::run_stream) job to a
//! [`StreamPool`](rpr_stream::StreamPool)). When the tenant queue
//! closes and drains, every camera channel is closed, so pipelines
//! finish deterministically.

use rpr_core::EncodedFrame;
use rpr_stream::{channel_source, BackpressureMode, ChannelSource, SourceHandle, StageQueue};
use rpr_trace::TenantLive;
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::clock::Clock;
use crate::server::Delivered;

/// Routes one tenant's delivered frames into per-camera channels.
pub struct TenantBridge {
    thread: Option<std::thread::JoinHandle<u64>>,
}

impl TenantBridge {
    /// Starts the demux thread over `queue` (the tenant's delivery
    /// queue from [`Server::tenant_queue`](crate::Server::tenant_queue)).
    /// `on_camera` runs once per newly-seen camera id with the
    /// pipeline-side [`ChannelSource`]; per-camera channels hold
    /// `capacity` frames under `mode`.
    pub fn start<F>(
        queue: Arc<StageQueue<Delivered>>,
        capacity: usize,
        mode: BackpressureMode,
        on_camera: F,
    ) -> Self
    where
        F: FnMut(u64, ChannelSource<EncodedFrame>) + Send + 'static,
    {
        Self::start_inner(queue, capacity, mode, None, on_camera)
    }

    /// [`TenantBridge::start`] with live telemetry: each routed frame
    /// records its ingest→routed latency (read from `clock` against the
    /// frame's [`FrameCtx::ingest_micros`](rpr_trace::FrameCtx)) into
    /// the tenant's [`TenantLive`] — feeding the delivery histogram and
    /// the SLO burn-rate tracker while the run is in flight.
    pub fn start_with_live<F>(
        queue: Arc<StageQueue<Delivered>>,
        capacity: usize,
        mode: BackpressureMode,
        live: Arc<TenantLive>,
        clock: Arc<dyn Clock>,
        on_camera: F,
    ) -> Self
    where
        F: FnMut(u64, ChannelSource<EncodedFrame>) + Send + 'static,
    {
        Self::start_inner(queue, capacity, mode, Some((live, clock)), on_camera)
    }

    fn start_inner<F>(
        queue: Arc<StageQueue<Delivered>>,
        capacity: usize,
        mode: BackpressureMode,
        telemetry: Option<(Arc<TenantLive>, Arc<dyn Clock>)>,
        mut on_camera: F,
    ) -> Self
    where
        F: FnMut(u64, ChannelSource<EncodedFrame>) + Send + 'static,
    {
        let thread = std::thread::Builder::new()
            .name("rpr-bridge".to_string())
            .spawn(move || {
                rpr_trace::thread_label("rpr-bridge");
                let mut cameras: BTreeMap<u64, SourceHandle<EncodedFrame>> = BTreeMap::new();
                let mut routed = 0u64;
                while let Some(d) = queue.pop() {
                    let handle = cameras.entry(d.camera_id).or_insert_with(|| {
                        let (tx, rx) = channel_source(
                            &format!("camera-{}", d.camera_id),
                            capacity,
                            mode,
                        );
                        on_camera(d.camera_id, rx);
                        tx
                    });
                    let ctx = d.ctx;
                    if handle.push(d.frame) {
                        routed += 1;
                        if let Some((live, clock)) = &telemetry {
                            let now = clock.now_micros();
                            let latency = now.saturating_sub(ctx.ingest_micros);
                            live.record_delivery(now, latency);
                            rpr_trace::counter_for_ctx(
                                rpr_trace::names::SERVE_E2E_US,
                                "serve",
                                ctx,
                                latency as f64,
                            );
                        }
                    } else if let Some((live, clock)) = &telemetry {
                        live.record_drop(clock.now_micros());
                    }
                }
                for handle in cameras.values() {
                    handle.close();
                }
                routed
            })
            .expect("spawn bridge thread");
        TenantBridge { thread: Some(thread) }
    }

    /// Waits for the tenant queue to close and drain, returning the
    /// frames routed. (Close the queue via
    /// [`Server::close_tenant_queues`](crate::Server::close_tenant_queues)
    /// once ingest is idle.)
    pub fn join(mut self) -> u64 {
        self.thread.take().map(|t| t.join().unwrap_or(0)).unwrap_or(0)
    }
}

impl Drop for TenantBridge {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use rpr_core::{EncMask, FrameMetadata, PixelStatus};

    fn frame(camera: u64, idx: u64) -> Delivered {
        let mut mask = EncMask::new(8, 4);
        mask.set(1, 1, PixelStatus::Regional);
        Delivered {
            tenant: Arc::from("acme"),
            camera_id: camera,
            session_id: camera,
            frame: EncodedFrame::new(8, 4, idx, vec![7], FrameMetadata::from_mask(mask)),
            accepted_micros: 0,
            ctx: rpr_trace::FrameCtx {
                tenant: 0,
                camera,
                session: camera,
                frame_seq: idx,
                ingest_micros: 0,
            },
        }
    }

    #[test]
    fn frames_route_to_per_camera_channels_in_order() {
        let queue = Arc::new(StageQueue::new("tenant-acme", 64, BackpressureMode::Block));
        type SeenFrames = Vec<(u64, Vec<u64>)>;
        let seen: Arc<Mutex<SeenFrames>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let collectors = Arc::new(Mutex::new(Vec::new()));
        let collectors2 = Arc::clone(&collectors);

        let bridge = TenantBridge::start(
            Arc::clone(&queue),
            16,
            BackpressureMode::Block,
            move |camera, mut source| {
                seen2.lock().push((camera, Vec::new()));
                let seen3 = Arc::clone(&seen2);
                collectors2.lock().push(std::thread::spawn(move || {
                    use rpr_stream::FrameSource;
                    while let Some(f) = source.next_frame() {
                        let mut guard = seen3.lock();
                        if let Some(slot) = guard.iter_mut().find(|(c, _)| *c == camera) {
                            slot.1.push(f.frame_idx());
                        }
                    }
                }));
            },
        );

        for idx in 0..10u64 {
            for camera in [1u64, 2] {
                queue.push(frame(camera, idx));
            }
        }
        queue.close();
        assert_eq!(bridge.join(), 20);
        for t in collectors.lock().drain(..) {
            t.join().expect("collector");
        }
        let seen = seen.lock();
        assert_eq!(seen.len(), 2, "one channel per camera");
        for (_, idxs) in seen.iter() {
            assert_eq!(*idxs, (0..10u64).collect::<Vec<_>>(), "per-camera order kept");
        }
    }
}

//! Non-blocking byte transports the event loop multiplexes.
//!
//! The server never blocks on I/O: it polls every session's [`Conn`]
//! for whatever bytes are ready and moves on. Two transports implement
//! the contract:
//!
//! - [`MemConn`] — a pair of bounded in-memory rings. This is the
//!   load-bearing transport: it costs two `VecDeque`s per session, so
//!   a single process can host 100k sessions for load generation and
//!   deterministic tests, and its bounded write side gives *clients*
//!   real backpressure when the server stops reading.
//! - [`TcpConn`] — a thin wrapper over a non-blocking
//!   `std::net::TcpStream` for serving real sockets.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::Arc;

/// Outcome of a non-blocking read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnRead {
    /// `n` bytes were copied into the buffer.
    Data(usize),
    /// Nothing available right now; the peer is still connected.
    Empty,
    /// The peer closed its sending side and everything is drained.
    Closed,
}

/// A non-blocking, bidirectional byte pipe.
pub trait Conn: Send {
    /// Reads whatever is ready into `buf` without blocking.
    fn read_ready(&mut self, buf: &mut [u8]) -> ConnRead;
    /// Writes as much of `bytes` as fits without blocking, returning
    /// the number accepted (0 when the peer's buffer is full or this
    /// side already closed).
    fn write_ready(&mut self, bytes: &[u8]) -> usize;
    /// Closes this side's *sending* direction (TCP-style half-close):
    /// the peer drains what was written, then sees
    /// [`ConnRead::Closed`] — but can still write back, and this side
    /// can still read. A client may therefore close after its last
    /// byte and still receive the server's verdict.
    fn close(&mut self);
    /// True while this side believes the connection is open.
    fn is_open(&self) -> bool;
}

/// One direction of an in-memory connection.
#[derive(Debug)]
struct Pipe {
    buf: Mutex<VecDeque<u8>>,
    capacity: usize,
}

#[derive(Debug)]
struct PipeState {
    a_to_b: Pipe,
    b_to_a: Pipe,
    /// Closed flags for side A and side B.
    closed: Mutex<(bool, bool)>,
}

/// One endpoint of an in-memory connection pair.
#[derive(Debug)]
pub struct MemConn {
    state: Arc<PipeState>,
    /// True for the endpoint created first ("A", conventionally the
    /// client side of [`MemListener::connect`]).
    is_a: bool,
}

/// Creates a connected pair of in-memory endpoints whose per-direction
/// buffers hold `capacity` bytes. The first endpoint is conventionally
/// the client.
pub fn mem_pair(capacity: usize) -> (MemConn, MemConn) {
    let state = Arc::new(PipeState {
        a_to_b: Pipe { buf: Mutex::new(VecDeque::new()), capacity: capacity.max(1) },
        b_to_a: Pipe { buf: Mutex::new(VecDeque::new()), capacity: capacity.max(1) },
        closed: Mutex::new((false, false)),
    });
    (MemConn { state: Arc::clone(&state), is_a: true }, MemConn { state, is_a: false })
}

impl MemConn {
    fn inbound(&self) -> &Pipe {
        if self.is_a {
            &self.state.b_to_a
        } else {
            &self.state.a_to_b
        }
    }

    fn outbound(&self) -> &Pipe {
        if self.is_a {
            &self.state.a_to_b
        } else {
            &self.state.b_to_a
        }
    }

    fn peer_closed(&self) -> bool {
        let c = self.state.closed.lock();
        if self.is_a {
            c.1
        } else {
            c.0
        }
    }
}

impl Conn for MemConn {
    fn read_ready(&mut self, buf: &mut [u8]) -> ConnRead {
        let mut q = self.inbound().buf.lock();
        if q.is_empty() {
            drop(q);
            return if self.peer_closed() { ConnRead::Closed } else { ConnRead::Empty };
        }
        let n = q.len().min(buf.len());
        for (slot, b) in buf.iter_mut().zip(q.drain(..n)) {
            *slot = b;
        }
        ConnRead::Data(n)
    }

    fn write_ready(&mut self, bytes: &[u8]) -> usize {
        if !self.is_open() {
            return 0;
        }
        let out = self.outbound();
        let mut q = out.buf.lock();
        let room = out.capacity.saturating_sub(q.len());
        let n = room.min(bytes.len());
        q.extend(bytes.iter().take(n).copied());
        n
    }

    fn close(&mut self) {
        let mut c = self.state.closed.lock();
        if self.is_a {
            c.0 = true;
        } else {
            c.1 = true;
        }
    }

    fn is_open(&self) -> bool {
        let c = self.state.closed.lock();
        if self.is_a {
            !c.0
        } else {
            !c.1
        }
    }
}

/// Accept queue for in-memory connections: clients call
/// [`MemListener::connect`], the server drains [`MemListener::accept`].
/// Cloning shares the queue.
#[derive(Debug, Clone, Default)]
pub struct MemListener {
    pending: Arc<Mutex<VecDeque<MemConn>>>,
}

impl MemListener {
    /// An empty listener.
    pub fn new() -> Self {
        MemListener::default()
    }

    /// Opens a connection, returning the client endpoint; the server
    /// endpoint waits in the accept queue.
    pub fn connect(&self, capacity: usize) -> MemConn {
        let (client, server) = mem_pair(capacity);
        self.pending.lock().push_back(server);
        client
    }

    /// Takes the next pending server endpoint, if any.
    pub fn accept(&self) -> Option<MemConn> {
        self.pending.lock().pop_front()
    }

    /// Connections waiting to be accepted.
    pub fn backlog(&self) -> usize {
        self.pending.lock().len()
    }
}

/// A non-blocking TCP connection.
#[derive(Debug)]
pub struct TcpConn {
    stream: std::net::TcpStream,
    open: bool,
}

impl TcpConn {
    /// Wraps a stream, switching it to non-blocking mode.
    ///
    /// # Errors
    ///
    /// Propagates the `set_nonblocking` failure.
    pub fn new(stream: std::net::TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        Ok(TcpConn { stream, open: true })
    }
}

impl Conn for TcpConn {
    fn read_ready(&mut self, buf: &mut [u8]) -> ConnRead {
        match self.stream.read(buf) {
            Ok(0) => ConnRead::Closed,
            Ok(n) => ConnRead::Data(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => ConnRead::Empty,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => ConnRead::Empty,
            Err(_) => ConnRead::Closed,
        }
    }

    fn write_ready(&mut self, bytes: &[u8]) -> usize {
        match self.stream.write(bytes) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => 0,
            Err(_) => {
                self.open = false;
                0
            }
        }
    }

    fn close(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        self.open = false;
    }

    fn is_open(&self) -> bool {
        self.open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pair_moves_bytes_both_ways() {
        let (mut client, mut server) = mem_pair(64);
        assert_eq!(client.write_ready(b"ping"), 4);
        let mut buf = [0u8; 16];
        assert_eq!(server.read_ready(&mut buf), ConnRead::Data(4));
        assert_eq!(&buf[..4], b"ping");
        assert_eq!(server.write_ready(b"pong!"), 5);
        assert_eq!(client.read_ready(&mut buf), ConnRead::Data(5));
        assert_eq!(&buf[..5], b"pong!");
        assert_eq!(client.read_ready(&mut buf), ConnRead::Empty);
    }

    #[test]
    fn bounded_ring_backpressures_the_writer() {
        let (mut client, mut server) = mem_pair(8);
        assert_eq!(client.write_ready(b"0123456789"), 8, "only capacity accepted");
        assert_eq!(client.write_ready(b"x"), 0, "full ring accepts nothing");
        let mut buf = [0u8; 4];
        assert_eq!(server.read_ready(&mut buf), ConnRead::Data(4));
        assert_eq!(client.write_ready(b"x"), 1, "space freed by the reader");
    }

    #[test]
    fn close_is_a_half_close() {
        let (mut client, mut server) = mem_pair(64);
        client.write_ready(b"tail");
        client.close();
        assert!(!client.is_open());
        assert_eq!(client.write_ready(b"x"), 0, "own sending side is sealed");
        let mut buf = [0u8; 16];
        assert_eq!(server.read_ready(&mut buf), ConnRead::Data(4), "drains first");
        assert_eq!(server.read_ready(&mut buf), ConnRead::Closed);
        // The reverse direction survives: the server can still answer
        // and the half-closed client still reads it.
        assert_eq!(server.write_ready(b"reply"), 5);
        assert_eq!(client.read_ready(&mut buf), ConnRead::Data(5));
        assert_eq!(&buf[..5], b"reply");
    }

    #[test]
    fn listener_queues_connections_in_order() {
        let listener = MemListener::new();
        let mut c1 = listener.connect(32);
        let _c2 = listener.connect(32);
        assert_eq!(listener.backlog(), 2);
        c1.write_ready(b"first");
        let mut s1 = listener.accept().expect("first pending");
        let mut buf = [0u8; 8];
        assert_eq!(s1.read_ready(&mut buf), ConnRead::Data(5));
        assert!(listener.accept().is_some());
        assert!(listener.accept().is_none());
    }

    #[test]
    fn tcp_conn_roundtrips_nonblocking() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::net::TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        let mut client = TcpConn::new(client).expect("client nonblocking");
        let mut server = TcpConn::new(server).expect("server nonblocking");

        let mut buf = [0u8; 16];
        assert_eq!(server.read_ready(&mut buf), ConnRead::Empty, "nothing yet");
        assert_eq!(client.write_ready(b"hello"), 5);
        // Give the kernel a moment on slow CI.
        let mut got = ConnRead::Empty;
        for _ in 0..100 {
            got = server.read_ready(&mut buf);
            if got != ConnRead::Empty {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, ConnRead::Data(5));
        assert_eq!(&buf[..5], b"hello");
        client.close();
        let mut end = ConnRead::Empty;
        for _ in 0..100 {
            end = server.read_ready(&mut buf);
            if end == ConnRead::Closed {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(end, ConnRead::Closed);
    }
}

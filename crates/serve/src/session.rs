//! One camera session: connection, protocol state, container decoder.
//!
//! The session is the server's unit of multiplexing. It owns the
//! transport endpoint, the unparsed protocol bytes, and the
//! incremental [`StreamDecoder`] for the container the client is
//! streaming. The state machine is small and strictly forward:
//!
//! ```text
//! AwaitHello --hello ok, admitted--> Ingest --bye / close--> Closed
//!      \--hello bad or rejected--> Closed
//! ```
//!
//! Like [`protocol`](crate::protocol), this module parses untrusted
//! bytes and is covered by the rpr-check panic-surface lint: every
//! malformation is a typed error carried in
//! [`Session::take_error`], never a panic.

use rpr_core::EncodedFrame;
use rpr_wire::StreamDecoder;

use crate::error::{Result, ServeError};
use crate::protocol::{try_parse_hello, try_parse_msg, AdmitCode, Hello, Msg};
use crate::transport::{Conn, ConnRead};

/// Where the session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// Waiting for (the rest of) the hello.
    AwaitHello,
    /// Admitted; streaming container bytes.
    Ingest,
    /// Finished — gracefully or not. The slot can be reaped.
    Closed,
}

/// Compact the inbox once this many consumed bytes accumulate.
const INBOX_COMPACT: usize = 64 * 1024;

/// How the session ended, for the server's books.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEnd {
    /// Bye received (or container finished) and the decoder closed
    /// cleanly; carries the frames the session delivered.
    Clean(u64),
    /// The connection vanished at a chunk boundary before the
    /// container finished: scan-style recovery of `n` frames.
    Recovered(u64),
    /// The session died with a typed error (protocol or wire).
    Failed(ServeError),
}

/// One live camera session.
pub struct Session {
    /// Server-assigned session id.
    pub id: u64,
    conn: Box<dyn Conn>,
    phase: SessionPhase,
    inbox: Vec<u8>,
    inbox_pos: usize,
    decoder: StreamDecoder,
    /// Tenant this session billed to (set at admission).
    pub tenant: Option<String>,
    /// Camera id from the hello.
    pub camera_id: u64,
    bye_seen: bool,
    peer_gone: bool,
    container_done: bool,
    error: Option<ServeError>,
    frames_returned: u64,
    metrics_requested: bool,
    outbox: Vec<u8>,
    outbox_pos: usize,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("phase", &self.phase)
            .field("tenant", &self.tenant)
            .field("camera_id", &self.camera_id)
            .field("buffered", &(self.inbox.len().saturating_sub(self.inbox_pos)))
            .finish()
    }
}

impl Session {
    /// Wraps an accepted connection.
    pub fn new(id: u64, conn: Box<dyn Conn>) -> Self {
        Session {
            id,
            conn,
            phase: SessionPhase::AwaitHello,
            inbox: Vec::new(),
            inbox_pos: 0,
            decoder: StreamDecoder::new(),
            tenant: None,
            camera_id: 0,
            bye_seen: false,
            peer_gone: false,
            container_done: false,
            error: None,
            frames_returned: 0,
            metrics_requested: false,
            outbox: Vec::new(),
            outbox_pos: 0,
        }
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> SessionPhase {
        self.phase
    }

    /// True once the peer can send nothing further: connection gone
    /// (any unparsed tail is then final — see [`Session::end`]), or
    /// bye/container-finish with the inbox fully parsed.
    pub fn input_exhausted(&self) -> bool {
        self.peer_gone
            || ((self.bye_seen || self.container_done) && self.inbox_pos >= self.inbox.len())
    }

    /// The typed error that ended the session, if any.
    pub fn take_error(&mut self) -> Option<ServeError> {
        self.error.take()
    }

    /// Frames [`Session::poll_frame`] has returned so far: the session's
    /// per-frame sequence counter (the frame just returned carries
    /// sequence `frames_returned() - 1`).
    pub fn frames_returned(&self) -> u64 {
        self.frames_returned
    }

    /// Takes the pending metrics-scrape request flag, if the client has
    /// asked for one since the last call.
    pub fn take_metrics_request(&mut self) -> bool {
        std::mem::take(&mut self.metrics_requested)
    }

    /// Queues server→client bytes (e.g. a metrics response) for
    /// [`Session::pump_write`] to drain without blocking the loop.
    pub fn queue_response(&mut self, bytes: &[u8]) {
        if self.peer_gone || self.phase == SessionPhase::Closed {
            return;
        }
        self.outbox.extend_from_slice(bytes);
    }

    /// True when nothing queued toward the client remains unsent (a
    /// vanished peer counts as drained — those bytes have no reader).
    pub fn outbox_drained(&self) -> bool {
        self.peer_gone || self.outbox_pos >= self.outbox.len()
    }

    /// Pushes as much queued response data as the transport accepts,
    /// returning the bytes moved.
    pub fn pump_write(&mut self) -> usize {
        if self.peer_gone || self.phase == SessionPhase::Closed {
            self.outbox.clear();
            self.outbox_pos = 0;
            return 0;
        }
        let pending = self.outbox.get(self.outbox_pos..).unwrap_or(&[]);
        if pending.is_empty() {
            return 0;
        }
        let n = self.conn.write_ready(pending);
        self.outbox_pos = self.outbox_pos.saturating_add(n).min(self.outbox.len());
        if self.outbox_pos >= self.outbox.len() {
            self.outbox.clear();
            self.outbox_pos = 0;
        }
        n
    }

    fn unread(&self) -> &[u8] {
        self.inbox.get(self.inbox_pos..).unwrap_or(&[])
    }

    fn consume(&mut self, n: usize) {
        self.inbox_pos = self.inbox_pos.saturating_add(n).min(self.inbox.len());
        if self.inbox_pos >= INBOX_COMPACT || self.inbox_pos * 2 >= self.inbox.len().max(1) {
            self.inbox.drain(..self.inbox_pos);
            self.inbox_pos = 0;
        }
    }

    /// Pulls up to `max` ready bytes off the connection into the
    /// inbox. Returns the bytes read; flips `peer_gone` on EOF.
    pub fn pump_read(&mut self, max: usize) -> usize {
        if self.peer_gone || self.phase == SessionPhase::Closed {
            return 0;
        }
        let mut buf = [0u8; 4096];
        let mut total = 0usize;
        while total < max {
            let want = buf.len().min(max - total);
            let Some(slice) = buf.get_mut(..want) else { break };
            match self.conn.read_ready(slice) {
                ConnRead::Data(n) => {
                    self.inbox.extend_from_slice(slice.get(..n).unwrap_or(&[]));
                    total += n;
                    if n < want {
                        break;
                    }
                }
                ConnRead::Empty => break,
                ConnRead::Closed => {
                    self.peer_gone = true;
                    break;
                }
            }
        }
        total
    }

    /// Attempts to complete the hello. `Ok(Some(h))` hands the parsed
    /// hello to the server for the admission decision; the session
    /// stays in `AwaitHello` until [`Session::admit`] or
    /// [`Session::reject`] is called.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] for a malformed hello; the caller
    /// should reply [`AdmitCode::BadHello`] and close.
    pub fn poll_hello(&mut self) -> Result<Option<Hello>> {
        if self.phase != SessionPhase::AwaitHello {
            return Ok(None);
        }
        match try_parse_hello(self.unread()) {
            Ok(Some((hello, used))) => {
                self.consume(used);
                Ok(Some(hello))
            }
            Ok(None) => {
                if self.peer_gone {
                    return Err(ServeError::Protocol {
                        reason: "connection closed mid-hello".to_string(),
                    });
                }
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Marks the session admitted under `tenant`, replying
    /// [`AdmitCode::Accepted`] to the client.
    pub fn admit(&mut self, hello: &Hello) {
        self.tenant = Some(hello.tenant.clone());
        self.camera_id = hello.camera_id;
        self.phase = SessionPhase::Ingest;
        let _ = self.conn.write_ready(&[AdmitCode::Accepted as u8]);
    }

    /// Replies a rejection code and closes the session.
    pub fn reject(&mut self, code: AdmitCode) {
        let _ = self.conn.write_ready(&[code as u8]);
        self.conn.close();
        self.phase = SessionPhase::Closed;
        self.error = Some(ServeError::Rejected(code));
    }

    /// Advances protocol parsing and container decoding, returning the
    /// next decoded frame if one completed. `Ok(None)` means no
    /// complete frame is buffered right now.
    ///
    /// # Errors
    ///
    /// Protocol framing errors and wire-format errors; the session is
    /// closed and the error is also retained for
    /// [`Session::take_error`].
    pub fn poll_frame(&mut self) -> Result<Option<EncodedFrame>> {
        if self.phase != SessionPhase::Ingest {
            return Ok(None);
        }
        loop {
            // Drain any frame the decoder already completed.
            match self.decoder.next_event() {
                Ok(Some(rpr_wire::StreamEvent::Frame(frame))) => {
                    self.frames_returned = self.frames_returned.saturating_add(1);
                    return Ok(Some(frame));
                }
                Ok(Some(rpr_wire::StreamEvent::Finished { .. })) => {
                    self.container_done = true;
                }
                Ok(None) => {}
                Err(e) => return self.fail(e.into()),
            }
            // Feed it the next protocol message. (Borrow the inbox
            // field directly so the decoder — a disjoint field — can
            // be fed the borrowed payload without a conflict.)
            let unread = self.inbox.get(self.inbox_pos..).unwrap_or(&[]);
            match try_parse_msg(unread) {
                Ok(Some((Msg::Data(payload), used))) => {
                    if self.bye_seen || self.container_done {
                        return self.fail(ServeError::Protocol {
                            reason: "data after end of container".to_string(),
                        });
                    }
                    self.decoder.push(payload);
                    self.consume(used);
                }
                Ok(Some((Msg::Bye, used))) => {
                    self.consume(used);
                    self.bye_seen = true;
                    return Ok(None);
                }
                Ok(Some((Msg::Metrics(payload), used))) => {
                    let extra = payload.len();
                    if extra != 0 {
                        return self.fail(ServeError::Protocol {
                            reason: format!("metrics request carries {extra} payload bytes"),
                        });
                    }
                    self.consume(used);
                    self.metrics_requested = true;
                }
                Ok(None) => return Ok(None),
                Err(e) => return self.fail(e),
            }
        }
    }

    fn fail(&mut self, e: ServeError) -> Result<Option<EncodedFrame>> {
        self.conn.close();
        self.phase = SessionPhase::Closed;
        self.error = Some(e.clone());
        Err(e)
    }

    /// Ends the session once its input is exhausted, applying the wire
    /// layer's end-of-stream judgment: a finished container or a cut
    /// at a clean chunk boundary is recovered; a torn final chunk (or
    /// a bye sent mid-structure) is the typed
    /// [`rpr_wire::WireError::TruncatedStream`].
    pub fn end(&mut self) -> SessionEnd {
        self.conn.close();
        self.phase = SessionPhase::Closed;
        if let Some(e) = self.error.clone() {
            return SessionEnd::Failed(e);
        }
        // A leftover unparseable tail means the peer vanished inside a
        // protocol message; that can never recover.
        let leftover = self.inbox.len().saturating_sub(self.inbox_pos);
        if leftover > 0 {
            let e = ServeError::Protocol {
                reason: format!("connection closed mid-message ({leftover} bytes unparsed)"),
            };
            self.error = Some(e.clone());
            return SessionEnd::Failed(e);
        }
        match self.decoder.finish() {
            Ok(frames) => {
                if self.decoder.is_finished() || self.bye_seen {
                    SessionEnd::Clean(frames)
                } else {
                    SessionEnd::Recovered(frames)
                }
            }
            Err(e) => {
                let e = ServeError::Wire(e);
                self.error = Some(e.clone());
                SessionEnd::Failed(e)
            }
        }
    }

    /// Frames the decoder has produced so far.
    pub fn frames_decoded(&self) -> u64 {
        self.decoder.frames()
    }

    /// Bytes pushed into the container decoder so far.
    pub fn container_bytes(&self) -> u64 {
        self.decoder.bytes_fed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_bye, encode_data, encode_hello};
    use crate::transport::mem_pair;
    use rpr_core::{EncMask, FrameMetadata, PixelStatus};
    use rpr_wire::write_container;

    fn frames(n: u64) -> Vec<EncodedFrame> {
        (0..n)
            .map(|i| {
                let mut mask = EncMask::new(16, 8);
                mask.set((i % 16) as u32, 2, PixelStatus::Regional);
                EncodedFrame::new(16, 8, i, vec![i as u8], FrameMetadata::from_mask(mask))
            })
            .collect()
    }

    fn pump_all(session: &mut Session) -> (Vec<EncodedFrame>, Option<ServeError>) {
        let mut out = Vec::new();
        loop {
            session.pump_read(usize::MAX);
            match session.poll_frame() {
                Ok(Some(f)) => out.push(f),
                Ok(None) => break,
                Err(e) => return (out, Some(e)),
            }
        }
        (out, None)
    }

    #[test]
    fn full_session_lifecycle_delivers_every_frame() {
        let (mut client, server_end) = mem_pair(1 << 20);
        let mut session = Session::new(1, Box::new(server_end));

        client.write_ready(&encode_hello("acme", 7));
        session.pump_read(usize::MAX);
        let hello = session.poll_hello().unwrap().expect("hello complete");
        assert_eq!(hello.tenant, "acme");
        session.admit(&hello);
        let mut code = [0u8; 1];
        assert_eq!(client.read_ready(&mut code), ConnRead::Data(1));
        assert_eq!(AdmitCode::from_byte(code[0]), Some(AdmitCode::Accepted));

        let sent = frames(5);
        let container = write_container(&sent).unwrap();
        for piece in container.chunks(100) {
            client.write_ready(&encode_data(piece));
        }
        client.write_ready(&encode_bye());

        let (got, err) = pump_all(&mut session);
        assert!(err.is_none());
        assert_eq!(got, sent);
        assert!(session.input_exhausted());
        assert_eq!(session.end(), SessionEnd::Clean(5));
    }

    #[test]
    fn torn_final_chunk_is_a_typed_failure() {
        let (mut client, server_end) = mem_pair(1 << 20);
        let mut session = Session::new(1, Box::new(server_end));
        client.write_ready(&encode_hello("acme", 7));
        session.pump_read(usize::MAX);
        let hello = session.poll_hello().unwrap().unwrap();
        session.admit(&hello);

        let container = write_container(&frames(3)).unwrap();
        // Cut mid-way through the container, inside a chunk.
        let cut = container.len() / 2;
        client.write_ready(&encode_data(&container[..cut]));
        client.close();

        let (_, err) = pump_all(&mut session);
        assert!(err.is_none(), "mid-stream cut only surfaces at end()");
        assert!(session.input_exhausted());
        match session.end() {
            SessionEnd::Failed(ServeError::Wire(
                rpr_wire::WireError::TruncatedStream { .. },
            )) => {}
            other => panic!("expected TruncatedStream, got {other:?}"),
        }
    }

    #[test]
    fn data_after_bye_is_a_protocol_error() {
        let (mut client, server_end) = mem_pair(1 << 20);
        let mut session = Session::new(1, Box::new(server_end));
        client.write_ready(&encode_hello("acme", 7));
        session.pump_read(usize::MAX);
        let hello = session.poll_hello().unwrap().unwrap();
        session.admit(&hello);
        client.write_ready(&encode_bye());
        client.write_ready(&encode_data(b"zombie"));
        let (_, err) = pump_all(&mut session);
        // First poll sees bye and stops; the zombie data errors next.
        let err = err.or_else(|| session.poll_frame().err());
        assert!(
            matches!(err, Some(ServeError::Protocol { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn metrics_request_sets_flag_and_response_drains_through_outbox() {
        use crate::protocol::{
            encode_metrics_request, encode_metrics_response, try_parse_msg, Msg,
        };
        let (mut client, server_end) = mem_pair(1 << 20);
        let mut session = Session::new(1, Box::new(server_end));
        client.write_ready(&encode_hello("acme", 7));
        session.pump_read(usize::MAX);
        let hello = session.poll_hello().unwrap().unwrap();
        session.admit(&hello);
        let mut code = [0u8; 1];
        assert_eq!(client.read_ready(&mut code), ConnRead::Data(1));

        client.write_ready(&encode_metrics_request());
        session.pump_read(usize::MAX);
        assert!(session.poll_frame().unwrap().is_none());
        assert!(session.take_metrics_request());
        assert!(!session.take_metrics_request(), "flag is one-shot");

        session.queue_response(&encode_metrics_response(b"page"));
        assert!(!session.outbox_drained());
        session.pump_write();
        assert!(session.outbox_drained());

        let mut buf = [0u8; 64];
        let ConnRead::Data(n) = client.read_ready(&mut buf) else {
            panic!("client should see the framed response");
        };
        let (msg, _) = try_parse_msg(buf.get(..n).unwrap()).unwrap().unwrap();
        assert_eq!(msg, Msg::Metrics(b"page".as_slice()));
    }

    #[test]
    fn poll_frame_counts_a_per_session_sequence() {
        let (mut client, server_end) = mem_pair(1 << 20);
        let mut session = Session::new(1, Box::new(server_end));
        client.write_ready(&encode_hello("acme", 7));
        session.pump_read(usize::MAX);
        let hello = session.poll_hello().unwrap().unwrap();
        session.admit(&hello);
        let container = write_container(&frames(4)).unwrap();
        client.write_ready(&encode_data(&container));
        client.write_ready(&encode_bye());
        let (got, err) = pump_all(&mut session);
        assert!(err.is_none());
        assert_eq!(got.len(), 4);
        assert_eq!(session.frames_returned(), 4);
    }

    #[test]
    fn rejection_reaches_the_client() {
        let (mut client, server_end) = mem_pair(1 << 20);
        let mut session = Session::new(1, Box::new(server_end));
        client.write_ready(&encode_hello("ghost", 1));
        session.pump_read(usize::MAX);
        let _ = session.poll_hello().unwrap().unwrap();
        session.reject(AdmitCode::UnknownTenant);
        let mut code = [0u8; 1];
        assert_eq!(client.read_ready(&mut code), ConnRead::Data(1));
        assert_eq!(AdmitCode::from_byte(code[0]), Some(AdmitCode::UnknownTenant));
        assert_eq!(session.phase(), SessionPhase::Closed);
    }
}

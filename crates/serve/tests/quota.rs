//! Tenant quota and admission edge cases, end to end through the
//! server: zero-quota tenants, bursts landing exactly on the
//! token-bucket limit, rapid session churn against the session cap,
//! and graceful-shutdown drain.

use rpr_core::{EncMask, EncodedFrame, FrameMetadata, PixelStatus};
use rpr_serve::{
    session_script, AdmitCode, ManualClock, ScriptedClient, Server, TenantConfig,
};
use rpr_stream::BackpressureMode;
use rpr_trace::TenantSection;
use std::sync::Arc;

fn frames(n: u64) -> Vec<EncodedFrame> {
    (0..n)
        .map(|i| {
            let mut mask = EncMask::new(16, 8);
            mask.set((i % 16) as u32, 2, PixelStatus::Regional);
            EncodedFrame::new(16, 8, i, vec![i as u8], FrameMetadata::from_mask(mask))
        })
        .collect()
}

fn container(n: u64) -> Vec<u8> {
    rpr_wire::write_container(&frames(n)).expect("write container")
}

/// Drives clients and server until idle, draining every tenant queue.
/// Returns frames popped per listed tenant.
fn drive(server: &mut Server, clients: &mut [ScriptedClient], tenants: &[&str]) -> Vec<u64> {
    let queues: Vec<_> =
        tenants.iter().map(|t| server.tenant_queue(t).expect("tenant queue")).collect();
    let mut popped = vec![0u64; queues.len()];
    for _ in 0..10_000 {
        for c in clients.iter_mut() {
            c.flush();
        }
        server.step();
        for (q, n) in queues.iter().zip(popped.iter_mut()) {
            while q.try_pop().is_some() {
                *n += 1;
            }
        }
        if server.is_idle() && clients.iter_mut().all(|c| c.done() || c.rejected()) {
            break;
        }
    }
    assert!(server.is_idle(), "server failed to drain");
    popped
}

fn section<'a>(sections: &'a [TenantSection], tenant: &str) -> &'a TenantSection {
    sections.iter().find(|s| s.tenant == tenant).expect("tenant section")
}

#[test]
fn zero_quota_tenant_is_throttled_not_served() {
    let mut server = Server::new(Arc::new(ManualClock::new()));
    server.add_tenant("freeloader", TenantConfig::unlimited().with_frame_quota(0, 0));
    let listener = server.listener();

    let script = session_script("freeloader", 1, &container(4), 256, true);
    let mut cam = ScriptedClient::connect(&listener, 1 << 16, script);
    let popped = drive(&mut server, std::slice::from_mut(&mut cam), &["freeloader"]);

    assert_eq!(popped, vec![0], "no frame may reach the queue");
    assert_eq!(cam.admit_code(), Some(AdmitCode::Accepted), "session itself is admitted");
    let sections = server.tenant_sections();
    let s = section(&sections, "freeloader");
    assert_eq!(s.frames_accepted, 0);
    assert_eq!(s.frames_dropped, 4);
    assert_eq!(s.quota_throttles, 4);
    assert_eq!(s.delivered_fraction, 1.0, "vacuous: nothing accepted, nothing owed");
    assert_eq!(server.stats().sessions_clean, 1, "throttling is not a session error");
}

#[test]
fn frame_burst_landing_exactly_on_the_limit_is_admitted() {
    // Burst of 6 frames, no refill: a 6-frame container drains the
    // bucket to zero with nothing throttled; the next frame is refused.
    let mut server = Server::new(Arc::new(ManualClock::new()));
    server.add_tenant("edge", TenantConfig::unlimited().with_frame_quota(0, 6));
    let listener = server.listener();

    let mut exact =
        ScriptedClient::connect(&listener, 1 << 16, session_script("edge", 1, &container(6), 256, true));
    let popped = drive(&mut server, std::slice::from_mut(&mut exact), &["edge"]);
    assert_eq!(popped, vec![6], "burst exactly on the limit passes whole");
    {
        let sections = server.tenant_sections();
        let s = section(&sections, "edge");
        assert_eq!(s.frames_accepted, 6);
        assert_eq!(s.quota_throttles, 0);
    }

    let mut over =
        ScriptedClient::connect(&listener, 1 << 16, session_script("edge", 2, &container(1), 256, true));
    let popped = drive(&mut server, std::slice::from_mut(&mut over), &["edge"]);
    assert_eq!(popped, vec![0], "the bucket is empty now");
    let sections = server.tenant_sections();
    let s = section(&sections, "edge");
    assert_eq!(s.frames_accepted, 6);
    assert_eq!(s.quota_throttles, 1);
}

#[test]
fn byte_burst_exactly_covering_the_container_admits_every_frame() {
    let sent = frames(3);
    let budget: u64 = sent.iter().map(|f| f.total_bytes() as u64).sum();
    let mut server = Server::new(Arc::new(ManualClock::new()));
    server.add_tenant("metered", TenantConfig::unlimited().with_byte_quota(0, budget));
    let listener = server.listener();

    let mut cam = ScriptedClient::connect(
        &listener,
        1 << 16,
        session_script("metered", 1, &container(3), 128, true),
    );
    let popped = drive(&mut server, std::slice::from_mut(&mut cam), &["metered"]);
    assert_eq!(popped, vec![3]);
    {
        let sections = server.tenant_sections();
        let s = section(&sections, "metered");
        assert_eq!(s.frames_accepted, 3);
        assert_eq!(s.bytes_ingested, budget, "the budget was spent to the last byte");
        assert_eq!(s.quota_throttles, 0);
    }

    // One more frame: the byte bucket is at zero, and its veto must
    // refund the frame token it briefly held.
    let mut over = ScriptedClient::connect(
        &listener,
        1 << 16,
        session_script("metered", 2, &container(1), 128, true),
    );
    let popped = drive(&mut server, std::slice::from_mut(&mut over), &["metered"]);
    assert_eq!(popped, vec![0]);
    let sections = server.tenant_sections();
    let s = section(&sections, "metered");
    assert_eq!(s.quota_throttles, 1);
    assert_eq!(s.bytes_ingested, budget, "a throttled frame bills nothing");
}

#[test]
fn rapid_session_churn_respects_the_session_limit() {
    // A small read quantum keeps each session alive across steps —
    // otherwise a whole session begins and ends inside one step and
    // the concurrency limit never binds.
    let mut server = Server::new(Arc::new(ManualClock::new())).with_read_quantum(64);
    server.add_tenant("solo", TenantConfig::unlimited().with_max_sessions(1));
    let listener = server.listener();
    let body = container(2);

    // Sequential churn: each session fully drains before the next
    // opens, so a limit of one admits all twelve.
    for cam_id in 0..12u64 {
        let mut cam = ScriptedClient::connect(
            &listener,
            1 << 16,
            session_script("solo", cam_id, &body, 256, true),
        );
        let popped = drive(&mut server, std::slice::from_mut(&mut cam), &["solo"]);
        assert_eq!(popped, vec![2]);
        assert_eq!(cam.admit_code(), Some(AdmitCode::Accepted), "churned session {cam_id}");
    }
    assert_eq!(server.stats().rejected_session_limit, 0);
    {
        let sections = server.tenant_sections();
        assert_eq!(section(&sections, "solo").sessions_admitted, 12);
    }

    // Concurrent pair: the second hello lands while the first session
    // is live, and is refused — then a third opens once the slot frees.
    let mut first = ScriptedClient::connect(
        &listener,
        1 << 16,
        session_script("solo", 100, &body, 256, true),
    );
    let mut second = ScriptedClient::connect(
        &listener,
        1 << 16,
        session_script("solo", 101, &body, 256, true),
    );
    first.flush();
    second.flush();
    server.step();
    assert_eq!(first.admit_code(), Some(AdmitCode::Accepted));
    assert_eq!(second.admit_code(), Some(AdmitCode::SessionLimit));
    let popped = drive(&mut server, &mut [first, second], &["solo"]);
    assert_eq!(popped, vec![2], "only the admitted session's frames arrive");
    assert_eq!(server.stats().rejected_session_limit, 1);

    let mut third = ScriptedClient::connect(
        &listener,
        1 << 16,
        session_script("solo", 102, &body, 256, true),
    );
    let popped = drive(&mut server, std::slice::from_mut(&mut third), &["solo"]);
    assert_eq!(third.admit_code(), Some(AdmitCode::Accepted), "freed slot readmits");
    assert_eq!(popped, vec![2]);
}

#[test]
fn graceful_shutdown_drains_every_accepted_frame() {
    let mut server = Server::new(Arc::new(ManualClock::new()));
    // A deliberately tiny queue so frames park under backpressure
    // mid-drain — the drain must still deliver every accepted frame.
    server.add_tenant("fleet", TenantConfig::unlimited().with_qos(BackpressureMode::Block, 2));
    let listener = server.listener();
    let body = container(5);

    let mut cams: Vec<ScriptedClient> = (0..4u64)
        .map(|cam_id| {
            ScriptedClient::connect(
                &listener,
                1 << 16,
                session_script("fleet", cam_id, &body, 128, true),
            )
        })
        .collect();

    // Let the sessions open and stuff the queue without consuming it.
    for _ in 0..10 {
        for c in cams.iter_mut() {
            c.flush();
        }
        server.step();
    }
    server.begin_shutdown();

    // A latecomer is refused while live sessions keep draining.
    let mut late = ScriptedClient::connect(
        &listener,
        1 << 16,
        session_script("fleet", 99, &body, 128, true),
    );
    for _ in 0..10 {
        late.flush();
        server.step();
        if late.admit_code().is_some() {
            break;
        }
    }
    assert_eq!(late.admit_code(), Some(AdmitCode::ShuttingDown));

    cams.push(late);
    let popped = drive(&mut server, &mut cams, &["fleet"]);
    server.close_tenant_queues();

    assert_eq!(popped, vec![20], "4 sessions x 5 frames, none lost in the drain");
    let sections = server.tenant_sections();
    let s = section(&sections, "fleet");
    assert_eq!(s.frames_accepted, 20);
    assert_eq!(s.frames_delivered, 20);
    assert_eq!(s.delivered_fraction, 1.0);
    assert_eq!(s.sessions_offered, 5, "the refused hello still counts as offered");
    assert_eq!(s.sessions_admitted, 4);
    assert_eq!(server.stats().rejected_shutting_down, 1);
    assert_eq!(server.stats().sessions_clean, 4);
}

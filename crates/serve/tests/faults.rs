//! Fault containment, end to end: every testkit session fault and
//! every truncating container fault must land as a typed rejection or
//! session error — never a panic, never a silently-clean session, and
//! never collateral damage to another tenant.

use rpr_core::{EncMask, EncodedFrame, FrameMetadata, PixelStatus};
use rpr_serve::{
    session_script, AdmitCode, ManualClock, ScriptedClient, Server, TenantConfig,
};
use rpr_testkit::{SessionFaultKind, TestRng, WireFaultKind, ALL_SESSION_FAULTS};
use std::sync::Arc;

fn frames(n: u64) -> Vec<EncodedFrame> {
    (0..n)
        .map(|i| {
            let mut mask = EncMask::new(16, 8);
            mask.set((i % 16) as u32, 2, PixelStatus::Regional);
            EncodedFrame::new(16, 8, i, vec![i as u8], FrameMetadata::from_mask(mask))
        })
        .collect()
}

fn container(n: u64) -> Vec<u8> {
    rpr_wire::write_container(&frames(n)).expect("write container")
}

/// Drives everything to idle, returning frames popped per tenant queue.
fn drive(server: &mut Server, clients: &mut [ScriptedClient], tenants: &[&str]) -> Vec<u64> {
    let queues: Vec<_> =
        tenants.iter().map(|t| server.tenant_queue(t).expect("tenant queue")).collect();
    let mut popped = vec![0u64; queues.len()];
    for _ in 0..10_000 {
        for c in clients.iter_mut() {
            c.flush();
        }
        server.step();
        for (q, n) in queues.iter().zip(popped.iter_mut()) {
            while q.try_pop().is_some() {
                *n += 1;
            }
        }
        if server.is_idle() {
            break;
        }
    }
    assert!(server.is_idle(), "server failed to reach idle");
    popped
}

#[test]
fn every_session_fault_is_contained_and_isolated() {
    let body = container(3);
    for (i, kind) in ALL_SESSION_FAULTS.iter().enumerate() {
        let mut server = Server::new(Arc::new(ManualClock::new()));
        server.add_tenant("victim", TenantConfig::unlimited());
        server.add_tenant("bystander", TenantConfig::unlimited());
        let listener = server.listener();

        let script = session_script("victim", 1, &body, 64, true);
        let faulty = kind
            .inject(&script, &mut TestRng::new(0xBAD + i as u64))
            .unwrap_or_else(|| panic!("{} must apply to a full script", kind.name()));
        let bad = ScriptedClient::connect(&listener, 1 << 16, faulty);
        let good = ScriptedClient::connect(
            &listener,
            1 << 16,
            session_script("bystander", 2, &body, 64, true),
        );

        let popped = drive(&mut server, &mut [bad, good], &["victim", "bystander"]);
        let stats = server.stats();

        // The bystander is whole: every frame, a clean session.
        assert_eq!(popped[1], 3, "{}: bystander lost frames", kind.name());
        assert_eq!(stats.sessions_clean, 1, "{}: only the bystander is clean", kind.name());
        // The faulty session ended in a *typed* failure of some class.
        assert_eq!(
            stats.sessions_errored + stats.sessions_truncated,
            1,
            "{}: faulty session must error, got {stats:?}",
            kind.name()
        );
        let sections = server.tenant_sections();
        let bystander =
            sections.iter().find(|s| s.tenant == "bystander").expect("bystander section");
        assert_eq!(bystander.frames_delivered, 3, "{}", kind.name());
        assert_eq!(bystander.delivered_fraction, 1.0, "{}", kind.name());
    }
}

#[test]
fn hello_faults_reject_with_bad_hello() {
    use rpr_serve::{Conn, ConnRead};
    let body = container(1);
    for kind in [
        SessionFaultKind::HelloMagicFlip,
        SessionFaultKind::HelloBadVersion,
        SessionFaultKind::HelloEmptyTenant,
    ] {
        let mut server = Server::new(Arc::new(ManualClock::new()));
        server.add_tenant("victim", TenantConfig::unlimited());
        let listener = server.listener();
        let faulty = kind
            .inject(&session_script("victim", 1, &body, 64, true), &mut TestRng::new(7))
            .expect("fault applies");
        // Hold the connection open (a ScriptedClient closes after its
        // script, and a verdict cannot be written to a closed peer):
        // the client must see the BadHello byte before hanging up.
        let mut conn = listener.connect(1 << 16);
        conn.write_ready(&faulty);
        let mut verdict = None;
        for _ in 0..100 {
            server.step();
            let mut byte = [0u8; 1];
            if let ConnRead::Data(1) = conn.read_ready(&mut byte) {
                verdict = AdmitCode::from_byte(byte[0]);
                break;
            }
        }
        assert_eq!(verdict, Some(AdmitCode::BadHello), "{}", kind.name());
        assert_eq!(server.tenant_sections()[0].sessions_admitted, 0, "{}", kind.name());
        assert_eq!(server.stats().sessions_errored, 1, "{}", kind.name());
    }
}

/// The satellite regression: a session whose final container chunk is
/// cut mid-frame must end as the typed `WireError::TruncatedStream`
/// (counted in `sessions_truncated`), not silent scan recovery and
/// never a clean session. Truncated containers come from the testkit's
/// wire-fault injector across a seed sweep; a cut landing on a clean
/// chunk boundary legitimately recovers instead.
#[test]
fn torn_final_chunk_from_wire_faults_is_typed_truncation() {
    let body = container(4);
    let mut truncated_seen = 0u64;
    for seed in 0..48u64 {
        let Some(cut) = WireFaultKind::TruncateTail.inject(&body, &mut TestRng::new(seed))
        else {
            continue;
        };
        let mut server = Server::new(Arc::new(ManualClock::new()));
        server.add_tenant("victim", TenantConfig::unlimited());
        let listener = server.listener();
        // No bye: the peer just vanishes after its truncated container,
        // which is exactly the torn-final-chunk shape.
        let mut cam = ScriptedClient::connect(
            &listener,
            1 << 16,
            session_script("victim", 1, &cut, 64, false),
        );
        let popped = drive(&mut server, std::slice::from_mut(&mut cam), &["victim"]);
        let stats = server.stats().clone();

        assert_eq!(stats.sessions_clean, 0, "seed {seed}: a cut container is never clean");
        assert_eq!(
            stats.sessions_truncated + stats.sessions_recovered + stats.sessions_errored,
            1,
            "seed {seed}: exactly one typed ending, got {stats:?}"
        );
        // Whatever frames were complete before the cut may flow; no
        // frame may be fabricated past it.
        assert!(popped[0] <= 4, "seed {seed}");
        truncated_seen += stats.sessions_truncated;
    }
    assert!(
        truncated_seen > 0,
        "the sweep must hit at least one mid-frame cut (typed truncation)"
    );

    // The clean-boundary counterpart, deterministically: a container
    // cut right after its 16-byte header is zero complete chunks — the
    // wire layer's scan recovery, not an error.
    let mut server = Server::new(Arc::new(ManualClock::new()));
    server.add_tenant("victim", TenantConfig::unlimited());
    let listener = server.listener();
    let cam = ScriptedClient::connect(
        &listener,
        1 << 16,
        session_script("victim", 1, &body[..16], 64, false),
    );
    let popped = drive(&mut server, &mut [cam], &["victim"]);
    assert_eq!(popped, vec![0]);
    assert_eq!(server.stats().sessions_recovered, 1, "{:?}", server.stats());
    assert_eq!(server.stats().sessions_truncated, 0);
}

/// In-container corruption (CRC rot) arriving over a session is caught
/// at the chunk and ends the session with a typed wire error while a
/// concurrent tenant streams on.
#[test]
fn corrupt_chunk_over_the_wire_is_a_typed_session_error() {
    let body = container(3);
    let rotten = WireFaultKind::ChunkCrcFlip
        .inject(&body, &mut TestRng::new(3))
        .expect("crc fault applies");
    let mut server = Server::new(Arc::new(ManualClock::new()));
    server.add_tenant("victim", TenantConfig::unlimited());
    server.add_tenant("bystander", TenantConfig::unlimited());
    let listener = server.listener();
    let bad = ScriptedClient::connect(
        &listener,
        1 << 16,
        session_script("victim", 1, &rotten, 64, true),
    );
    let good = ScriptedClient::connect(
        &listener,
        1 << 16,
        session_script("bystander", 2, &body, 64, true),
    );
    let popped = drive(&mut server, &mut [bad, good], &["victim", "bystander"]);
    assert_eq!(popped[1], 3, "bystander unaffected");
    assert_eq!(server.stats().sessions_errored, 1, "{:?}", server.stats());
    assert_eq!(server.stats().sessions_clean, 1);
}

//! The live telemetry plane, end to end through the server: frame-ctx
//! propagation on delivered frames, mid-flight Prometheus scrapes that
//! stay consistent with final accounting, SLO burn-rate breaches firing
//! the flight recorder, and fault-storm dumps.

use rpr_core::{EncMask, EncodedFrame, FrameMetadata, PixelStatus};
use rpr_serve::{
    session_script, AdmitCode, Clock, ManualClock, ScrapeClient, ScriptedClient, Server,
    SloConfig, TenantBridge, TenantConfig,
};
use rpr_stream::BackpressureMode;
use std::sync::Arc;

fn frames(n: u64) -> Vec<EncodedFrame> {
    (0..n)
        .map(|i| {
            let mut mask = EncMask::new(16, 8);
            mask.set((i % 16) as u32, 2, PixelStatus::Regional);
            EncodedFrame::new(16, 8, i, vec![i as u8], FrameMetadata::from_mask(mask))
        })
        .collect()
}

fn container(n: u64) -> Vec<u8> {
    rpr_wire::write_container(&frames(n)).expect("write container")
}

/// Pulls the value of `family{tenant="..."}` off an exposition page.
fn scraped_counter(page: &str, family: &str, tenant: &str) -> Option<u64> {
    let prefix = format!("{family}{{tenant=\"{tenant}\"}} ");
    page.lines().find_map(|l| l.strip_prefix(prefix.as_str())).and_then(|v| v.parse().ok())
}

#[test]
fn delivered_frames_carry_a_causal_frame_ctx() {
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::new(clock.clone());
    server.add_tenant("fleet-a", TenantConfig::unlimited());
    server.add_tenant("fleet-b", TenantConfig::unlimited());
    let listener = server.listener();

    let script = session_script("fleet-b", 9, &container(5), 256, true);
    let mut cam = ScriptedClient::connect(&listener, 1 << 16, script);
    let queue = server.tenant_queue("fleet-b").unwrap();

    clock.advance(777);
    let mut delivered = Vec::new();
    for _ in 0..10_000 {
        cam.flush();
        server.step();
        while let Some(d) = queue.try_pop() {
            delivered.push(d);
        }
        if server.is_idle() && cam.done() {
            break;
        }
    }
    assert_eq!(delivered.len(), 5);
    for (i, d) in delivered.iter().enumerate() {
        assert_eq!(d.ctx.tenant, 1, "dense id follows registration order");
        assert_eq!(d.ctx.camera, 9);
        assert_eq!(d.ctx.session, d.session_id);
        assert_eq!(d.ctx.frame_seq, i as u64, "per-session sequence");
        assert_eq!(d.ctx.ingest_micros, d.accepted_micros);
        assert_eq!(d.ctx.ingest_micros, 777);
    }
}

#[test]
fn mid_flight_scrape_is_consistent_with_final_accounting() {
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::new(clock.clone()).with_read_quantum(512);
    server.add_tenant(
        "acme",
        TenantConfig::unlimited().with_slo(SloConfig::default()),
    );
    let listener = server.listener();

    let script = session_script("acme", 3, &container(24), 64, true);
    let mut cam = ScriptedClient::connect(&listener, 1 << 10, script);
    let queue = server.tenant_queue("acme").unwrap();
    let live = server.tenant_live("acme").expect("live handle");

    let mut scraper: Option<ScrapeClient> = None;
    let mut mid_flight_page: Option<String> = None;
    let mut popped = 0u64;
    for step in 0..10_000 {
        cam.flush();
        clock.advance(50);
        server.step();
        while let Some(d) = queue.try_pop() {
            let now = clock.now_micros();
            live.record_delivery(now, now.saturating_sub(d.ctx.ingest_micros));
            popped += 1;
        }
        // Start the scrape only once ingest is demonstrably mid-flight.
        if scraper.is_none() && popped > 0 && !cam.done() {
            scraper = Some(ScrapeClient::connect(&listener, 1 << 16, "acme", 999));
        }
        if let Some(s) = scraper.as_mut() {
            if mid_flight_page.is_none() {
                mid_flight_page = s.poll().map(str::to_string);
            }
        }
        if server.is_idle() && cam.done() && step > 50 {
            break;
        }
    }
    assert!(server.is_idle(), "server failed to drain");
    let page = mid_flight_page.expect("scrape completed while serving");

    let snap_accepted = scraped_counter(&page, "rpr_frames_accepted_total", "acme")
        .expect("accepted counter on the page");
    let final_accepted = live.frames_accepted.value();
    assert!(snap_accepted > 0, "scrape happened after ingest started");
    assert!(
        snap_accepted <= final_accepted,
        "mid-flight snapshot ({snap_accepted}) cannot exceed the final count ({final_accepted})"
    );
    assert_eq!(final_accepted, 24);
    assert_eq!(popped, 24);
    assert_eq!(live.frames_delivered.value(), 24);

    // The page carries the summary quantiles and the SLO gauge.
    assert!(page.contains("rpr_delivery_latency_us{tenant=\"acme\",quantile=\"0.99\"}"));
    assert!(page.contains("rpr_slo_burn_rate{tenant=\"acme\"}"));

    // The final exposition agrees with the final live counters.
    let final_page = server.render_metrics();
    assert_eq!(
        scraped_counter(&final_page, "rpr_frames_accepted_total", "acme"),
        Some(24)
    );
    assert_eq!(
        scraped_counter(&final_page, "rpr_frames_delivered_total", "acme"),
        Some(24)
    );
}

#[test]
fn slo_breach_fires_the_flight_recorder_once_per_episode() {
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::new(clock.clone());
    let slo = SloConfig {
        target_delivery_us: 10_000,
        budget_fraction: 0.01,
        window_micros: 1_000_000,
        min_events: 4,
    };
    server.add_tenant(
        "freeloader",
        TenantConfig::unlimited().with_frame_quota(0, 0).with_slo(slo),
    );
    let listener = server.listener();

    let script = session_script("freeloader", 1, &container(10), 256, true);
    let mut cam = ScriptedClient::connect(&listener, 1 << 16, script);
    for _ in 0..10_000 {
        cam.flush();
        server.step();
        if server.is_idle() && cam.done() {
            break;
        }
    }
    assert_eq!(cam.admit_code(), Some(AdmitCode::Accepted));

    let sections = server.slo_sections();
    let s = sections.iter().find(|s| s.tenant == "freeloader").expect("slo section");
    assert_eq!(s.bad_events, 10, "every throttled frame burns budget");
    assert_eq!(s.good_events, 0);
    assert!(s.burn_rate >= 1.0, "burn {} must breach", s.burn_rate);
    assert_eq!(s.breaches, 1, "one breach episode, not one per step");
    assert_eq!(s.flight_dumps, 1);

    let dump = server.take_flight_dump().expect("breach dumped the flight recorder");
    assert!(dump.contains("\"traceEvents\""), "chrome trace-event shape");
    assert!(dump.contains("{\"name\":\"rpr-serve\"}"), "process metadata");
    assert!(dump.contains("freeloader/camera-1"), "tenant/camera track name");
    assert!(dump.contains("serve.admit"), "admission spans captured");
    serde_json::from_str::<serde_json::Value>(&dump).expect("dump parses as JSON");
    assert!(server.take_flight_dump().is_none(), "dump is taken once");

    // The live report carries the SLO section for rpr-report diffing.
    let report = server.live_report();
    let slos = report.slos.as_deref().expect("slos section present");
    assert!(slos.iter().any(|s| s.tenant == "freeloader" && s.breaches == 1));
    let text = report.render_text();
    assert!(text.contains("freeloader"), "{text}");
}

#[test]
fn session_fault_storm_dumps_the_flight_recorder() {
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::new(clock.clone()).with_fault_storm(2, 1_000_000);
    server.add_tenant("acme", TenantConfig::unlimited());
    let listener = server.listener();

    // Two sessions that each commit a protocol crime (data after bye).
    let mut clients: Vec<ScriptedClient> = (0..2)
        .map(|i| {
            let mut script = session_script("acme", i, &container(1), 256, true);
            script.extend_from_slice(&rpr_serve::protocol::encode_data(b"zombie"));
            ScriptedClient::connect(&listener, 1 << 16, script)
        })
        .collect();
    let queue = server.tenant_queue("acme").unwrap();
    for _ in 0..10_000 {
        for c in clients.iter_mut() {
            c.flush();
        }
        server.step();
        while queue.try_pop().is_some() {}
        if server.is_idle() && clients.iter().all(|c| c.done()) {
            break;
        }
    }
    assert_eq!(server.stats().sessions_errored, 2);
    let dump = server.take_flight_dump().expect("storm dumped the flight recorder");
    assert!(dump.contains("\"traceEvents\""));
}

#[test]
fn bridge_feeds_live_delivery_latency_and_slo() {
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::new(clock.clone());
    server.add_tenant(
        "fleet",
        TenantConfig::unlimited().with_slo(SloConfig::default()),
    );
    let listener = server.listener();

    let queue = server.tenant_queue("fleet").unwrap();
    let live = server.tenant_live("fleet").unwrap();
    let bridge = TenantBridge::start_with_live(
        Arc::clone(&queue),
        16,
        BackpressureMode::Block,
        Arc::clone(&live),
        clock.clone() as Arc<dyn Clock>,
        move |_camera, mut source| {
            std::thread::spawn(move || {
                use rpr_stream::FrameSource;
                while source.next_frame().is_some() {}
            });
        },
    );

    let script = session_script("fleet", 4, &container(8), 128, true);
    let mut cam = ScriptedClient::connect(&listener, 1 << 16, script);
    for _ in 0..10_000 {
        cam.flush();
        clock.advance(100);
        server.step();
        if server.is_idle() && cam.done() {
            break;
        }
    }
    assert!(server.is_idle());
    server.close_tenant_queues();
    assert_eq!(bridge.join(), 8, "all frames routed");

    assert_eq!(live.frames_delivered.value(), 8);
    let snap = live.delivery_us.snapshot();
    assert_eq!(snap.count, 8, "bridge recorded every routed latency");
    let (good, bad) = live.slo().unwrap().window_totals(clock.now_micros());
    assert_eq!(good + bad, 8, "SLO saw every delivery");
}

//! Finding output: human text for terminals, JSON for CI tooling,
//! SARIF 2.1.0 for PR annotation.

use crate::lints::{Finding, LINTS};
use serde::{Serialize, Value};
use serde_json::json;

/// The machine-readable report envelope (`--json`). Owns its findings
/// — the vendored serde_derive subset does not handle borrowed
/// structs, and report rendering is far off any hot path.
#[derive(Debug, Serialize)]
pub struct Report {
    /// Report schema version.
    pub version: u32,
    /// Files scanned.
    pub files_scanned: usize,
    /// Every finding, waived ones included.
    pub findings: Vec<Finding>,
    /// Roll-up counters.
    pub summary: Summary,
}

/// Counters for the gate decision.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Summary {
    /// Total findings, including waived.
    pub total: usize,
    /// Findings covered by a justified waiver.
    pub waived: usize,
    /// Findings that fail the gate.
    pub unwaived: usize,
}

/// Computes the summary counters.
pub fn summarize(findings: &[Finding]) -> Summary {
    let waived = findings.iter().filter(|f| f.waived).count();
    Summary { total: findings.len(), waived, unwaived: findings.len() - waived }
}

/// Renders the human-readable report.
pub fn render_text(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let status = if f.waived { "waived" } else { "FAIL" };
        out.push_str(&format!(
            "{status:>6} {} [{} {}] {}:{}: {}\n",
            if f.waived { " " } else { "✗" },
            f.id,
            f.lint,
            f.file,
            f.line,
            f.message
        ));
        if let Some(reason) = &f.waiver_reason {
            out.push_str(&format!("        waiver: {reason}\n"));
        } else {
            out.push_str(&format!("        hint: {}\n", f.hint));
        }
    }
    let s = summarize(findings);
    out.push_str(&format!(
        "rpr-check: {} files scanned, {} findings ({} waived, {} blocking)\n",
        files_scanned, s.total, s.waived, s.unwaived
    ));
    if s.unwaived == 0 {
        out.push_str("rpr-check: gate PASSED\n");
    } else {
        out.push_str("rpr-check: gate FAILED — fix the findings above or add a justified waiver\n");
    }
    out
}

/// Renders the `--json` report.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let report = Report {
        version: 1,
        files_scanned,
        findings: findings.to_vec(),
        summary: summarize(findings),
    };
    serde_json::to_string_pretty(&report).unwrap_or_else(|e| {
        format!("{{\"error\": \"report serialization failed: {e}\"}}")
    })
}

/// Renders findings as a SARIF 2.1.0 log (`--format sarif`) so CI can
/// annotate pull requests. Waived findings are emitted at level
/// `note` with an `inSource` suppression carrying the justification;
/// blocking findings are level `error`. Every lint is listed as a
/// rule whether or not it fired, so rule metadata stays stable across
/// runs (golden-tested in `tests/data/sarif_golden.json`).
pub fn render_sarif(findings: &[Finding], files_scanned: usize) -> String {
    let rules: Vec<Value> = LINTS
        .iter()
        .map(|l| {
            json!({
                "id": l.id,
                "name": l.name,
                "shortDescription": json!({ "text": l.description }),
                "help": json!({ "text": l.hint }),
            })
        })
        .collect();
    let results: Vec<Value> = findings
        .iter()
        .map(|f| {
            let location = json!({
                "physicalLocation": json!({
                    "artifactLocation": json!({ "uri": f.file.clone() }),
                    "region": json!({ "startLine": f.line as u64 }),
                }),
            });
            let mut entries = vec![
                ("ruleId".to_string(), json!(f.id)),
                ("level".to_string(), json!(if f.waived { "note" } else { "error" })),
                ("message".to_string(), json!({ "text": f.message.clone() })),
                ("locations".to_string(), json!(vec![location])),
            ];
            if f.waived {
                let justification =
                    f.waiver_reason.clone().unwrap_or_else(|| "waived".to_string());
                entries.push((
                    "suppressions".to_string(),
                    json!(vec![json!({
                        "kind": "inSource",
                        "justification": justification,
                    })]),
                ));
            }
            Value::Map(entries)
        })
        .collect();
    let s = summarize(findings);
    let run = json!({
        "tool": json!({
            "driver": json!({
                "name": "rpr-check",
                "informationUri": "https://example.invalid/rpr-check",
                "rules": rules,
            }),
        }),
        "results": results,
        "properties": json!({
            "filesScanned": files_scanned as u64,
            "waived": s.waived as u64,
            "blocking": s.unwaived as u64,
        }),
    });
    let log = json!({
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": vec![run],
    });
    serde_json::to_string_pretty(&log)
        .unwrap_or_else(|e| format!("{{\"error\": \"sarif serialization failed: {e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::lint_by_name;

    fn sample_findings() -> Vec<Finding> {
        let panic_surface = lint_by_name("panic-surface").expect("known lint");
        let panic_reach = lint_by_name("panic-reach").expect("known lint");
        vec![
            Finding {
                id: panic_surface.id,
                lint: panic_surface.name,
                file: "crates/wire/src/frame.rs".to_string(),
                line: 41,
                message: "`unwrap` on untrusted input".to_string(),
                hint: panic_surface.hint,
                waived: false,
                waiver_reason: None,
            },
            Finding {
                id: panic_reach.id,
                lint: panic_reach.name,
                file: "crates/core/src/pool.rs".to_string(),
                line: 155,
                message: "expect site `expect` reachable via a.rs::entry → b.rs::deep"
                    .to_string(),
                hint: panic_reach.hint,
                waived: true,
                waiver_reason: Some("constructor guarantees non-empty".to_string()),
            },
        ]
    }

    /// The SARIF envelope is pinned byte-for-byte: vendored serde_json
    /// preserves map insertion order, so any drift in structure, rule
    /// metadata, or suppression shape shows up as a golden diff.
    /// Regenerate by running this test and copying the printed actual
    /// output into `tests/data/sarif_golden.json`.
    #[test]
    fn sarif_envelope_matches_the_golden_file() {
        let rendered = render_sarif(&sample_findings(), 42);
        let golden = include_str!("../tests/data/sarif_golden.json");
        assert!(
            rendered.trim() == golden.trim(),
            "SARIF output drifted from golden file; actual:\n{rendered}"
        );
    }

    #[test]
    fn sarif_marks_waived_findings_as_suppressed_notes() {
        let rendered = render_sarif(&sample_findings(), 42);
        assert!(rendered.contains("\"level\": \"note\""));
        assert!(rendered.contains("\"kind\": \"inSource\""));
        assert!(rendered.contains("constructor guarantees non-empty"));
        assert!(rendered.contains("\"level\": \"error\""));
    }
}

/// Renders the lint catalog (`--list`).
pub fn render_lints() -> String {
    let mut out = String::from("rpr-check lints:\n");
    for l in LINTS {
        out.push_str(&format!("  {}  {:<16} {}\n", l.id, l.name, l.description));
    }
    out.push_str("\nwaiver syntax: // rpr-check: allow(<lint-name>): <justification>\n");
    out
}

//! Finding output: human text for terminals, JSON for CI tooling.

use crate::lints::{Finding, LINTS};
use serde::Serialize;

/// The machine-readable report envelope (`--json`). Owns its findings
/// — the vendored serde_derive subset does not handle borrowed
/// structs, and report rendering is far off any hot path.
#[derive(Debug, Serialize)]
pub struct Report {
    /// Report schema version.
    pub version: u32,
    /// Files scanned.
    pub files_scanned: usize,
    /// Every finding, waived ones included.
    pub findings: Vec<Finding>,
    /// Roll-up counters.
    pub summary: Summary,
}

/// Counters for the gate decision.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Summary {
    /// Total findings, including waived.
    pub total: usize,
    /// Findings covered by a justified waiver.
    pub waived: usize,
    /// Findings that fail the gate.
    pub unwaived: usize,
}

/// Computes the summary counters.
pub fn summarize(findings: &[Finding]) -> Summary {
    let waived = findings.iter().filter(|f| f.waived).count();
    Summary { total: findings.len(), waived, unwaived: findings.len() - waived }
}

/// Renders the human-readable report.
pub fn render_text(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let status = if f.waived { "waived" } else { "FAIL" };
        out.push_str(&format!(
            "{status:>6} {} [{} {}] {}:{}: {}\n",
            if f.waived { " " } else { "✗" },
            f.id,
            f.lint,
            f.file,
            f.line,
            f.message
        ));
        if let Some(reason) = &f.waiver_reason {
            out.push_str(&format!("        waiver: {reason}\n"));
        } else {
            out.push_str(&format!("        hint: {}\n", f.hint));
        }
    }
    let s = summarize(findings);
    out.push_str(&format!(
        "rpr-check: {} files scanned, {} findings ({} waived, {} blocking)\n",
        files_scanned, s.total, s.waived, s.unwaived
    ));
    if s.unwaived == 0 {
        out.push_str("rpr-check: gate PASSED\n");
    } else {
        out.push_str("rpr-check: gate FAILED — fix the findings above or add a justified waiver\n");
    }
    out
}

/// Renders the `--json` report.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let report = Report {
        version: 1,
        files_scanned,
        findings: findings.to_vec(),
        summary: summarize(findings),
    };
    serde_json::to_string_pretty(&report).unwrap_or_else(|e| {
        format!("{{\"error\": \"report serialization failed: {e}\"}}")
    })
}

/// Renders the lint catalog (`--list`).
pub fn render_lints() -> String {
    let mut out = String::from("rpr-check lints:\n");
    for l in LINTS {
        out.push_str(&format!("  {}  {:<16} {}\n", l.id, l.name, l.description));
    }
    out.push_str("\nwaiver syntax: // rpr-check: allow(<lint-name>): <justification>\n");
    out
}

//! # rpr-check — the workspace static-analysis gate
//!
//! Project-specific invariant lints the stock toolchain cannot
//! express, run as `cargo run -p rpr-check -- --workspace` and as a
//! blocking CI job:
//!
//! | ID     | name            | invariant                                              |
//! |--------|-----------------|--------------------------------------------------------|
//! | RPR001 | panic-surface   | no unwrap/expect/panicking macros/indexing in the parse & decode surfaces |
//! | RPR002 | truncating-cast | no unguarded narrowing `as` casts in bitstream/offset arithmetic |
//! | RPR003 | raw-clock       | no raw `Instant::now`/`SystemTime::now` outside clock/bench modules |
//! | RPR004 | unsafe-block    | no `unsafe` outside the policy allowlist               |
//! | RPR005 | atomic-ordering | orderings pinned to the documented policy, no stray SeqCst |
//! | RPR006 | panic-reach     | policy entry points transitively panic-free across the call graph |
//! | RPR007 | lock-order      | the workspace lock-acquisition graph stays acyclic     |
//! | RPR008 | hot-path-alloc  | nothing reachable from kernels / pool recycle allocates |
//! | RPR009 | event-loop-blocking | nothing reachable from the server event loop blocks |
//!
//! RPR001–RPR005 are single-file token lints; RPR006–RPR009 are
//! *graph lints*: [`syntax`] parses every file into an item model,
//! [`callgraph`] links call sites into a workspace call graph, and
//! [`reach`] / [`lock_order`] walk it. Construction and soundness
//! caveats live in DESIGN.md §4j.
//!
//! The lint scopes, allowlists, and dynamic-analysis coverage pins
//! live in `ci/check_policy.toml` ([`policy`]). Violations that are
//! correct by construction carry inline waivers:
//!
//! ```text
//! // rpr-check: allow(<lint-name>): <justification>
//! ```
//!
//! The workspace vendors dependencies offline (no `syn`), so the
//! analysis walks a token stream from the self-contained [`lexer`]
//! rather than an AST; every lint is pinned live by the known-bad /
//! known-good fixture pairs under `fixtures/` ([`selftest`]).

pub mod callgraph;
pub mod event_loop;
pub mod hot_alloc;
pub mod lexer;
pub mod lints;
pub mod lock_order;
pub mod panic_reach;
pub mod policy;
pub mod reach;
pub mod report;
pub mod selftest;
pub mod syntax;
pub mod walk;

pub use lints::{check_file, lint_by_name, Finding, LintInfo, LINTS};
pub use policy::{Policy, PolicyError, Value};
pub use report::{render_json, render_lints, render_sarif, render_text, summarize};

use callgraph::{Graph, Workspace};
use std::path::Path;

/// The graph lints (RPR006–RPR009), in ID order.
pub const GRAPH_LINT_IDS: &[&str] = &["RPR006", "RPR007", "RPR008", "RPR009"];

/// Runs the selected graph lints (`ids` ⊆ [`GRAPH_LINT_IDS`]) over the
/// workspace under `root`. Returns all findings (waived included) plus
/// the scanned-file count.
///
/// # Errors
///
/// Returns the first I/O failure while walking or reading sources.
pub fn check_graph(
    root: &Path,
    policy: &Policy,
    ids: &[&str],
) -> std::io::Result<(Vec<Finding>, usize)> {
    let ws = Workspace::load(root, policy)?;
    let scanned = ws.files.len();
    let graph = Graph::build(&ws);
    Ok((run_graph_lints(&graph, policy, ids), scanned))
}

/// Runs the selected graph lints over an already-built graph (used by
/// [`selftest`] fixtures and unit tests).
pub fn run_graph_lints(graph: &Graph<'_>, policy: &Policy, ids: &[&str]) -> Vec<Finding> {
    let mut findings = Vec::new();
    if ids.contains(&"RPR006") {
        findings.extend(panic_reach::run(graph, policy));
    }
    if ids.contains(&"RPR007") {
        findings.extend(lock_order::run(graph, policy));
    }
    if ids.contains(&"RPR008") {
        findings.extend(hot_alloc::run(graph, policy));
    }
    if ids.contains(&"RPR009") {
        findings.extend(event_loop::run(graph, policy));
    }
    findings
}

/// Runs the full workspace scan: loads files, applies every lint,
/// returns all findings (waived included) plus the scanned-file count.
///
/// # Errors
///
/// Returns the first I/O failure while walking or reading sources.
pub fn check_workspace(root: &Path, policy: &Policy) -> std::io::Result<(Vec<Finding>, usize)> {
    let files = walk::collect_rust_files(root, policy)?;
    let mut findings = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        findings.extend(check_file(rel, &src, policy));
    }
    Ok((findings, files.len()))
}

/// Renders the pinned dynamic-analysis coverage for `tool`
/// (`dynamic.<tool>` in the policy) as `cargo test` argument lines,
/// one per required invocation. `tests` entries are `crate/target`
/// pairs refining the `crates` list; `extra_tests` name workspace-root
/// integration-test targets. Returns `None` when the policy pins
/// nothing for `tool` — CI treats that as a configuration error, so a
/// tool cannot silently drop out of the matrix.
pub fn dynamic_plan(policy: &Policy, tool: &str) -> Option<String> {
    let crates = policy.str_array(&format!("dynamic.{tool}.crates"));
    let tests = policy.str_array(&format!("dynamic.{tool}.tests"));
    let extra = policy.str_array(&format!("dynamic.{tool}.extra_tests"));
    if crates.is_empty() && tests.is_empty() && extra.is_empty() {
        return None;
    }
    let mut lines = Vec::new();
    if tests.is_empty() {
        for c in &crates {
            lines.push(format!("-p {c}"));
        }
    } else {
        for t in &tests {
            match t.split_once('/') {
                Some((krate, target)) => lines.push(format!("-p {krate} --test {target}")),
                None => lines.push(format!("--test {t}")),
            }
        }
    }
    for t in &extra {
        lines.push(format!("--test {t}"));
    }
    Some(lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The workspace itself must pass its own gate: this makes plain
    /// `cargo test -q` catch a violation even before the CI lint job
    /// runs the binary.
    #[test]
    fn workspace_is_clean_under_the_committed_policy() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/check sits two levels below the repo root");
        let policy_text = std::fs::read_to_string(root.join("ci/check_policy.toml"))
            .expect("ci/check_policy.toml exists");
        let policy = Policy::parse(&policy_text).expect("committed policy parses");
        let (findings, scanned) = check_workspace(root, &policy).expect("workspace scan");
        assert!(scanned > 50, "scan must cover the workspace, saw {scanned} files");
        let blocking: Vec<_> = findings.iter().filter(|f| !f.waived).collect();
        assert!(
            blocking.is_empty(),
            "workspace has unwaived findings:\n{}",
            render_text(&findings, scanned)
        );
    }

    fn committed_policy() -> Policy {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/check sits two levels below the repo root");
        let text = std::fs::read_to_string(root.join("ci/check_policy.toml"))
            .expect("ci/check_policy.toml exists");
        Policy::parse(&text).expect("committed policy parses")
    }

    /// The coverage floor: every entry the committed policy must keep.
    /// Widening a list is fine; removing any pinned crate, test, or
    /// lint scope shows up in [`ratchet_violations`].
    const RATCHET_FLOOR: &[(&str, &[&str])] = &[
        ("lints.panic_surface.include", &[
            "crates/wire/src/",
            "crates/core/src/decoder.rs",
            "crates/core/src/kernels.rs",
            "crates/core/src/pool.rs",
            "crates/testkit/src/wirefault.rs",
            "crates/testkit/src/fault.rs",
            "crates/testkit/src/servefault.rs",
            "crates/serve/src/protocol.rs",
            "crates/serve/src/session.rs",
        ]),
        ("lints.truncating_cast.include", &[
            "crates/wire/src/",
            "crates/core/src/decoder.rs",
            "crates/core/src/kernels.rs",
            "crates/core/src/pool.rs",
            "crates/serve/src/protocol.rs",
        ]),
        ("lints.panic_reach.include", &[
            "crates/wire/src/",
            "crates/core/src/decoder.rs",
            "crates/core/src/kernels.rs",
            "crates/core/src/pool.rs",
            "crates/serve/src/protocol.rs",
            "crates/serve/src/session.rs",
            "crates/predict/src/",
        ]),
        ("lints.lock_order.include", &[
            "crates/serve/src/",
            "crates/stream/src/",
            "crates/trace/src/",
            "crates/core/src/pool.rs",
        ]),
        ("lints.hot_path_alloc.entries", &[
            "crates/core/src/kernels.rs::for_each_run",
            "crates/core/src/kernels.rs::for_each_run_scalar",
            "crates/core/src/kernels.rs::pack_priority_row",
            "crates/core/src/kernels.rs::pack_priority_row_scalar",
            "crates/core/src/kernels.rs::count_priorities",
            "crates/core/src/kernels.rs::count_priorities_scalar",
            "crates/core/src/pool.rs::BufferPool::put_vec",
            "crates/core/src/pool.rs::BufferPool::put_shared",
            "crates/core/src/pool.rs::BufferPool::put_words",
        ]),
        ("lints.event_loop_blocking.entries", &[
            "crates/serve/src/server.rs::Server::step",
            "crates/serve/src/server.rs::Server::pump_until_idle",
        ]),
        ("dynamic.miri.crates", &["rpr-wire", "rpr-core"]),
        ("dynamic.miri.extra_tests", &["panic_freedom"]),
        ("dynamic.asan.crates", &["rpr-wire", "rpr-core", "rpr-serve"]),
        ("dynamic.lsan.crates", &["rpr-wire", "rpr-core", "rpr-serve"]),
        ("dynamic.tsan.crates", &["rpr-stream", "rpr-trace", "rpr-serve"]),
        ("dynamic.loom.crates", &["rpr-stream", "rpr-trace"]),
        ("dynamic.loom.tests", &["rpr-stream/loom_queue", "rpr-trace/loom_gate"]),
    ];

    /// Every floor entry missing from `policy`, as human-readable
    /// descriptions. Empty = the ratchet holds.
    fn ratchet_violations(policy: &Policy) -> Vec<String> {
        let mut out = Vec::new();
        for (path, required) in RATCHET_FLOOR {
            let got = policy.str_array(path);
            for r in *required {
                if !got.iter().any(|g| g == r) {
                    out.push(format!("`{path}` lost pinned entry `{r}` (has {got:?})"));
                }
            }
        }
        // The unsafe allowlist ratchets the other way: it must stay
        // empty until someone adds Miri coverage for the new block.
        if !policy.str_array("lints.unsafe_block.allow").is_empty()
            && policy.str_array("dynamic.miri.crates").is_empty()
        {
            out.push("unsafe allowlist entries require Miri coverage".to_string());
        }
        out
    }

    /// Coverage may only be ratcheted UP: the committed policy must
    /// contain every floor entry, so shrinking any scope fails plain
    /// `cargo test -q` and CI.
    #[test]
    fn policy_ratchet_coverage_never_shrinks() {
        let violations = ratchet_violations(&committed_policy());
        assert!(violations.is_empty(), "policy ratchet: {violations:?}");
    }

    /// The ratchet's own teeth: a policy with a scope entry deleted
    /// must produce a violation, proving the check cannot silently
    /// pass a shrunk list.
    #[test]
    fn policy_ratchet_rejects_a_shrunk_scope() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/check sits two levels below the repo root");
        let text = std::fs::read_to_string(root.join("ci/check_policy.toml"))
            .expect("ci/check_policy.toml exists");
        let shrunk = text.replace("\"crates/predict/src/\",", "");
        assert_ne!(shrunk, text, "expected the predict scope entry to be present");
        let policy = Policy::parse(&shrunk).expect("shrunk policy still parses");
        let violations = ratchet_violations(&policy);
        assert!(
            violations.iter().any(|v| v.contains("crates/predict/src/")),
            "shrunk policy must violate the ratchet, got {violations:?}"
        );
    }

    /// Every tool in the nightly matrix must resolve to a non-empty
    /// plan, and the plan lines must be well-formed cargo-test args.
    #[test]
    fn dynamic_plans_resolve_for_every_pinned_tool() {
        let policy = committed_policy();
        for tool in ["miri", "asan", "lsan", "tsan", "loom"] {
            let plan = dynamic_plan(&policy, tool)
                .unwrap_or_else(|| panic!("no dynamic coverage pinned for `{tool}`"));
            for line in plan.lines() {
                assert!(
                    line.starts_with("-p ") || line.starts_with("--test "),
                    "malformed plan line for {tool}: `{line}`"
                );
            }
        }
        assert_eq!(dynamic_plan(&committed_policy(), "no-such-tool"), None);
    }
}

//! # rpr-check — the workspace static-analysis gate
//!
//! Project-specific invariant lints the stock toolchain cannot
//! express, run as `cargo run -p rpr-check -- --workspace` and as a
//! blocking CI job:
//!
//! | ID     | name            | invariant                                              |
//! |--------|-----------------|--------------------------------------------------------|
//! | RPR001 | panic-surface   | no unwrap/expect/panicking macros/indexing in the parse & decode surfaces |
//! | RPR002 | truncating-cast | no unguarded narrowing `as` casts in bitstream/offset arithmetic |
//! | RPR003 | raw-clock       | no raw `Instant::now`/`SystemTime::now` outside clock/bench modules |
//! | RPR004 | unsafe-block    | no `unsafe` outside the policy allowlist               |
//! | RPR005 | atomic-ordering | orderings pinned to the documented policy, no stray SeqCst |
//!
//! The lint scopes, allowlists, and dynamic-analysis coverage pins
//! live in `ci/check_policy.toml` ([`policy`]). Violations that are
//! correct by construction carry inline waivers:
//!
//! ```text
//! // rpr-check: allow(<lint-name>): <justification>
//! ```
//!
//! The workspace vendors dependencies offline (no `syn`), so the
//! analysis walks a token stream from the self-contained [`lexer`]
//! rather than an AST; every lint is pinned live by the known-bad /
//! known-good fixture pairs under `fixtures/` ([`selftest`]).

pub mod lexer;
pub mod lints;
pub mod policy;
pub mod report;
pub mod selftest;
pub mod walk;

pub use lints::{check_file, lint_by_name, Finding, LintInfo, LINTS};
pub use policy::{Policy, PolicyError, Value};
pub use report::{render_json, render_lints, render_text, summarize};

use std::path::Path;

/// Runs the full workspace scan: loads files, applies every lint,
/// returns all findings (waived included) plus the scanned-file count.
///
/// # Errors
///
/// Returns the first I/O failure while walking or reading sources.
pub fn check_workspace(root: &Path, policy: &Policy) -> std::io::Result<(Vec<Finding>, usize)> {
    let files = walk::collect_rust_files(root, policy)?;
    let mut findings = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        findings.extend(check_file(rel, &src, policy));
    }
    Ok((findings, files.len()))
}

/// Renders the pinned dynamic-analysis coverage for `tool`
/// (`dynamic.<tool>` in the policy) as `cargo test` argument lines,
/// one per required invocation. `tests` entries are `crate/target`
/// pairs refining the `crates` list; `extra_tests` name workspace-root
/// integration-test targets. Returns `None` when the policy pins
/// nothing for `tool` — CI treats that as a configuration error, so a
/// tool cannot silently drop out of the matrix.
pub fn dynamic_plan(policy: &Policy, tool: &str) -> Option<String> {
    let crates = policy.str_array(&format!("dynamic.{tool}.crates"));
    let tests = policy.str_array(&format!("dynamic.{tool}.tests"));
    let extra = policy.str_array(&format!("dynamic.{tool}.extra_tests"));
    if crates.is_empty() && tests.is_empty() && extra.is_empty() {
        return None;
    }
    let mut lines = Vec::new();
    if tests.is_empty() {
        for c in &crates {
            lines.push(format!("-p {c}"));
        }
    } else {
        for t in &tests {
            match t.split_once('/') {
                Some((krate, target)) => lines.push(format!("-p {krate} --test {target}")),
                None => lines.push(format!("--test {t}")),
            }
        }
    }
    for t in &extra {
        lines.push(format!("--test {t}"));
    }
    Some(lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The workspace itself must pass its own gate: this makes plain
    /// `cargo test -q` catch a violation even before the CI lint job
    /// runs the binary.
    #[test]
    fn workspace_is_clean_under_the_committed_policy() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/check sits two levels below the repo root");
        let policy_text = std::fs::read_to_string(root.join("ci/check_policy.toml"))
            .expect("ci/check_policy.toml exists");
        let policy = Policy::parse(&policy_text).expect("committed policy parses");
        let (findings, scanned) = check_workspace(root, &policy).expect("workspace scan");
        assert!(scanned > 50, "scan must cover the workspace, saw {scanned} files");
        let blocking: Vec<_> = findings.iter().filter(|f| !f.waived).collect();
        assert!(
            blocking.is_empty(),
            "workspace has unwaived findings:\n{}",
            render_text(&findings, scanned)
        );
    }

    fn committed_policy() -> Policy {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/check sits two levels below the repo root");
        let text = std::fs::read_to_string(root.join("ci/check_policy.toml"))
            .expect("ci/check_policy.toml exists");
        Policy::parse(&text).expect("committed policy parses")
    }

    /// Coverage may only be ratcheted UP: every entry below is the
    /// floor the committed policy must keep. Widening a list is fine;
    /// removing any pinned crate, test, or lint scope fails this test
    /// (and therefore plain `cargo test -q` and CI).
    #[test]
    fn policy_ratchet_coverage_never_shrinks() {
        let policy = committed_policy();
        let floor: &[(&str, &[&str])] = &[
            ("lints.panic_surface.include", &[
                "crates/wire/src/",
                "crates/core/src/decoder.rs",
                "crates/core/src/kernels.rs",
                "crates/core/src/pool.rs",
                "crates/testkit/src/wirefault.rs",
                "crates/testkit/src/fault.rs",
                "crates/testkit/src/servefault.rs",
                "crates/serve/src/protocol.rs",
                "crates/serve/src/session.rs",
            ]),
            ("lints.truncating_cast.include", &[
                "crates/wire/src/",
                "crates/core/src/decoder.rs",
                "crates/core/src/kernels.rs",
                "crates/core/src/pool.rs",
                "crates/serve/src/protocol.rs",
            ]),
            ("dynamic.miri.crates", &["rpr-wire", "rpr-core"]),
            ("dynamic.miri.extra_tests", &["panic_freedom"]),
            ("dynamic.asan.crates", &["rpr-wire", "rpr-core", "rpr-serve"]),
            ("dynamic.lsan.crates", &["rpr-wire", "rpr-core", "rpr-serve"]),
            ("dynamic.tsan.crates", &["rpr-stream", "rpr-trace", "rpr-serve"]),
            ("dynamic.loom.crates", &["rpr-stream", "rpr-trace"]),
            ("dynamic.loom.tests", &["rpr-stream/loom_queue", "rpr-trace/loom_gate"]),
        ];
        for (path, required) in floor {
            let got = policy.str_array(path);
            for r in *required {
                assert!(
                    got.iter().any(|g| g == r),
                    "policy ratchet: `{path}` lost pinned entry `{r}` (has {got:?})"
                );
            }
        }
        // The unsafe allowlist ratchets the other way: it must stay
        // empty until someone adds Miri coverage for the new block.
        assert!(
            policy.str_array("lints.unsafe_block.allow").is_empty()
                || !policy.str_array("dynamic.miri.crates").is_empty(),
            "unsafe allowlist entries require Miri coverage"
        );
    }

    /// Every tool in the nightly matrix must resolve to a non-empty
    /// plan, and the plan lines must be well-formed cargo-test args.
    #[test]
    fn dynamic_plans_resolve_for_every_pinned_tool() {
        let policy = committed_policy();
        for tool in ["miri", "asan", "lsan", "tsan", "loom"] {
            let plan = dynamic_plan(&policy, tool)
                .unwrap_or_else(|| panic!("no dynamic coverage pinned for `{tool}`"));
            for line in plan.lines() {
                assert!(
                    line.starts_with("-p ") || line.starts_with("--test "),
                    "malformed plan line for {tool}: `{line}`"
                );
            }
        }
        assert_eq!(dynamic_plan(&committed_policy(), "no-such-tool"), None);
    }
}

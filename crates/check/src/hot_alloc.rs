//! RPR008 hot-path-alloc: the static twin of the `alloc_discipline`
//! runtime test.
//!
//! The chunked kernels and the `BufferPool` steady-state paths must
//! stay allocation-free per frame (DESIGN.md §4g): every buffer comes
//! from the pool, every growth is amortized into pooled capacity.
//! The runtime test asserts this for the workloads it runs; this lint
//! asserts it for every path the call graph can reach from the
//! policy's `lints.hot_path_alloc.entries` (specs like
//! `crates/core/src/kernels.rs::pack_priority_row` or
//! `crates/core/src/pool.rs::BufferPool::get_vec`).
//!
//! Two site classes are denied by default:
//!
//! * `alloc-hard` — always allocates (`Vec::new`, `Box::new`, `vec!`,
//!   `format!`, `.to_vec()`, `.collect()`, …),
//! * `alloc-amortized` — allocates on capacity growth (`.push()`,
//!   `.extend_from_slice()`, `.resize()`, …).
//!
//! Legitimate cold paths (pool miss building a fresh buffer) and
//! growths provably amortized into pooled capacity carry
//! `allow(hot-path-alloc)` waivers with the justification inline.

use crate::callgraph::Graph;
use crate::lints::{Finding, LINTS};
use crate::policy::Policy;
use crate::reach::run_site_lint;

/// Default denied site kinds.
pub const DEFAULT_DENY: &[&str] = &["alloc-hard", "alloc-amortized"];

/// Runs RPR008 over a built graph.
pub fn run(graph: &Graph<'_>, policy: &Policy) -> Vec<Finding> {
    let lint = &LINTS[7];
    debug_assert_eq!(lint.id, "RPR008");
    let specs = policy.str_array("lints.hot_path_alloc.entries");
    if specs.is_empty() {
        return Vec::new();
    }
    let mut entries = Vec::new();
    for spec in &specs {
        entries.extend(graph.resolve_entry(spec));
    }
    let mut deny = policy.str_array("lints.hot_path_alloc.deny");
    if deny.is_empty() {
        deny = DEFAULT_DENY.iter().map(|s| s.to_string()).collect();
    }
    run_site_lint(graph, lint, &entries, &deny, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{Graph, Workspace};

    #[test]
    fn allocs_reachable_from_entries_fire_and_waivers_downgrade() {
        let files = vec![
            (
                "crates/core/src/kernels.rs".to_string(),
                "pub fn pack_row(out: &mut Vec<u8>) { helper(out); }".to_string(),
            ),
            (
                "crates/core/src/util.rs".to_string(),
                "pub fn helper(out: &mut Vec<u8>) {\n\
                 let scratch = Vec::new();\n\
                 // rpr-check: allow(hot-path-alloc): amortized into pooled capacity\n\
                 out.push(1);\n}"
                    .to_string(),
            ),
        ];
        let ws = Workspace::parse(&files);
        let g = Graph::build(&ws);
        let policy = crate::policy::Policy::parse(
            "[lints.hot_path_alloc]\nentries = [\"crates/core/src/kernels.rs::pack_row\"]\n",
        )
        .unwrap();
        let f = run(&g, &policy);
        let blocking: Vec<_> = f.iter().filter(|x| !x.waived).collect();
        let waived: Vec<_> = f.iter().filter(|x| x.waived).collect();
        assert_eq!(blocking.len(), 1, "{f:?}");
        assert!(blocking[0].message.contains("Vec::new"));
        assert_eq!(waived.len(), 1, "{f:?}");
        assert!(waived[0].message.contains("push"));
    }
}

//! Phase 2, part 1: the workspace call graph.
//!
//! [`Workspace::parse`] runs the phase-1 parser over every file;
//! [`Graph::build`] resolves each [`CallSite`] to workspace functions
//! and materialises the edge list the reachability lints traverse.
//!
//! ## Resolution rules (soundness caveats in DESIGN.md §4j)
//!
//! A method call `.name(args)` resolves against every workspace fn
//! with a `self` receiver, matching name and arity (arity matching is
//! lenient when the argument list contains a closure). The candidate
//! set is then narrowed by the receiver's *type evidence*:
//!
//! * `self.name(..)` → the enclosing impl type,
//! * `…field.name(..)` → the union of declared types of any struct
//!   field with that name (caller's file first, then workspace-wide),
//! * `ident.name(..)` → the fn param or typed local of that name,
//! * `Type::name(..)` paths → that type's impls (aliases from `use`
//!   rename resolution applied first).
//!
//! Matching accepts both inherent impls (`self_ty` ∈ evidence) and
//! trait impls/defaults (`trait_name` ∈ evidence), so `dyn Trait` /
//! `impl Trait` receivers resolve to every implementor — an
//! over-approximation, which is the safe direction for reachability.
//!
//! When there is **no** type evidence (an opaque expression receiver
//! or an untyped local), the call resolves only within the caller's
//! own file. This is the engine's one deliberate soundness hole:
//! unhinted cross-file method edges are dropped rather than
//! over-approximated, because name+arity fallback across the whole
//! workspace links every `push`/`get`/`write` to every implementor
//! and drowns real findings. Receivers on lint-critical paths get
//! explicit type annotations in the analyzed code instead.

use crate::lints::{self, Waiver};
use crate::policy::Policy;
use crate::syntax::{parse_file, Callee, FileModel, FnModel, Receiver};
use crate::walk;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// All parsed files of one analysis run.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Parsed per-file models.
    pub files: Vec<FileModel>,
}

impl Workspace {
    /// Parses in-memory `(rel_path, source)` pairs (fixtures, tests).
    pub fn parse(files: &[(String, String)]) -> Workspace {
        Workspace { files: files.iter().map(|(p, s)| parse_file(p, s)).collect() }
    }

    /// Walks the workspace under `root` (honouring the policy's
    /// exclude list) and parses every Rust file.
    ///
    /// # Errors
    ///
    /// Returns the first I/O failure while walking or reading.
    pub fn load(root: &Path, policy: &Policy) -> std::io::Result<Workspace> {
        let rels = walk::collect_rust_files(root, policy)?;
        let mut files = Vec::with_capacity(rels.len());
        for rel in &rels {
            let src = std::fs::read_to_string(root.join(rel))?;
            files.push(parse_file(rel, &src));
        }
        Ok(Workspace { files })
    }
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Target fn id.
    pub to: usize,
    /// Call line in the caller's file (per-edge waivers match here).
    pub line: usize,
    /// Index of the originating [`crate::syntax::CallSite`] in the
    /// caller's `calls` — the lock-order lint reads its held-lock set.
    pub call: usize,
}

/// The workspace call graph: a flat fn table plus resolved edges.
pub struct Graph<'w> {
    /// The parsed workspace.
    pub ws: &'w Workspace,
    /// Flat fn table: `(file index, fn index within file)`.
    pub fns: Vec<(usize, usize)>,
    /// Outgoing edges, parallel to `fns`.
    pub edges: Vec<Vec<Edge>>,
    /// Parsed waiver comments, per file (RPR000 findings discarded —
    /// the token-lint pass owns waiver-syntax enforcement).
    pub(crate) waivers: Vec<Vec<Waiver>>,
}

impl<'w> Graph<'w> {
    /// Resolves every call site in `ws` into the edge list.
    pub fn build(ws: &'w Workspace) -> Graph<'w> {
        let mut fns = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for (xi, _) in file.fns.iter().enumerate() {
                fns.push((fi, xi));
            }
        }
        let idx = Indexes::build(ws, &fns);
        let mut edges = Vec::with_capacity(fns.len());
        for (id, &(fi, xi)) in fns.iter().enumerate() {
            let _ = id;
            let f = &ws.files[fi].fns[xi];
            let mut out: Vec<Edge> = Vec::new();
            for (ci, call) in f.calls.iter().enumerate() {
                let mut targets = resolve_call(ws, &idx, fi, f, call.args, &call.callee);
                targets.sort_unstable();
                targets.dedup();
                for t in targets {
                    out.push(Edge { to: t, line: call.line, call: ci });
                }
            }
            edges.push(out);
        }
        let mut waivers = Vec::with_capacity(ws.files.len());
        for file in &ws.files {
            let mut sink = Vec::new();
            waivers.push(lints::collect_waivers(&file.comments, &file.path, &mut sink));
        }
        Graph { ws, fns, edges, waivers }
    }

    /// The [`FnModel`] behind fn id `id`.
    pub fn model(&self, id: usize) -> &FnModel {
        let (fi, xi) = self.fns[id];
        &self.ws.files[fi].fns[xi]
    }

    /// File index of fn id `id`.
    pub fn file_of(&self, id: usize) -> usize {
        self.fns[id].0
    }

    /// Repo-relative path of the file defining fn id `id`.
    pub fn path_of(&self, id: usize) -> &str {
        &self.ws.files[self.fns[id].0].path
    }

    /// Human-readable qualified name: `file.rs::Type::fn`.
    pub fn display(&self, id: usize) -> String {
        let f = self.model(id);
        match &f.self_ty {
            Some(t) => format!("{}::{}::{}", self.path_of(id), t, f.name),
            None => format!("{}::{}", self.path_of(id), f.name),
        }
    }

    /// True when `lint_names` has a waiver covering `line` of the file
    /// at index `fi`. Returns the justification of the first match.
    pub fn waived(&self, fi: usize, line: usize, lint_names: &[&str]) -> Option<&str> {
        self.waivers[fi]
            .iter()
            .find(|w| lint_names.contains(&w.lint.as_str()) && w.lines.contains(&line))
            .map(|w| w.reason.as_str())
    }

    /// Resolves an entry spec `path/file.rs::Type::fn` or
    /// `path/file.rs::fn` to fn ids (several for duplicate names).
    pub fn resolve_entry(&self, spec: &str) -> Vec<usize> {
        let Some(pos) = spec.find(".rs::") else { return Vec::new() };
        let file = &spec[..pos + 3];
        let rest: Vec<&str> = spec[pos + 5..].split("::").collect();
        let (ty, name) = match rest.as_slice() {
            [name] => (None, *name),
            [ty, name] => (Some(*ty), *name),
            _ => return Vec::new(),
        };
        (0..self.fns.len())
            .filter(|&id| {
                let f = self.model(id);
                self.path_of(id) == file
                    && f.name == name
                    && match ty {
                        Some(t) => f.self_ty.as_deref() == Some(t),
                        None => true,
                    }
            })
            .collect()
    }

    /// Entry points for a scope list: every `pub`, non-test fn defined
    /// in a file matching the include list.
    pub fn entries_in_scope(&self, include: &[String]) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&id| {
                let f = self.model(id);
                f.is_pub && !f.is_test && lints::in_set(self.path_of(id), include)
            })
            .collect()
    }
}

/// Lookup tables for resolution.
struct Indexes {
    /// Methods (`has_self`) by name.
    methods: BTreeMap<String, Vec<usize>>,
    /// Free fns / assoc fns (no self) by name.
    free: BTreeMap<String, Vec<usize>>,
    /// `(self_ty, name)` → fn ids (both methods and assoc fns).
    impls: BTreeMap<(String, String), Vec<usize>>,
    /// `(trait_name, name)` → fn ids.
    traits: BTreeMap<(String, String), Vec<usize>>,
    /// Field name → declared type segments, workspace-wide union.
    fields: BTreeMap<String, Vec<String>>,
}

impl Indexes {
    fn build(ws: &Workspace, fns: &[(usize, usize)]) -> Indexes {
        let mut idx = Indexes {
            methods: BTreeMap::new(),
            free: BTreeMap::new(),
            impls: BTreeMap::new(),
            traits: BTreeMap::new(),
            fields: BTreeMap::new(),
        };
        for (id, &(fi, xi)) in fns.iter().enumerate() {
            let f = &ws.files[fi].fns[xi];
            if f.has_self {
                idx.methods.entry(f.name.clone()).or_default().push(id);
            } else {
                idx.free.entry(f.name.clone()).or_default().push(id);
            }
            if let Some(t) = &f.self_ty {
                idx.impls.entry((t.clone(), f.name.clone())).or_default().push(id);
            }
            if let Some(t) = &f.trait_name {
                idx.traits.entry((t.clone(), f.name.clone())).or_default().push(id);
            }
        }
        for file in &ws.files {
            for s in &file.structs {
                for (fname, segs) in &s.fields {
                    idx.fields.entry(fname.clone()).or_default().extend(segs.iter().cloned());
                }
            }
        }
        idx
    }
}

/// Lenient arity check: `None` call args (closure in the list) match
/// anything; otherwise the counts must agree.
fn arity_ok(f: &FnModel, args: Option<usize>) -> bool {
    match args {
        None => true,
        Some(n) => f.arity() == n,
    }
}

/// Type evidence for a method receiver: the set of type/trait names it
/// may be. `None` = no evidence (resolve file-locally only).
fn receiver_evidence(
    ws: &Workspace,
    idx: &Indexes,
    fi: usize,
    caller: &FnModel,
    recv: &Receiver,
) -> Option<BTreeSet<String>> {
    match recv {
        Receiver::SelfDot => caller.self_ty.clone().map(|t| BTreeSet::from([t])),
        Receiver::Field(f) => {
            // Caller's file first — its structs are the likely owners.
            let mut set = BTreeSet::new();
            for s in &ws.files[fi].structs {
                for (fname, segs) in &s.fields {
                    if fname == f {
                        set.extend(segs.iter().cloned());
                    }
                }
            }
            if set.is_empty() {
                if let Some(segs) = idx.fields.get(f) {
                    set.extend(segs.iter().cloned());
                }
            }
            if set.is_empty() {
                None
            } else {
                Some(set)
            }
        }
        Receiver::Ident(x) => {
            if let Some((_, segs)) = caller.params.iter().find(|(n, _)| n == x) {
                return Some(segs.iter().cloned().collect());
            }
            if let Some((_, segs)) = caller.locals.iter().find(|(n, _)| n == x) {
                return Some(segs.iter().cloned().collect());
            }
            if x.chars().next().map(char::is_uppercase).unwrap_or(false) {
                return Some(BTreeSet::from([x.clone()]));
            }
            None
        }
        Receiver::Expr => None,
    }
}

/// Resolves one call site to workspace fn ids.
fn resolve_call(
    ws: &Workspace,
    idx: &Indexes,
    fi: usize,
    caller: &FnModel,
    args: Option<usize>,
    callee: &Callee,
) -> Vec<usize> {
    match callee {
        Callee::Method { name, recv } => {
            let Some(pool) = idx.methods.get(name) else { return Vec::new() };
            let evidence = receiver_evidence(ws, idx, fi, caller, recv);
            pool.iter()
                .copied()
                .filter(|&id| {
                    let (tfi, txi) = fn_loc(ws, id);
                    let f = &ws.files[tfi].fns[txi];
                    if !arity_ok(f, args) {
                        return false;
                    }
                    match &evidence {
                        Some(types) => {
                            f.self_ty.as_ref().map(|t| types.contains(t)).unwrap_or(false)
                                || f.trait_name
                                    .as_ref()
                                    .map(|t| types.contains(t))
                                    .unwrap_or(false)
                        }
                        // No evidence: same-file candidates only.
                        None => tfi == fi,
                    }
                })
                .collect()
        }
        Callee::Free(segs) => match segs.as_slice() {
            [] => Vec::new(),
            [name] => {
                // A closure variable called as `f(x)` is not a free fn.
                if caller.params.iter().any(|(n, _)| n == name)
                    || caller.locals.iter().any(|(n, _)| n == name)
                {
                    return Vec::new();
                }
                let Some(pool) = idx.free.get(name) else { return Vec::new() };
                let same_file: Vec<usize> = pool
                    .iter()
                    .copied()
                    .filter(|&id| fn_loc(ws, id).0 == fi && arity_ok(model_of(ws, id), args))
                    .collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                pool.iter().copied().filter(|&id| arity_ok(model_of(ws, id), args)).collect()
            }
            path => {
                let name = path[path.len() - 1].clone();
                let mut qual = path[path.len() - 2].clone();
                if qual == "Self" {
                    if let Some(t) = &caller.self_ty {
                        qual = t.clone();
                    }
                }
                // Resolve `use … as alias` renames on the qualifier.
                if let Some((_, full)) = ws.files[fi].uses.iter().find(|(k, _)| *k == qual) {
                    if let Some(real) = full.last() {
                        qual = real.clone();
                    }
                }
                // Primitive qualifiers (`u64::from`, `f32::max`) are
                // type paths, not modules — nothing in the workspace
                // implements on primitives, so they are external.
                const PRIMITIVES: &[&str] = &[
                    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64",
                    "i128", "isize", "f32", "f64", "bool", "char", "str",
                ];
                if PRIMITIVES.contains(&qual.as_str()) {
                    return Vec::new();
                }
                if qual.chars().next().map(char::is_uppercase).unwrap_or(false) {
                    let mut out: Vec<usize> = Vec::new();
                    for key in [&idx.impls, &idx.traits] {
                        if let Some(ids) = key.get(&(qual.clone(), name.clone())) {
                            out.extend(
                                ids.iter().copied().filter(|&id| arity_ok(model_of(ws, id), args)),
                            );
                        }
                    }
                    out
                } else {
                    // `module::fn`: prefer fns in files under that
                    // module. Crate-qualified calls follow the
                    // workspace convention `rpr_xyz` → `crates/xyz/`.
                    let Some(pool) = idx.free.get(&name) else { return Vec::new() };
                    let crate_dir = qual.strip_prefix("rpr_").map(|c| format!("crates/{c}/"));
                    let scoped: Vec<usize> = pool
                        .iter()
                        .copied()
                        .filter(|&id| {
                            let p = &ws.files[fn_loc(ws, id).0].path;
                            (p.contains(&format!("/{qual}/"))
                                || p.ends_with(&format!("/{qual}.rs"))
                                || *p == format!("{qual}.rs")
                                || p.starts_with(&format!("{qual}/"))
                                || crate_dir.as_deref().map(|d| p.starts_with(d)).unwrap_or(false))
                                && arity_ok(model_of(ws, id), args)
                        })
                        .collect();
                    // No matching workspace module → std / external
                    // (`mem::swap`, `thread::sleep`): no edge, rather
                    // than a false link to every same-named free fn.
                    scoped
                }
            }
        },
    }
}

fn fn_loc(ws: &Workspace, id: usize) -> (usize, usize) {
    // Recompute the flat index lazily: ids are assigned in file order.
    let mut id = id;
    for (fi, file) in ws.files.iter().enumerate() {
        if id < file.fns.len() {
            return (fi, id);
        }
        id -= file.fns.len();
    }
    panic!("fn id out of range");
}

fn model_of(ws: &Workspace, id: usize) -> &FnModel {
    let (fi, xi) = fn_loc(ws, id);
    &ws.files[fi].fns[xi]
}

/// Convenience for lints: run a full load+build and discard the
/// intermediate workspace lifetime by returning findings directly.
pub fn with_graph<T>(
    root: &Path,
    policy: &Policy,
    f: impl FnOnce(&Graph<'_>) -> T,
) -> std::io::Result<T> {
    let ws = Workspace::load(root, policy)?;
    let g = Graph::build(&ws);
    Ok(f(&g))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::parse(
            &files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect::<Vec<_>>(),
        )
    }

    fn edge_names(g: &Graph<'_>, from: &str) -> Vec<String> {
        let id = (0..g.fns.len()).find(|&i| g.model(i).name == from).unwrap();
        let mut v: Vec<String> =
            g.edges[id].iter().map(|e| g.model(e.to).name.clone()).collect();
        v.sort();
        v
    }

    #[test]
    fn free_and_path_calls_resolve_across_files() {
        let w = ws(&[
            ("a.rs", "pub fn entry() { helper(); other::deep(1); Pool::make(); }"),
            ("other.rs", "pub fn deep(x: u32) {}"),
            ("pool.rs", "pub struct Pool; impl Pool { pub fn make() -> Pool { Pool } }"),
            ("unrelated.rs", "pub fn deep(x: u32, y: u32) {}"),
        ]);
        let g = Graph::build(&w);
        // Arity separates the two `deep`s; `Pool::make` is an impl
        // hit; `helper` has no definition anywhere → no edge.
        assert_eq!(edge_names(&g, "entry"), vec!["deep", "make"]);
        let deep_id = g.edges[0].iter().find(|e| g.model(e.to).name == "deep").unwrap().to;
        assert_eq!(g.path_of(deep_id), "other.rs");
    }

    #[test]
    fn method_calls_follow_field_and_param_evidence() {
        let w = ws(&[
            (
                "serve.rs",
                "pub struct Entry { queue: Arc<StageQueue<u8>> }\n\
                 impl Server { fn go(&self, e: Entry) { e.queue.push(1); } }\n\
                 impl Server { fn direct(&self, q: StageQueue<u8>) { q.pop(); } }",
            ),
            (
                "queue.rs",
                "pub struct StageQueue<T> { x: T }\n\
                 impl<T> StageQueue<T> { pub fn push(&self, v: T) {} pub fn pop(&self) {} }",
            ),
            ("vecish.rs", "pub struct Other; impl Other { pub fn push(&self, v: u8) {} }"),
        ]);
        let g = Graph::build(&w);
        // Field evidence names StageQueue, not Other.
        let go_edges = edge_names(&g, "go");
        assert_eq!(go_edges, vec!["push"]);
        let push_id = {
            let id = (0..g.fns.len()).find(|&i| g.model(i).name == "go").unwrap();
            g.edges[id][0].to
        };
        assert_eq!(g.path_of(push_id), "queue.rs");
        assert_eq!(edge_names(&g, "direct"), vec!["pop"]);
    }

    #[test]
    fn self_calls_resolve_to_own_impl_and_unhinted_stay_file_local() {
        let w = ws(&[
            (
                "a.rs",
                "impl S { fn outer(&self) { self.inner(); mystery().work(); } \
                          fn inner(&self) {} fn work(&self) {} }",
            ),
            ("b.rs", "impl T { pub fn work(&self) {} pub fn inner(&self) {} }"),
        ]);
        let g = Graph::build(&w);
        let outer = edge_names(&g, "outer");
        // `self.inner()` → S::inner only; `mystery().work()` has no
        // evidence → file-local candidates only (S::work).
        assert_eq!(outer, vec!["inner", "work"]);
        let id = (0..g.fns.len()).find(|&i| g.model(i).name == "outer").unwrap();
        for e in &g.edges[id] {
            assert_eq!(g.path_of(e.to), "a.rs");
        }
    }

    #[test]
    fn typed_locals_give_cross_file_evidence() {
        let w = ws(&[
            ("a.rs", "fn f() { let q = StageQueue::new(); q.push(1); }"),
            (
                "q.rs",
                "pub struct StageQueue; impl StageQueue { pub fn new() -> Self { StageQueue } \
                 pub fn push(&self, v: u8) {} }",
            ),
        ]);
        let g = Graph::build(&w);
        assert_eq!(edge_names(&g, "f"), vec!["new", "push"]);
    }

    #[test]
    fn trait_impls_resolve_for_dyn_receivers() {
        let w = ws(&[
            (
                "a.rs",
                "pub struct Holder { sink: Box<dyn Sink> }\n\
                 impl Holder { fn f(&self) { self.sink.emit(1); } }",
            ),
            ("t.rs", "pub trait Sink { fn emit(&self, v: u8); }"),
            ("i1.rs", "impl Sink for FileSink { fn emit(&self, v: u8) { blocking_write(); } }"),
            ("i2.rs", "impl Sink for NullSink { fn emit(&self, v: u8) {} }"),
        ]);
        let g = Graph::build(&w);
        // Over-approximation: both implementors are edges.
        let id = (0..g.fns.len()).find(|&i| g.model(i).name == "f").unwrap();
        let mut files: Vec<&str> = g.edges[id].iter().map(|e| g.path_of(e.to)).collect();
        files.sort();
        assert_eq!(files, vec!["i1.rs", "i2.rs"]);
    }

    /// Documented resolution limit (DESIGN.md §4j): a closure passed
    /// as a parameter is opaque — `f()` on a closure param produces no
    /// edge (the closure's own body is analyzed at its definition
    /// site, inside the defining fn, so its sites are still seen).
    #[test]
    fn closure_params_are_opaque_but_their_bodies_are_not() {
        let w = ws(&[
            (
                "a.rs",
                "pub fn driver() { each(|x| helper(x)); }\n\
                 pub fn each(f: impl FnMut(u8)) { f(1); }\n\
                 pub fn helper(x: u8) {}",
            ),
        ]);
        let g = Graph::build(&w);
        // `f(1)` inside `each` resolves to nothing: `f` is a param.
        assert_eq!(edge_names(&g, "each"), Vec::<String>::new());
        // The closure body's `helper(x)` call is attributed to the
        // defining fn, so driver still links to helper (and to each).
        assert_eq!(edge_names(&g, "driver"), vec!["each", "helper"]);
    }

    /// Documented resolution limit (DESIGN.md §4j): generic
    /// trait-bound receivers carry no type evidence the model tracks
    /// (`impl Trait` params record the trait name), so the call fans
    /// out to every implementor — over-approximation, never a drop.
    #[test]
    fn generic_trait_bound_receivers_fan_out_to_every_impl() {
        let w = ws(&[
            ("a.rs", "pub fn run(s: &mut impl Sink) { s.emit(1); }"),
            ("t.rs", "pub trait Sink { fn emit(&self, v: u8); }"),
            ("i1.rs", "impl Sink for FileSink { fn emit(&self, v: u8) {} }"),
            ("i2.rs", "impl Sink for NullSink { fn emit(&self, v: u8) {} }"),
        ]);
        let g = Graph::build(&w);
        let id = (0..g.fns.len()).find(|&i| g.model(i).name == "run").unwrap();
        let mut files: Vec<&str> = g.edges[id].iter().map(|e| g.path_of(e.to)).collect();
        files.sort();
        assert_eq!(files, vec!["i1.rs", "i2.rs"]);
    }

    #[test]
    fn entry_specs_resolve_typed_and_free() {
        let w = ws(&[(
            "crates/serve/src/server.rs",
            "impl Server { pub fn step(&self) {} } pub fn boot() {}",
        )]);
        let g = Graph::build(&w);
        assert_eq!(g.resolve_entry("crates/serve/src/server.rs::Server::step").len(), 1);
        assert_eq!(g.resolve_entry("crates/serve/src/server.rs::boot").len(), 1);
        assert_eq!(g.resolve_entry("crates/serve/src/server.rs::Server::missing").len(), 0);
        assert_eq!(g.resolve_entry("nonsense").len(), 0);
    }

    #[test]
    fn use_aliases_requalify_path_calls() {
        let w = ws(&[
            ("a.rs", "use q::StageQueue as SQ;\nfn f() { SQ::new(); }"),
            ("q.rs", "pub struct StageQueue; impl StageQueue { pub fn new() -> Self { StageQueue } }"),
        ]);
        let g = Graph::build(&w);
        assert_eq!(edge_names(&g, "f"), vec!["new"]);
    }
}

//! The check policy: which files each lint covers, which files are
//! allowlisted, and which crates/tests each dynamic-analysis tool must
//! run over (`ci/check_policy.toml`).
//!
//! The workspace vendors dependencies offline and carries no TOML
//! crate, so this module includes a parser for the small TOML subset
//! the policy file uses: `[dotted.table]` headers, `key = "string"`,
//! `key = ["array", "of", "strings"]`, `key = true/false`, integers,
//! and `#` comments. Anything outside that subset is a hard error —
//! a policy file that silently half-parses would be a gate that
//! silently stops gating.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed policy value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An array of quoted strings.
    StrArray(Vec<String>),
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
}

/// Policy-file failure, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyError {
    /// 1-based line of the defect (0 for file-level problems).
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for PolicyError {}

/// The parsed policy: a flat map from dotted key path (table header +
/// key) to value, plus typed accessors for the sections rpr-check and
/// the policy-ratchet tests read.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Policy {
    entries: BTreeMap<String, Value>,
}

impl Policy {
    /// Parses policy text.
    ///
    /// # Errors
    ///
    /// [`PolicyError`] naming the first malformed line.
    pub fn parse(text: &str) -> Result<Self, PolicyError> {
        let mut entries = BTreeMap::new();
        let mut table = String::new();
        let raw_lines: Vec<&str> = text.lines().collect();
        let mut idx = 0usize;
        while idx < raw_lines.len() {
            let line_no = idx + 1;
            let mut line = strip_comment(raw_lines[idx]).trim().to_string();
            idx += 1;
            // Multi-line arrays: keep appending lines until the bracket
            // closes (quotes respected by strip_comment's caller-side
            // balance check below).
            while line.contains('=')
                && open_brackets(&line) > 0
                && idx < raw_lines.len()
            {
                line.push(' ');
                line.push_str(strip_comment(raw_lines[idx]).trim());
                idx += 1;
            }
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header.strip_suffix(']').ok_or_else(|| PolicyError {
                    line: line_no,
                    reason: "table header missing closing ]".into(),
                })?;
                table = parse_header(header, line_no)?;
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| PolicyError {
                line: line_no,
                reason: format!("expected `key = value`, got `{line}`"),
            })?;
            let key = parse_key(key.trim(), line_no)?;
            let value = parse_value(value.trim(), line_no)?;
            let full = if table.is_empty() { key } else { format!("{table}.{key}") };
            if entries.insert(full.clone(), value).is_some() {
                return Err(PolicyError {
                    line: line_no,
                    reason: format!("duplicate key `{full}`"),
                });
            }
        }
        Ok(Policy { entries })
    }

    /// Raw lookup by dotted path.
    pub fn get(&self, path: &str) -> Option<&Value> {
        self.entries.get(path)
    }

    /// A string-array value, or empty when absent.
    pub fn str_array(&self, path: &str) -> Vec<String> {
        match self.entries.get(path) {
            Some(Value::StrArray(v)) => v.clone(),
            Some(Value::Str(s)) => vec![s.clone()],
            _ => Vec::new(),
        }
    }

    /// All dotted paths under a prefix (e.g. every pinned-ordering
    /// file under `lints.atomic_ordering.pinned.`).
    pub fn keys_under(&self, prefix: &str) -> Vec<String> {
        self.entries
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }
}

/// Net count of `[` minus `]` outside quoted strings — positive while
/// a multi-line array is still open.
fn open_brackets(line: &str) -> i32 {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in line.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Strips a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parses a table header body: dotted segments, each bare or quoted.
fn parse_header(header: &str, line_no: usize) -> Result<String, PolicyError> {
    let mut out = Vec::new();
    let mut rest = header.trim();
    while !rest.is_empty() {
        if let Some(r) = rest.strip_prefix('"') {
            let end = r.find('"').ok_or_else(|| PolicyError {
                line: line_no,
                reason: "unterminated quoted table segment".into(),
            })?;
            out.push(r[..end].to_string());
            rest = r[end + 1..].trim_start().strip_prefix('.').unwrap_or(&r[end + 1..]).trim_start();
            if rest.starts_with('.') {
                rest = rest[1..].trim_start();
            }
        } else {
            let end = rest.find('.').unwrap_or(rest.len());
            let seg = rest[..end].trim();
            if seg.is_empty() {
                return Err(PolicyError {
                    line: line_no,
                    reason: "empty table segment".into(),
                });
            }
            out.push(seg.to_string());
            rest = if end == rest.len() { "" } else { rest[end + 1..].trim_start() };
        }
    }
    Ok(out.join("."))
}

/// Parses a key: bare or quoted.
fn parse_key(key: &str, line_no: usize) -> Result<String, PolicyError> {
    if let Some(r) = key.strip_prefix('"') {
        let inner = r.strip_suffix('"').ok_or_else(|| PolicyError {
            line: line_no,
            reason: "unterminated quoted key".into(),
        })?;
        return Ok(inner.to_string());
    }
    if key.is_empty() || !key.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '-') {
        return Err(PolicyError { line: line_no, reason: format!("invalid key `{key}`") });
    }
    Ok(key.to_string())
}

/// Parses a value: string, string array, bool, or integer.
fn parse_value(v: &str, line_no: usize) -> Result<Value, PolicyError> {
    if v == "true" {
        return Ok(Value::Bool(true));
    }
    if v == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = v.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| PolicyError {
            line: line_no,
            reason: "array must open and close on one line".into(),
        })?;
        let mut items = Vec::new();
        for part in split_array(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, line_no)? {
                Value::Str(s) => items.push(s),
                _ => {
                    return Err(PolicyError {
                        line: line_no,
                        reason: format!("arrays may hold only strings, got `{part}`"),
                    })
                }
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Some(inner) = v.strip_prefix('"') {
        let inner = inner.strip_suffix('"').ok_or_else(|| PolicyError {
            line: line_no,
            reason: "unterminated string value".into(),
        })?;
        if inner.contains('"') {
            return Err(PolicyError {
                line: line_no,
                reason: "embedded quotes are outside the supported TOML subset".into(),
            });
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if let Ok(n) = v.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Err(PolicyError { line: line_no, reason: format!("unsupported value `{v}`") })
}

/// Splits array contents on commas outside quotes.
fn split_array(inner: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in inner.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_supported_subset() {
        let p = Policy::parse(
            r#"
            # top comment
            version = 1
            [lints.panic_surface]
            include = ["crates/wire/src/", "crates/core/src/decoder.rs"] # trailing
            [lints.atomic_ordering.pinned."crates/trace/src/gate.rs"]
            allowed = ["Relaxed", "Release"]
            blocking = true
            "#,
        )
        .unwrap();
        assert_eq!(p.get("version"), Some(&Value::Int(1)));
        assert_eq!(
            p.str_array("lints.panic_surface.include"),
            vec!["crates/wire/src/", "crates/core/src/decoder.rs"]
        );
        assert_eq!(
            p.str_array("lints.atomic_ordering.pinned.crates/trace/src/gate.rs.allowed"),
            vec!["Relaxed", "Release"]
        );
        assert_eq!(
            p.get("lints.atomic_ordering.pinned.crates/trace/src/gate.rs.blocking"),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn multi_line_arrays_parse() {
        let p = Policy::parse(
            "[lints.panic_surface]\ninclude = [\n    \"a/\", # dir\n    \"b.rs\",\n]\nafter = 1\n",
        )
        .unwrap();
        assert_eq!(p.str_array("lints.panic_surface.include"), vec!["a/", "b.rs"]);
        assert_eq!(p.get("lints.panic_surface.after"), Some(&Value::Int(1)));
    }

    #[test]
    fn malformed_lines_are_hard_errors() {
        for bad in [
            "key",
            "[unclosed",
            "a = [\"x\"",
            "a = \"unterminated",
            "a = {inline = 1}",
            "k k = 1",
        ] {
            assert!(Policy::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        assert!(Policy::parse("a = 1\na = 2").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let p = Policy::parse("a = \"x#y\"").unwrap();
        assert_eq!(p.get("a"), Some(&Value::Str("x#y".into())));
    }

    #[test]
    fn keys_under_lists_pinned_files() {
        let p = Policy::parse(
            "[lints.atomic_ordering.pinned.\"a.rs\"]\nallowed = [\"Relaxed\"]\n",
        )
        .unwrap();
        let keys = p.keys_under("lints.atomic_ordering.pinned.");
        assert_eq!(keys, vec!["lints.atomic_ordering.pinned.a.rs.allowed"]);
    }
}

//! A minimal Rust lexer: just enough token structure for the project
//! lints, with zero dependencies.
//!
//! The workspace vendors its third-party crates offline and carries no
//! `syn`, so rpr-check walks a token stream instead of an AST. The
//! lexer's contract is narrow but load-bearing: **nothing inside a
//! comment, string, char literal, or doc comment may ever surface as a
//! code token** — otherwise a string like `"call .unwrap() here"`
//! would trip the panic-surface lint. Comments are lexed too (the
//! waiver syntax lives in them), tagged with whether they stand alone
//! on their line.

/// One significant token of a Rust source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `as`, `unsafe`, …).
    Ident(String),
    /// A single punctuation character (`.`, `[`, `!`, …).
    Punct(char),
    /// Numeric literal (value irrelevant to every lint).
    Num,
    /// String / byte-string / raw-string literal.
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`), distinguished from char literals.
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: usize,
}

/// A comment (line or block), carrying the text the waiver scanner
/// inspects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/* */` framing.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// True when nothing but whitespace precedes the comment on its
    /// line — such a comment's waivers also cover the next line.
    pub standalone: bool,
}

/// Lexer output: the significant tokens and every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Unterminated constructs (string running to EOF)
/// are tolerated: the lexer consumes to EOF rather than erroring, so a
/// half-written file still lints.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut line_has_code = false;

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    text: b[start..j].iter().collect(),
                    line,
                    standalone: !line_has_code,
                });
                i = j;
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let standalone = !line_has_code;
                let mut depth = 1;
                let mut j = i + 2;
                let text_start = j;
                while j < b.len() && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && b.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && b.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let text_end = j.saturating_sub(2).max(text_start);
                out.comments.push(Comment {
                    text: b[text_start..text_end].iter().collect(),
                    line: start_line,
                    standalone,
                });
                // A single-line block comment must not erase the fact
                // that code already appeared on this line — otherwise a
                // trailing `//` waiver after `/* c */ code;` would look
                // standalone and over-waive the NEXT line. Only a
                // multi-line comment starts a fresh code-free line.
                if line != start_line {
                    line_has_code = false;
                }
                i = j;
            }
            '"' => {
                i = consume_string(&b, i, &mut line);
                out.toks.push(Tok { kind: TokKind::Str, line });
                line_has_code = true;
            }
            'r' | 'b' | 'c' if is_string_prefix(&b, i) => {
                let start_line = line;
                i = consume_prefixed_string(&b, i, &mut line);
                out.toks.push(Tok { kind: TokKind::Str, line: start_line });
                line_has_code = true;
            }
            // Raw identifier `r#ident`: a keyword escaped as a plain
            // name. Lexed as one Ident with the `r#` retained so it can
            // never be confused with the keyword itself (a field named
            // `r#unsafe` is not an `unsafe` block).
            'r' if b.get(i + 1) == Some(&'#')
                && matches!(b.get(i + 2), Some(c) if c.is_alphabetic() || *c == '_') =>
            {
                let mut j = i + 2;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                let ident: String = b[i..j].iter().collect();
                out.toks.push(Tok { kind: TokKind::Ident(ident), line });
                line_has_code = true;
                i = j;
            }
            '\'' => {
                // Lifetime vs char literal: a lifetime is `'` + ident
                // chars NOT followed by a closing `'`.
                let mut j = i + 1;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                let is_lifetime = j > i + 1 && b.get(j) != Some(&'\'');
                if is_lifetime {
                    out.toks.push(Tok { kind: TokKind::Lifetime, line });
                    i = j;
                } else {
                    i = consume_char_literal(&b, i, &mut line);
                    out.toks.push(Tok { kind: TokKind::Char, line });
                }
                line_has_code = true;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                let ident: String = b[i..j].iter().collect();
                out.toks.push(Tok { kind: TokKind::Ident(ident), line });
                line_has_code = true;
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                // Numbers may embed `_`, type suffixes, hex chars, and
                // exponents; over-consuming alphanumerics is safe here.
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_' || b[j] == '.') {
                    // A `..` range after a number is punctuation.
                    if b[j] == '.' && b.get(j + 1) == Some(&'.') {
                        break;
                    }
                    j += 1;
                }
                out.toks.push(Tok { kind: TokKind::Num, line });
                line_has_code = true;
                i = j;
            }
            c => {
                out.toks.push(Tok { kind: TokKind::Punct(c), line });
                line_has_code = true;
                i += 1;
            }
        }
    }
    out
}

/// True when position `i` starts a string with a prefix: `r"`, `r#"`,
/// `b"`, `br"`, `b'`… (only the forms that begin string-ish literals).
/// Hashes are looked through to the quote: `r#ident` is a raw
/// *identifier*, not a string, and must not be consumed as one.
fn is_string_prefix(b: &[char], i: usize) -> bool {
    match b[i] {
        'r' => hashes_then_quote(b, i + 1),
        'b' | 'c' => match b.get(i + 1) {
            Some('"') | Some('\'') => true,
            Some('r') => hashes_then_quote(b, i + 2),
            _ => false,
        },
        _ => false,
    }
}

/// True when position `j` holds zero or more `#` followed by `"`.
fn hashes_then_quote(b: &[char], mut j: usize) -> bool {
    while b.get(j) == Some(&'#') {
        j += 1;
    }
    b.get(j) == Some(&'"')
}

/// Consumes a plain `"…"` string starting at `i` (the quote). Returns
/// the index past the closing quote.
fn consume_string(b: &[char], i: usize, line: &mut usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Consumes a `'…'` char literal starting at `i`. Returns the index
/// past the closing quote.
fn consume_char_literal(b: &[char], i: usize, line: &mut usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Consumes a prefixed string (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
/// `b'…'`, `c"…"`) starting at the prefix. Returns the index past it.
fn consume_prefixed_string(b: &[char], i: usize, line: &mut usize) -> usize {
    let mut j = i;
    // Skip the alphabetic prefix (r, b, c, br, cr).
    while j < b.len() && b[j].is_alphabetic() {
        j += 1;
    }
    // Byte char literal b'x'.
    if b.get(j) == Some(&'\'') {
        return consume_char_literal(b, j, line);
    }
    // Raw hashes.
    let mut hashes = 0usize;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&'"') {
        return j; // Not actually a string; treat prefix as consumed.
    }
    j += 1;
    if hashes == 0 && !raw_prefix(b, i) {
        // Ordinary escaped string with a b/c prefix.
        loop {
            match b.get(j) {
                None => return j,
                Some('\\') => j += 2,
                Some('\n') => {
                    *line += 1;
                    j += 1;
                }
                Some('"') => return j + 1,
                _ => j += 1,
            }
        }
    }
    // Raw string: ends at `"` followed by `hashes` hash marks.
    loop {
        match b.get(j) {
            None => return j,
            Some('\n') => {
                *line += 1;
                j += 1;
            }
            Some('"') => {
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && b.get(k) == Some(&'#') {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return k;
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
}

/// True when the literal starting at `i` carries an `r` (raw) prefix.
fn raw_prefix(b: &[char], i: usize) -> bool {
    b[i] == 'r' || (matches!(b[i], 'b' | 'c') && b.get(i + 1) == Some(&'r'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "call .unwrap() here"; // unwrap in comment
            /* unwrap */ let b = r#"unwrap"#;
        "##;
        assert_eq!(idents(src), vec!["let", "a", "let", "b"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap in comment"));
        assert!(!lexed.comments[0].standalone);
        assert!(lexed.comments[1].standalone);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = lexed.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn nested_block_comments_terminate() {
        let src = "/* outer /* inner */ still outer */ fn main() {}";
        assert_eq!(idents(src), vec!["fn", "main"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_strings() {
        let src = "let s = \"line\none\";\nlet t = 2;";
        let lexed = lex(src);
        let t = lexed
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("t".into()))
            .unwrap();
        assert_eq!(t.line, 3);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a\"unwrap\"b"; let x = 1;"#;
        assert_eq!(idents(src), vec!["let", "s", "let", "x"]);
    }

    #[test]
    fn byte_and_raw_strings_consume_correctly() {
        let src = r###"let a = b"unwrap"; let b = br#"expect"#; let c = b'x';"###;
        assert_eq!(idents(src), vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn raw_strings_with_hashes_hide_fabricated_panics() {
        // A `"#` inside a `r##"…"##` literal must not end it early and
        // leak the tail as code tokens.
        let src = r####"let a = r##"has "# inner .unwrap() and panic!"##; let b = 1;"####;
        assert_eq!(idents(src), vec!["let", "a", "let", "b"]);
        // `cr#"…"#` C-string raw literals consume the same way.
        let src2 = r###"let a = cr#"x.unwrap()"#; let b = 1;"###;
        assert_eq!(idents(src2), vec!["let", "a", "let", "b"]);
        // Unterminated raw string at EOF swallows the rest, no panic.
        let src3 = "let a = r#\"fell off .unwrap()";
        assert_eq!(idents(src3), vec!["let", "a"]);
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let src = "let r#type = 1; r#fn(); let x = r#unsafe;";
        let lexed = lex(src);
        assert!(
            lexed.toks.iter().all(|t| t.kind != TokKind::Str),
            "raw identifiers must not lex as string literals: {:?}",
            lexed.toks
        );
        // The `r#` stays in the name so `r#unsafe` can never be
        // mistaken for the `unsafe` keyword by the unsafe-block lint.
        assert_eq!(
            idents(src),
            vec!["let", "r#type", "r#fn", "let", "x", "r#unsafe"]
        );
    }

    #[test]
    fn fabricated_waiver_inside_raw_string_is_not_a_comment() {
        let src = r###"let a = r#"// rpr-check: allow(panic-surface): fake"#; v.unwrap();"###;
        let lexed = lex(src);
        assert!(lexed.comments.is_empty(), "string contents must never become comments");
        assert!(idents(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn single_line_block_comment_keeps_trailing_comments_non_standalone() {
        // The trailing `//` comment sits on a line that HAS code; it
        // must not be standalone, or its waiver would cover line 2.
        let src = "/* c */ v.unwrap(); // rpr-check: allow(panic-surface): this line only\nw.unwrap();";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].standalone, "block comment starts the line");
        assert!(
            !lexed.comments[1].standalone,
            "trailing comment after code must not cover the next line"
        );
        // A multi-line block comment, by contrast, leaves the current
        // line code-free, so a comment after it IS standalone.
        let src2 = "/* a\nb */ // rpr-check: allow(panic-surface): next line\nv.unwrap();";
        let lexed2 = lex(src2);
        assert!(lexed2.comments[1].standalone);
    }

    #[test]
    fn deeply_nested_block_comments_hide_contents() {
        let src = "/* 1 /* 2 /* panic!() */ .unwrap() */ v[0] */ let a = 1;";
        assert_eq!(idents(src), vec!["let", "a"]);
        // Sequential close-open `*/*` inside: ends where rustc ends.
        let src2 = "/* a /*/ b */ c */ let ok = 1;";
        assert_eq!(idents(src2), vec!["let", "ok"]);
    }
}

//! RPR009 event-loop-blocking: the Server's event loop must not block.
//!
//! `rpr-serve` multiplexes every camera session on one non-blocking
//! event loop (`Server::step` — the design the paper's serving tier
//! rests on: a stalled loop stalls *every* tenant, which is exactly
//! the head-of-line blocking the per-tenant QoS machinery exists to
//! prevent). A single `JoinHandle::join`, unbounded `recv`, `sleep`,
//! condvar `wait`, or blocking file read anywhere in the loop's call
//! graph reintroduces it.
//!
//! Entry specs come from `lints.event_loop_blocking.entries` (e.g.
//! `crates/serve/src/server.rs::Server::step`). Denied kind:
//! `blocking`. A bounded, measured wait that is acceptable by design
//! carries `allow(event-loop-blocking)` with its justification.

use crate::callgraph::Graph;
use crate::lints::{Finding, LINTS};
use crate::policy::Policy;
use crate::reach::run_site_lint;

/// Default denied site kinds.
pub const DEFAULT_DENY: &[&str] = &["blocking"];

/// Runs RPR009 over a built graph.
pub fn run(graph: &Graph<'_>, policy: &Policy) -> Vec<Finding> {
    let lint = &LINTS[8];
    debug_assert_eq!(lint.id, "RPR009");
    let specs = policy.str_array("lints.event_loop_blocking.entries");
    if specs.is_empty() {
        return Vec::new();
    }
    let mut entries = Vec::new();
    for spec in &specs {
        entries.extend(graph.resolve_entry(spec));
    }
    let mut deny = policy.str_array("lints.event_loop_blocking.deny");
    if deny.is_empty() {
        deny = DEFAULT_DENY.iter().map(|s| s.to_string()).collect();
    }
    run_site_lint(graph, lint, &entries, &deny, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{Graph, Workspace};

    #[test]
    fn blocking_calls_reachable_from_the_loop_fire() {
        let files = vec![
            (
                "crates/serve/src/server.rs".to_string(),
                "pub struct Server { queue: StageQueue }\n\
                 impl Server { pub fn step(&self) { self.queue.push(1); } }"
                    .to_string(),
            ),
            (
                "crates/stream/src/queue.rs".to_string(),
                "pub struct StageQueue { x: u8 }\n\
                 impl StageQueue {\n\
                 pub fn push(&self, v: u8) { self.not_full.wait(st); }\n\
                 pub fn try_push(&self, v: u8) {}\n}"
                    .to_string(),
            ),
        ];
        let ws = Workspace::parse(&files);
        let g = Graph::build(&ws);
        let policy = crate::policy::Policy::parse(
            "[lints.event_loop_blocking]\n\
             entries = [\"crates/serve/src/server.rs::Server::step\"]\n",
        )
        .unwrap();
        let f = run(&g, &policy);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("wait"));
        assert!(f[0].message.contains("Server::step"));
    }

    #[test]
    fn nonblocking_variant_is_clean() {
        let files = vec![
            (
                "crates/serve/src/server.rs".to_string(),
                "pub struct Server { queue: StageQueue }\n\
                 impl Server { pub fn step(&self) { self.queue.try_push(1); } }"
                    .to_string(),
            ),
            (
                "crates/stream/src/queue.rs".to_string(),
                "pub struct StageQueue { x: u8 }\n\
                 impl StageQueue {\n\
                 pub fn push(&self, v: u8) { self.not_full.wait(st); }\n\
                 pub fn try_push(&self, v: u8) {}\n}"
                    .to_string(),
            ),
        ];
        let ws = Workspace::parse(&files);
        let g = Graph::build(&ws);
        let policy = crate::policy::Policy::parse(
            "[lints.event_loop_blocking]\n\
             entries = [\"crates/serve/src/server.rs::Server::step\"]\n",
        )
        .unwrap();
        assert!(run(&g, &policy).is_empty());
    }
}

//! RPR006 panic-reach: transitive panic freedom for the panic surface.
//!
//! The token-level RPR001 guarantees the *files* in
//! `lints.panic_surface.include` contain no panic sites — but a clean
//! parse fn calling a panicking helper in another crate still panics
//! on malformed input. This lint closes that gap: every `pub`
//! non-test fn defined in `lints.panic_reach.include` is an entry
//! point, and no panic site of the denied kinds may be reachable
//! through the call graph.
//!
//! Denied kinds default to `unwrap`, `expect`, and `panic-macro`.
//! Indexing and `assert*` are *not* denied by default — across a
//! whole-workspace transitive closure they are overwhelmingly
//! bounds-checked-by-construction loops and debug invariants, and
//! flagging them would bury the findings that matter. A policy can
//! opt in via `lints.panic_reach.deny`. (RPR001 still flags indexing
//! *within* the surface files themselves, where the bar is stricter.)
//!
//! Waivers: `allow(panic-reach)` on a call line cuts that edge; on a
//! panic line it exempts the site. Sites already justified for RPR001
//! (`allow(panic-surface)`) are reported as waived, not re-litigated.

use crate::callgraph::Graph;
use crate::lints::{Finding, LINTS};
use crate::policy::Policy;
use crate::reach::run_site_lint;

/// Default denied site kinds.
pub const DEFAULT_DENY: &[&str] = &["unwrap", "expect", "panic-macro"];

/// Runs RPR006 over a built graph.
pub fn run(graph: &Graph<'_>, policy: &Policy) -> Vec<Finding> {
    let lint = &LINTS[5];
    debug_assert_eq!(lint.id, "RPR006");
    let include = policy.str_array("lints.panic_reach.include");
    if include.is_empty() {
        return Vec::new();
    }
    let entries = graph.entries_in_scope(&include);
    let mut deny = policy.str_array("lints.panic_reach.deny");
    if deny.is_empty() {
        deny = DEFAULT_DENY.iter().map(|s| s.to_string()).collect();
    }
    run_site_lint(graph, lint, &entries, &deny, &["panic-surface"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;
    use crate::callgraph::Graph;

    #[test]
    fn scope_drives_entries_and_default_kinds_exclude_indexing() {
        let files = vec![
            (
                "crates/w/src/lib.rs".to_string(),
                "pub fn parse(d: &[u8]) { helper(d); }\nfn internal() { x.unwrap(); }"
                    .to_string(),
            ),
            (
                "crates/other/src/lib.rs".to_string(),
                "pub fn helper(d: &[u8]) { let a = d[0]; deep(); }\n\
                 pub fn deep() { v.expect(\"x\"); }"
                    .to_string(),
            ),
        ];
        let ws = Workspace::parse(&files);
        let g = Graph::build(&ws);
        let policy = crate::policy::Policy::parse(
            "[lints.panic_reach]\ninclude = [\"crates/w/src/\"]\n",
        )
        .unwrap();
        let f = run(&g, &policy);
        // `deep`'s expect is reachable from the pub entry; `internal`
        // is not pub (not an entry) and unreachable from `parse`;
        // the indexing in `helper` is not in the default deny set.
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("expect"));
        assert!(f[0].message.contains("parse"));
    }
}

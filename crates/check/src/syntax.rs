//! Phase 1 of the v2 engine: the lightweight item model.
//!
//! Built on the token stream from [`crate::lexer`], this module parses
//! each workspace file into a [`FileModel`]: functions (free, inherent,
//! and trait methods), struct field types, `use` aliases, and — inside
//! every function body — the *sites* the cross-file lints care about:
//!
//! * **call sites** (free calls, `Type::method` path calls, `.method()`
//!   receiver calls with a receiver hint, macro invocations),
//! * **panic sites** (`.unwrap()` / `.expect()` / panicking macros /
//!   slice indexing),
//! * **alloc sites** (`Vec::new`, `vec!`, `format!`, `.to_vec()`,
//!   `.push()`, …) split into *hard* (always heap-allocate) and
//!   *amortized* (allocate only on capacity growth),
//! * **blocking sites** (`.wait()`, `.join()`, `sleep`, blocking file
//!   I/O, …), and
//! * **lock sites** (`.lock()` by default) with *hold tracking*: a
//!   `let`-bound guard is held to the end of its block, a temporary to
//!   the end of its statement, and an explicit `drop(guard)` releases
//!   it early. Every later call or lock site records the set of locks
//!   held at that point — the raw material for the lock-order graph.
//!
//! The model is deliberately *syntactic*: no type inference, no macro
//! expansion. Where types are unknowable the model records a
//! [`Receiver`] hint (self / field name / bare ident / opaque
//! expression) and phase 2 resolves it against struct fields, fn
//! params, and impl blocks. Soundness caveats live in DESIGN.md §4j.

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::lints::test_ranges;

/// What a call expression's receiver looked like, used by phase 2 to
/// narrow method resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `self.method(..)` — resolve within the enclosing impl type.
    SelfDot,
    /// `…field.method(..)` — the last ident of the chain was reached
    /// through a `.`, so it names a struct field.
    Field(String),
    /// `ident.method(..)` — a bare local/param name.
    Ident(String),
    /// `(expr).method(..)`, `f(x).method(..)`, chained temporaries —
    /// no usable hint.
    Expr,
}

/// What a call site invokes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `foo(..)` or `a::b::foo(..)` — path segments, last = fn name.
    Free(Vec<String>),
    /// `.name(..)` with its receiver hint.
    Method { name: String, recv: Receiver },
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What is being called.
    pub callee: Callee,
    /// 1-based source line.
    pub line: usize,
    /// Number of top-level argument expressions, or `None` when the
    /// argument list contains `|` (a closure makes comma counting
    /// unreliable, so arity matching goes lenient).
    pub args: Option<usize>,
    /// Indices (into [`FnModel::locks`]) of locks held at this call.
    pub held_locks: Vec<usize>,
}

/// Classification of a non-call site of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(..)`.
    Expect,
    /// `panic! / unreachable! / todo! / unimplemented!`.
    PanicMacro,
    /// `assert! / assert_eq! / assert_ne!`.
    AssertMacro,
    /// `x[..]` slice indexing.
    Index,
    /// Always heap-allocates (`Box::new`, `vec!`, `format!`,
    /// `.to_vec()`, `.collect()`, `Vec::with_capacity`, …).
    AllocHard,
    /// Allocates only on capacity growth (`.push()`, `.extend()`,
    /// `.resize()`, `.reserve()`, …).
    AllocAmortized,
    /// May block the calling thread (`.wait()`, `.join()`, `sleep`,
    /// blocking `recv`, file reads, …).
    Blocking,
}

impl SiteKind {
    /// The policy-facing spelling of the kind.
    pub fn name(self) -> &'static str {
        match self {
            SiteKind::Unwrap => "unwrap",
            SiteKind::Expect => "expect",
            SiteKind::PanicMacro => "panic-macro",
            SiteKind::AssertMacro => "assert-macro",
            SiteKind::Index => "index",
            SiteKind::AllocHard => "alloc-hard",
            SiteKind::AllocAmortized => "alloc-amortized",
            SiteKind::Blocking => "blocking",
        }
    }
}

/// One panic/alloc/blocking site inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// What kind of site.
    pub kind: SiteKind,
    /// The spelling that triggered it (`unwrap`, `format`, `wait`, …).
    pub what: String,
    /// 1-based source line.
    pub line: usize,
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Receiver hint for naming the lock (phase 2 resolves it to a
    /// `Type.field` identity where possible).
    pub recv: Receiver,
    /// The acquiring method (`lock` by default).
    pub method: String,
    /// 1-based source line.
    pub line: usize,
    /// Indices of locks already held when this one is acquired —
    /// direct intra-function lock-order edges.
    pub held_locks: Vec<usize>,
}

/// A function (or method) in the model.
#[derive(Debug, Clone)]
pub struct FnModel {
    /// Bare fn name.
    pub name: String,
    /// Enclosing inherent/trait-impl type (`impl Foo` / `impl T for Foo`).
    pub self_ty: Option<String>,
    /// Trait being implemented (`impl T for Foo`) or defined (`trait T`).
    pub trait_name: Option<String>,
    /// Declared `pub`.
    pub is_pub: bool,
    /// Inside a `#[test]` / `#[cfg(test)]` range.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Takes a `self` receiver.
    pub has_self: bool,
    /// Parameter `(name, type-segments)` pairs, `self` excluded.
    pub params: Vec<(String, Vec<String>)>,
    /// `let`-bound locals whose type is visible syntactically: either
    /// an explicit `let x: T = …` annotation or a constructor-path RHS
    /// (`let x = Type::new(…)` / `let x = Type { … }`).
    pub locals: Vec<(String, Vec<String>)>,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Panic/alloc/blocking sites in body order.
    pub sites: Vec<Site>,
    /// Lock acquisitions in body order.
    pub locks: Vec<LockSite>,
}

impl FnModel {
    /// Number of non-self parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

/// A struct definition: field name → type segments (all path idents
/// appearing in the field's type, generics included, lifetimes
/// excluded). `Arc<StageQueue<Delivered>>` yields
/// `["Arc", "StageQueue", "Delivered"]`.
#[derive(Debug, Clone)]
pub struct StructModel {
    /// Struct name.
    pub name: String,
    /// Named fields (tuple structs contribute positional `0`, `1`, …).
    pub fields: Vec<(String, Vec<String>)>,
}

/// Everything phase 2 needs from one source file.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// Repo-relative `/`-separated path.
    pub path: String,
    /// `use` aliases: last-segment (or `as` alias) → full path segments.
    pub uses: Vec<(String, Vec<String>)>,
    /// Struct definitions.
    pub structs: Vec<StructModel>,
    /// Functions, methods, and trait default methods.
    pub fns: Vec<FnModel>,
    /// Comments (the waiver scanner runs over these).
    pub comments: Vec<Comment>,
}

/// Keywords that can precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "in", "as", "fn", "let", "else", "move",
    "mut", "ref", "break", "continue", "where", "impl", "dyn", "pub", "use", "mod", "crate",
    "Some", "Ok", "Err", "None",
];

/// Macros that panic at runtime.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Assertion macros (their own [`SiteKind`] so policies can include or
/// exclude them from reachability independently).
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];
/// Macros that always heap-allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];
/// Method names that always heap-allocate a fresh buffer.
const ALLOC_HARD_METHODS: &[&str] =
    &["to_vec", "to_string", "to_owned", "collect", "into_bytes", "into_owned", "clone_into"];
/// `Type::fn` path calls that always heap-allocate. (`Vec::new` itself
/// allocates nothing, but the paper's hot-path discipline is that a
/// fresh buffer must come from the pool, so it counts.)
const ALLOC_HARD_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Arc", "new"),
    ("Rc", "new"),
    ("BTreeMap", "new"),
    ("HashMap", "new"),
    ("VecDeque", "new"),
];
/// Method names that allocate on capacity growth.
const ALLOC_AMORTIZED_METHODS: &[&str] = &[
    "push", "extend", "extend_from_slice", "resize", "reserve", "reserve_exact", "insert",
    "append", "push_back", "push_front", "push_str",
];
/// Method names that can block the calling thread.
const BLOCKING_METHODS: &[&str] =
    &["wait", "join", "sleep", "recv", "park", "read_to_end", "read_to_string", "wait_timeout"];
/// Path calls that block (`thread::sleep`, `fs::read`, `File::open`…).
const BLOCKING_PATH_HEADS: &[&str] = &["fs", "File"];
const BLOCKING_PATH_FNS: &[&str] = &["sleep", "park"];

/// Builds the [`FileModel`] for one source file.
pub fn parse_file(rel_path: &str, src: &str) -> FileModel {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let tests = test_ranges(toks);
    let in_test = |idx: usize| tests.iter().any(|&(a, b)| idx >= a && idx < b);

    let mut model = FileModel {
        path: rel_path.to_string(),
        comments: lexed.comments.clone(),
        ..Default::default()
    };

    let mut i = 0usize;
    // Stack of (brace-depth-at-entry, impl context) so nested items in
    // `mod` blocks keep working; impl blocks record their self type.
    let mut depth = 0usize;
    let mut impl_stack: Vec<(usize, Option<String>, Option<String>)> = Vec::new();

    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                while matches!(impl_stack.last(), Some(&(d, _, _)) if d > depth) {
                    impl_stack.pop();
                }
                i += 1;
            }
            TokKind::Ident(kw) if kw == "use" => {
                i = parse_use(toks, i + 1, &mut model.uses);
            }
            TokKind::Ident(kw) if kw == "struct" => {
                i = parse_struct(toks, i + 1, &mut model.structs);
            }
            TokKind::Ident(kw) if kw == "impl" => {
                let (ty, trait_name, next) = parse_impl_header(toks, i + 1);
                // `impl Trait for Type { … }`: methods belong to Type.
                if matches!(toks.get(next), Some(t) if t.kind == TokKind::Punct('{')) {
                    impl_stack.push((depth + 1, ty, trait_name));
                }
                i = next;
            }
            TokKind::Ident(kw) if kw == "trait" => {
                // Default trait-method bodies model under the trait's
                // name, so `dyn Trait` calls can resolve to them.
                let name = match toks.get(i + 1).map(|t| &t.kind) {
                    Some(TokKind::Ident(n)) => Some(n.clone()),
                    _ => None,
                };
                let mut j = i + 1;
                while j < toks.len() && toks[j].kind != TokKind::Punct('{') && toks[j].kind != TokKind::Punct(';') {
                    j += 1;
                }
                if matches!(toks.get(j), Some(t) if t.kind == TokKind::Punct('{')) {
                    impl_stack.push((depth + 1, None, name));
                }
                i = j;
            }
            TokKind::Ident(kw) if kw == "fn" => {
                let is_pub = is_pub_before(toks, i);
                let (self_ty, trait_name) = match impl_stack.last() {
                    Some((_, ty, tr)) => (ty.clone(), tr.clone()),
                    None => (None, None),
                };
                let (f, next) = parse_fn(toks, i, is_pub, self_ty, trait_name, in_test(i));
                if let Some(f) = f {
                    model.fns.push(f);
                }
                i = next;
            }
            _ => i += 1,
        }
    }
    model
}

/// True when `pub` (possibly `pub(crate)` etc.) appears just before the
/// item keyword at `i`.
fn is_pub_before(toks: &[Tok], i: usize) -> bool {
    // Walk back over `const`, `unsafe`, `extern`, `async`, and a
    /* possible */ // `pub(...)` restriction.
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokKind::Ident(s) if s == "const" || s == "unsafe" || s == "extern" || s == "async" => {}
            TokKind::Str => {} // extern "C"
            TokKind::Punct(')') => {
                // pub(crate): skip to matching (.
                let mut d = 1;
                while j > 0 && d > 0 {
                    j -= 1;
                    match toks[j].kind {
                        TokKind::Punct(')') => d += 1,
                        TokKind::Punct('(') => d -= 1,
                        _ => {}
                    }
                }
            }
            TokKind::Ident(s) if s == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Parses `use a::b::{c, d as e};` starting after the `use` keyword.
/// Returns the index past the trailing `;`.
fn parse_use(toks: &[Tok], mut i: usize, uses: &mut Vec<(String, Vec<String>)>) -> usize {
    let mut prefix: Vec<String> = Vec::new();
    let mut group_stack: Vec<usize> = Vec::new();
    let mut cur: Vec<String> = Vec::new();
    let mut alias: Option<String> = None;

    let flush = |prefix: &[String], cur: &mut Vec<String>, alias: &mut Option<String>, uses: &mut Vec<(String, Vec<String>)>| {
        if cur.is_empty() {
            return;
        }
        let mut full = prefix.to_vec();
        full.append(cur);
        let key = alias.take().unwrap_or_else(|| full.last().cloned().unwrap_or_default());
        if key != "*" && !key.is_empty() {
            uses.push((key, full));
        }
    };

    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct(';') => {
                flush(&prefix, &mut cur, &mut alias, uses);
                return i + 1;
            }
            TokKind::Punct('{') => {
                prefix.append(&mut cur);
                group_stack.push(prefix.len());
                i += 1;
            }
            TokKind::Punct('}') => {
                flush(&prefix, &mut cur, &mut alias, uses);
                if let Some(len) = group_stack.pop() {
                    prefix.truncate(len.saturating_sub(prefix.len() - prefix.len()));
                    prefix.truncate(len);
                    // Restore prefix to the state before this group: we
                    // cannot know how many segments the group head had,
                    // so truncate conservatively to the recorded length.
                }
                i += 1;
            }
            TokKind::Punct(',') => {
                flush(&prefix, &mut cur, &mut alias, uses);
                // Within a group the shared prefix stays; outside it
                // (top-level `use a, b;` is not valid Rust) nothing to do.
                if let Some(&len) = group_stack.last() {
                    prefix.truncate(len);
                }
                i += 1;
            }
            TokKind::Ident(s) if s == "as" => {
                if let Some(TokKind::Ident(a)) = toks.get(i + 1).map(|t| &t.kind) {
                    alias = Some(a.clone());
                }
                i += 2;
            }
            TokKind::Ident(s) => {
                cur.push(s.clone());
                i += 1;
            }
            TokKind::Punct('*') => {
                cur.push("*".to_string());
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Parses `struct Name<...> { field: Type, … }` (or tuple/unit forms)
/// starting after the `struct` keyword. Returns the index past the body.
fn parse_struct(toks: &[Tok], mut i: usize, out: &mut Vec<StructModel>) -> usize {
    let Some(TokKind::Ident(name)) = toks.get(i).map(|t| &t.kind) else { return i };
    let name = name.clone();
    i += 1;
    // Skip generics.
    i = skip_angle_generics(toks, i);
    // Unit struct `struct S;` / tuple struct `struct S(A, B);`.
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(';')) => {
            out.push(StructModel { name, fields: Vec::new() });
            return i + 1;
        }
        Some(TokKind::Punct('(')) => {
            let (fields, next) = parse_tuple_fields(toks, i);
            out.push(StructModel { name, fields });
            return next;
        }
        Some(TokKind::Punct('{')) => {}
        // `struct S where …;` and exotic forms: find `{` or `;`.
        _ => {
            while i < toks.len()
                && toks[i].kind != TokKind::Punct('{')
                && toks[i].kind != TokKind::Punct(';')
            {
                i += 1;
            }
            if toks.get(i).map(|t| &t.kind) != Some(&TokKind::Punct('{')) {
                out.push(StructModel { name, fields: Vec::new() });
                return i + 1;
            }
        }
    }
    // Named fields: `ident : Type ,` at brace depth 1.
    let mut fields = Vec::new();
    let mut depth = 1usize;
    i += 1;
    while i < toks.len() && depth > 0 {
        match &toks[i].kind {
            TokKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct('}') => {
                depth -= 1;
                i += 1;
            }
            TokKind::Ident(f)
                if depth == 1
                    && toks.get(i + 1).map(|t| &t.kind) == Some(&TokKind::Punct(':'))
                    && toks.get(i + 2).map(|t| &t.kind) != Some(&TokKind::Punct(':')) =>
            {
                let fname = f.clone();
                let (ty, next) = collect_type_segments(toks, i + 2);
                fields.push((fname, ty));
                i = next;
            }
            _ => i += 1,
        }
    }
    out.push(StructModel { name, fields });
    i
}

/// Collects type path idents from a field/param type, stopping at a
/// `,`, `)`, `}`, or `;` at the starting bracket depth. Returns the
/// segments and the index of the stopping token.
fn collect_type_segments(toks: &[Tok], mut i: usize) -> (Vec<String>, usize) {
    let mut segs = Vec::new();
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut square = 0i32;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => {
                if angle == 0 {
                    break; // `fn f() -> T` arrow tail handled by caller
                }
                angle -= 1;
            }
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => {
                if paren == 0 {
                    break;
                }
                paren -= 1;
            }
            TokKind::Punct('[') => square += 1,
            TokKind::Punct(']') => {
                if square == 0 {
                    break;
                }
                square -= 1;
            }
            TokKind::Punct(',') if angle == 0 && paren == 0 && square == 0 => break,
            TokKind::Punct('{') | TokKind::Punct('}') | TokKind::Punct(';') => break,
            TokKind::Punct('=') => break, // default / where bound tail
            TokKind::Ident(s)
                if s != "dyn" && s != "impl" && s != "mut" && s != "const" && s != "as" =>
            {
                segs.push(s.clone());
            }
            _ => {}
        }
        i += 1;
    }
    (segs, i)
}

/// Parses tuple-struct fields `(A, pub B, …)` at `i` (the `(`).
fn parse_tuple_fields(toks: &[Tok], mut i: usize) -> (Vec<(String, Vec<String>)>, usize) {
    let mut fields = Vec::new();
    let mut idx = 0usize;
    i += 1;
    loop {
        match toks.get(i).map(|t| &t.kind) {
            None | Some(TokKind::Punct(')')) => {
                i += 1;
                break;
            }
            Some(TokKind::Punct(',')) => {
                i += 1;
            }
            _ => {
                let (ty, next) = collect_type_segments(toks, i);
                if !ty.is_empty() || next > i {
                    fields.push((idx.to_string(), ty));
                    idx += 1;
                }
                i = next.max(i + 1);
            }
        }
    }
    // Consume the trailing `;` if present.
    if matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct(';')) {
        i += 1;
    }
    (fields, i)
}

/// Skips `<…>` generics at `i` if present.
fn skip_angle_generics(toks: &[Tok], mut i: usize) -> usize {
    if toks.get(i).map(|t| &t.kind) != Some(&TokKind::Punct('<')) {
        return i;
    }
    let mut depth = 0i32;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses `impl<…> [Trait for] Type<…>` starting after `impl`.
/// Returns `(self_ty, trait_name, index-of-{-or-;)`.
fn parse_impl_header(toks: &[Tok], mut i: usize) -> (Option<String>, Option<String>, usize) {
    i = skip_angle_generics(toks, i);
    // Collect idents until `{`, tracking the one before `for`.
    let mut last: Option<String> = None;
    let mut trait_name: Option<String> = None;
    let mut angle = 0i32;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('{') | TokKind::Punct(';') if angle == 0 => break,
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Ident(s) if s == "for" && angle == 0 => {
                trait_name = last.take();
            }
            TokKind::Ident(s) if s == "where" && angle == 0 => {
                // Bounds tail: the self type is already in `last`.
                while i < toks.len() && toks[i].kind != TokKind::Punct('{') {
                    i += 1;
                }
                break;
            }
            TokKind::Ident(s) if angle == 0 && s != "dyn" && s != "impl" => {
                last = Some(s.clone());
            }
            _ => {}
        }
        i += 1;
    }
    (last, trait_name, i)
}

/// Parses one `fn` item starting at the `fn` keyword index. Returns
/// the model (None for body-less declarations) and the index past it.
fn parse_fn(
    toks: &[Tok],
    fn_idx: usize,
    is_pub: bool,
    self_ty: Option<String>,
    trait_name: Option<String>,
    is_test: bool,
) -> (Option<FnModel>, usize) {
    let mut i = fn_idx + 1;
    let Some(TokKind::Ident(name)) = toks.get(i).map(|t| &t.kind) else {
        return (None, i);
    };
    let name = name.clone();
    let line = toks[fn_idx].line;
    i += 1;
    i = skip_angle_generics(toks, i);
    if toks.get(i).map(|t| &t.kind) != Some(&TokKind::Punct('(')) {
        return (None, i);
    }
    let (has_self, params, mut i) = parse_params(toks, i);
    // Find the body `{`, skipping `-> Type` and `where` clauses; a `;`
    // first means declaration-only (trait method without default).
    let mut angle = 0i32;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle = (angle - 1).max(0), // `->` also hits this
            TokKind::Punct(';') if angle == 0 => return (None, i + 1),
            TokKind::Punct('{') if angle == 0 => break,
            _ => {}
        }
        i += 1;
    }
    if i >= toks.len() {
        return (None, i);
    }
    let body_start = i;
    let body_end = match_brace(toks, body_start);
    let mut f = FnModel {
        name,
        self_ty,
        trait_name,
        is_pub,
        is_test,
        line,
        has_self,
        params,
        locals: Vec::new(),
        calls: Vec::new(),
        sites: Vec::new(),
        locks: Vec::new(),
    };
    scan_body(toks, body_start, body_end, &mut f);
    (Some(f), body_end)
}

/// Index just past the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses a parameter list at `i` (the `(`). Returns
/// `(has_self, params, index-past-`)`)`.
fn parse_params(toks: &[Tok], open: usize) -> (bool, Vec<(String, Vec<String>)>, usize) {
    let mut has_self = false;
    let mut params = Vec::new();
    let mut i = open + 1;
    let mut depth = 1usize;
    while i < toks.len() && depth > 0 {
        match &toks[i].kind {
            TokKind::Punct('(') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct(')') => {
                depth -= 1;
                i += 1;
            }
            TokKind::Ident(s) if depth == 1 && s == "self" => {
                has_self = true;
                i += 1;
            }
            TokKind::Ident(s)
                if depth == 1
                    && toks.get(i + 1).map(|t| &t.kind) == Some(&TokKind::Punct(':'))
                    && toks.get(i + 2).map(|t| &t.kind) != Some(&TokKind::Punct(':')) =>
            {
                let pname = s.clone();
                let (ty, next) = collect_type_segments(toks, i + 2);
                params.push((pname, ty));
                i = next.max(i + 1);
            }
            _ => i += 1,
        }
    }
    (has_self, params, i)
}

/// An active lock hold during the body scan.
struct Hold {
    lock_idx: usize,
    /// Brace depth whose close releases a `let`-bound guard; `None`
    /// for temporaries released at the next `;` at `stmt_depth`.
    block_depth: Option<usize>,
    stmt_depth: usize,
    /// Binding name for `drop(name)` release, when `let`-bound.
    binding: Option<String>,
}

/// Scans a fn body (tokens in `[open, end)`) for calls, sites, and
/// locks with hold tracking.
fn scan_body(toks: &[Tok], open: usize, end: usize, f: &mut FnModel) {
    let mut holds: Vec<Hold> = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        match &toks[i].kind {
            TokKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct('}') => {
                holds.retain(|h| h.block_depth.map(|d| d < depth).unwrap_or(true));
                depth = depth.saturating_sub(1);
                i += 1;
            }
            TokKind::Punct(';') => {
                holds.retain(|h| h.block_depth.is_some() || h.stmt_depth != depth);
                i += 1;
            }
            TokKind::Ident(name) => {
                if name == "let" {
                    record_let(toks, i, end, f);
                }
                let next = toks.get(i + 1).map(|t| &t.kind);
                // Macro invocation.
                if next == Some(&TokKind::Punct('!'))
                    && matches!(
                        toks.get(i + 2).map(|t| &t.kind),
                        Some(TokKind::Punct('(')) | Some(TokKind::Punct('[')) | Some(TokKind::Punct('{'))
                    )
                {
                    let n = name.as_str();
                    if PANIC_MACROS.contains(&n) {
                        f.sites.push(Site { kind: SiteKind::PanicMacro, what: name.clone(), line: toks[i].line });
                    } else if ASSERT_MACROS.contains(&n) {
                        f.sites.push(Site { kind: SiteKind::AssertMacro, what: name.clone(), line: toks[i].line });
                    } else if ALLOC_MACROS.contains(&n) {
                        f.sites.push(Site { kind: SiteKind::AllocHard, what: format!("{name}!"), line: toks[i].line });
                    }
                    i += 2;
                    continue;
                }
                // Call expression `name(`.
                if next == Some(&TokKind::Punct('(')) && !NON_CALL_KEYWORDS.contains(&name.as_str())
                {
                    let after_dot = i > open && toks[i - 1].kind == TokKind::Punct('.');
                    let is_path = i >= 2
                        && toks[i - 1].kind == TokKind::Punct(':')
                        && toks[i - 2].kind == TokKind::Punct(':');
                    let is_def = i > 0 && toks[i - 1].kind == TokKind::Ident("fn".into());
                    if is_def {
                        i += 1;
                        continue;
                    }
                    let args = count_args(toks, i + 1, end);
                    let line = toks[i].line;
                    if after_dot {
                        record_method_call(toks, open, i, name, args, line, &mut holds, f);
                    } else if is_path {
                        let segs = path_segments_back(toks, open, i);
                        record_path_call(segs, name, args, line, &holds, f);
                    } else {
                        // drop(guard) releases a held lock early.
                        if name == "drop" {
                            if let Some(TokKind::Ident(arg)) = toks.get(i + 2).map(|t| &t.kind) {
                                if toks.get(i + 3).map(|t| &t.kind) == Some(&TokKind::Punct(')')) {
                                    holds.retain(|h| h.binding.as_deref() != Some(arg.as_str()));
                                }
                            }
                        }
                        f.calls.push(CallSite {
                            callee: Callee::Free(vec![name.clone()]),
                            line,
                            args,
                            held_locks: held(&holds),
                        });
                    }
                    i += 1;
                    continue;
                }
                i += 1;
            }
            TokKind::Punct('[') if i > open => {
                // Indexing heuristic shared with RPR001.
                let indexes = match &toks[i - 1].kind {
                    TokKind::Ident(s) => !crate::lints::NON_INDEX_KEYWORDS.contains(&s.as_str()),
                    TokKind::Punct(')') | TokKind::Punct(']') => true,
                    _ => false,
                };
                if indexes {
                    f.sites.push(Site {
                        kind: SiteKind::Index,
                        what: "[..]".to_string(),
                        line: toks[i].line,
                    });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

fn held(holds: &[Hold]) -> Vec<usize> {
    holds.iter().map(|h| h.lock_idx).collect()
}

/// Records a typed local from the `let` statement starting at `let_idx`
/// when the type is syntactically visible: an explicit `let x: T = …`
/// annotation, or a constructor path / struct literal on the RHS
/// (`let x = Type::new(…)`, `let x = Type { … }`). Pattern bindings
/// (`let (a, b) = …`, `let Some(x) = …`) record nothing.
fn record_let(toks: &[Tok], let_idx: usize, end: usize, f: &mut FnModel) {
    let mut j = let_idx + 1;
    let mut binding: Option<String> = None;
    while j < end {
        match &toks[j].kind {
            TokKind::Ident(s) if s == "mut" || s == "ref" => j += 1,
            TokKind::Ident(s) => {
                // An UPPERCASE first ident is an enum/struct pattern
                // (`let Some(x) = …`), not a binding.
                if s.chars().next().map(char::is_uppercase).unwrap_or(false) {
                    return;
                }
                binding = Some(s.clone());
                j += 1;
                break;
            }
            _ => return,
        }
    }
    let Some(binding) = binding else { return };
    match toks.get(j).map(|t| &t.kind) {
        // `let x: T = …` — but not a stray `::`.
        Some(TokKind::Punct(':'))
            if toks.get(j + 1).map(|t| &t.kind) != Some(&TokKind::Punct(':')) =>
        {
            let (ty, _) = collect_type_segments(toks, j + 1);
            if !ty.is_empty() {
                f.locals.push((binding, ty));
            }
        }
        Some(TokKind::Punct('='))
            if toks.get(j + 1).map(|t| &t.kind) != Some(&TokKind::Punct('=')) =>
        {
            // Constructor-path RHS: `Type::new(…)`, `a::Type { … }`.
            let mut k = j + 1;
            let mut segs: Vec<String> = Vec::new();
            while let Some(TokKind::Ident(s)) = toks.get(k).map(|t| &t.kind) {
                segs.push(s.clone());
                k += 1;
                if toks.get(k).map(|t| &t.kind) != Some(&TokKind::Punct(':'))
                    || toks.get(k + 1).map(|t| &t.kind) != Some(&TokKind::Punct(':'))
                {
                    break;
                }
                k += 2;
                // Skip a turbofish `::<T>`.
                if toks.get(k).map(|t| &t.kind) == Some(&TokKind::Punct('<')) {
                    k = skip_angle_generics(toks, k);
                    if toks.get(k).map(|t| &t.kind) == Some(&TokKind::Punct(':'))
                        && toks.get(k + 1).map(|t| &t.kind) == Some(&TokKind::Punct(':'))
                    {
                        k += 2;
                    } else {
                        break;
                    }
                }
            }
            // The path must start with a type-like (uppercase) segment
            // somewhere; `let x = other_fn()` records nothing.
            if !segs.iter().any(|s| s.chars().next().map(char::is_uppercase).unwrap_or(false)) {
                return;
            }
            // `Type::new` → the constructor fn segment is not a type.
            if segs.len() > 1
                && segs.last().map(|s| s.chars().next().map(char::is_lowercase).unwrap_or(false))
                    == Some(true)
            {
                segs.pop();
            }
            // A struct literal (`= Type { … }`) or call (`= Type::new(…)`)
            // follows; a bare ident RHS (`= other`) is a move, skip it.
            match toks.get(k).map(|t| &t.kind) {
                Some(TokKind::Punct('(')) | Some(TokKind::Punct('{'))
                | Some(TokKind::Punct('<')) => {
                    f.locals.push((binding, segs));
                }
                _ => {}
            }
        }
        _ => {}
    }
}

/// Records a `.name(args)` method call at token `i`, classifying
/// panic/alloc/blocking/lock sites as a side effect.
#[allow(clippy::too_many_arguments)]
fn record_method_call(
    toks: &[Tok],
    open: usize,
    i: usize,
    name: &str,
    args: Option<usize>,
    line: usize,
    holds: &mut Vec<Hold>,
    f: &mut FnModel,
) {
    // Site classification first (these also stay in `calls` so the
    // graph can resolve them to workspace impls when one exists).
    match name {
        "unwrap" => f.sites.push(Site { kind: SiteKind::Unwrap, what: name.into(), line }),
        "expect" => f.sites.push(Site { kind: SiteKind::Expect, what: name.into(), line }),
        n if ALLOC_HARD_METHODS.contains(&n) => {
            f.sites.push(Site { kind: SiteKind::AllocHard, what: name.into(), line });
        }
        n if ALLOC_AMORTIZED_METHODS.contains(&n) => {
            f.sites.push(Site { kind: SiteKind::AllocAmortized, what: name.into(), line });
        }
        n if BLOCKING_METHODS.contains(&n) => {
            f.sites.push(Site { kind: SiteKind::Blocking, what: name.into(), line });
        }
        _ => {}
    }
    let recv = receiver_back(toks, open, i - 1);
    if name == "lock" {
        let lock_idx = f.locks.len();
        f.locks.push(LockSite {
            recv: recv.clone(),
            method: name.to_string(),
            line,
            held_locks: held(holds),
        });
        // Hold scope: `let g = x.lock()` lives to block end; a
        // temporary `x.lock().y` to the end of the statement.
        let (bound, binding) = let_binding_back(toks, open, i);
        let depth = brace_depth(toks, open, i);
        holds.push(Hold {
            lock_idx,
            block_depth: if bound { Some(depth) } else { None },
            stmt_depth: depth,
            binding,
        });
    }
    f.calls.push(CallSite {
        callee: Callee::Method { name: name.to_string(), recv },
        line,
        args,
        held_locks: held(holds),
    });
}

/// Records a `a::b::name(args)` path call.
fn record_path_call(
    mut segs: Vec<String>,
    name: &str,
    args: Option<usize>,
    line: usize,
    holds: &[Hold],
    f: &mut FnModel,
) {
    segs.push(name.to_string());
    // Site classification for known allocating/blocking paths.
    if segs.len() >= 2 {
        let ty = &segs[segs.len() - 2];
        let last = name;
        if ALLOC_HARD_PATHS.iter().any(|(t, m)| t == ty && *m == last) {
            f.sites.push(Site {
                kind: SiteKind::AllocHard,
                what: format!("{ty}::{last}"),
                line,
            });
        }
        if (BLOCKING_PATH_HEADS.contains(&ty.as_str()) && last != "metadata")
            || BLOCKING_PATH_FNS.contains(&last)
        {
            f.sites.push(Site {
                kind: SiteKind::Blocking,
                what: format!("{ty}::{last}"),
                line,
            });
        }
    }
    f.calls.push(CallSite { callee: Callee::Free(segs), line, args, held_locks: held(holds) });
}

/// Counts top-level argument expressions in the paren group opening at
/// `open_paren`. Returns `None` when a `|` appears at depth 1 (closure
/// params defeat comma counting).
fn count_args(toks: &[Tok], open_paren: usize, end: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut any = false;
    let mut has_pipe = false;
    let mut i = open_paren;
    while i < end {
        match toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            }
            TokKind::Punct(',') if depth == 1 => commas += 1,
            TokKind::Punct('|') if depth == 1 => has_pipe = true,
            _ => {
                if depth == 1 {
                    any = true;
                }
            }
        }
        i += 1;
    }
    if has_pipe {
        return None;
    }
    Some(if any || commas > 0 { commas + 1 } else { 0 })
}

/// Walks back from the `.` before a method name to produce a
/// [`Receiver`] hint. `tok_before` is the index of the method-name
/// token's preceding `.`.
fn receiver_back(toks: &[Tok], open: usize, dot: usize) -> Receiver {
    if dot <= open {
        return Receiver::Expr;
    }
    let mut j = dot - 1; // token before the `.`
    // Skip a balanced `[...]` index: `self.shards[idx].lock()`.
    while j > open && toks[j].kind == TokKind::Punct(']') {
        let mut d = 1usize;
        while j > open && d > 0 {
            j -= 1;
            match toks[j].kind {
                TokKind::Punct(']') => d += 1,
                TokKind::Punct('[') => d -= 1,
                _ => {}
            }
        }
        if j == open {
            return Receiver::Expr;
        }
        j -= 1;
    }
    match &toks[j].kind {
        TokKind::Ident(s) if s == "self" => Receiver::SelfDot,
        TokKind::Ident(s) => {
            // Was this ident itself reached through a `.`? Then it is
            // a field; otherwise a bare local/param.
            if j > open && toks[j - 1].kind == TokKind::Punct('.') {
                Receiver::Field(s.clone())
            } else if j >= open + 2
                && toks[j - 1].kind == TokKind::Punct(':')
                && toks[j - 2].kind == TokKind::Punct(':')
            {
                // `Type::CONST.method()` — give the ident as a hint.
                Receiver::Ident(s.clone())
            } else {
                Receiver::Ident(s.clone())
            }
        }
        _ => Receiver::Expr,
    }
}

/// Collects `a::b::` path segments walking back from the fn-name token
/// at `i` (which is preceded by `::`).
fn path_segments_back(toks: &[Tok], open: usize, i: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = i;
    while j >= open + 3
        && toks[j - 1].kind == TokKind::Punct(':')
        && toks[j - 2].kind == TokKind::Punct(':')
    {
        // Skip turbofish `::<T>::` segments.
        let mut k = j - 3;
        if toks[k].kind == TokKind::Punct('>') {
            let mut d = 1i32;
            while k > open && d > 0 {
                k -= 1;
                match toks[k].kind {
                    TokKind::Punct('>') => d += 1,
                    TokKind::Punct('<') => d -= 1,
                    _ => {}
                }
            }
            if k == open {
                break;
            }
            k -= 1;
        }
        match &toks[k].kind {
            TokKind::Ident(s) => {
                segs.push(s.clone());
                j = k;
            }
            _ => break,
        }
    }
    segs.reverse();
    segs
}

/// True (with the binding name) when the expression containing token
/// `i` is `let <name> = …`: walk back to the statement head.
fn let_binding_back(toks: &[Tok], open: usize, i: usize) -> (bool, Option<String>) {
    let mut j = i;
    let mut eq = None;
    while j > open {
        j -= 1;
        match &toks[j].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
            TokKind::Punct('=')
                if j > open
                    && toks[j - 1].kind != TokKind::Punct('=')
                    && toks[j - 1].kind != TokKind::Punct('!')
                    && toks[j - 1].kind != TokKind::Punct('<')
                    && toks[j - 1].kind != TokKind::Punct('>')
                    && toks.get(j + 1).map(|t| &t.kind) != Some(&TokKind::Punct('=')) =>
            {
                eq = Some(j);
            }
            _ => {}
        }
    }
    let Some(eq) = eq else { return (false, None) };
    // Statement head must start with `let`; binding is the ident right
    // before `=` (or before `:` for `let g: T = …`).
    let mut head = eq;
    while head > open {
        head -= 1;
        match &toks[head].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => {
                head += 1;
                break;
            }
            _ => {}
        }
    }
    if !matches!(&toks.get(head).map(|t| &t.kind), Some(TokKind::Ident(s)) if *s == "let") {
        return (false, None);
    }
    let mut binding = None;
    let mut k = head + 1;
    while k < eq {
        if let TokKind::Ident(s) = &toks[k].kind {
            if s != "mut" {
                binding = Some(s.clone());
            }
        }
        if toks[k].kind == TokKind::Punct(':') {
            break;
        }
        k += 1;
    }
    (true, binding)
}

/// Brace depth of token `i` relative to the body opening at `open`.
fn brace_depth(toks: &[Tok], open: usize, i: usize) -> usize {
    let mut d = 0usize;
    for t in &toks[open..i] {
        match t.kind {
            TokKind::Punct('{') => d += 1,
            TokKind::Punct('}') => d = d.saturating_sub(1),
            _ => {}
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        parse_file("x.rs", src)
    }

    fn find_fn<'a>(m: &'a FileModel, name: &str) -> &'a FnModel {
        m.fns.iter().find(|f| f.name == name).unwrap_or_else(|| panic!("fn {name} missing"))
    }

    #[test]
    fn fns_impls_and_traits_are_modelled() {
        let src = r#"
            pub fn free(a: u32, b: &str) -> u32 { helper(a) }
            fn helper(a: u32) -> u32 { a }
            struct S { q: Arc<StageQueue<Delivered>>, n: usize }
            impl S {
                pub fn m(&self) { self.q.try_push(1); }
            }
            trait T { fn d(&self) { self.m2(); } fn decl(&self); }
            impl T for S { fn decl(&self) {} }
        "#;
        let m = model(src);
        let names: Vec<_> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["free", "helper", "m", "d", "decl"]);
        let free = find_fn(&m, "free");
        assert!(free.is_pub && !free.has_self);
        assert_eq!(free.arity(), 2);
        let mfn = find_fn(&m, "m");
        assert_eq!(mfn.self_ty.as_deref(), Some("S"));
        assert!(mfn.has_self);
        let d = find_fn(&m, "d");
        assert_eq!(d.trait_name.as_deref(), Some("T"));
        let decl = find_fn(&m, "decl");
        assert_eq!((decl.self_ty.as_deref(), decl.trait_name.as_deref()), (Some("S"), Some("T")));
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.structs[0].fields[0].0, "q");
        assert_eq!(m.structs[0].fields[0].1, vec!["Arc", "StageQueue", "Delivered"]);
    }

    #[test]
    fn call_sites_carry_receiver_hints_and_arity() {
        let src = r#"
            fn f(q: Queue) {
                helper(1, 2);
                q.pop();
                self_less.other.push(3);
                Type::build(4);
                a::b::c(5, 6);
                items.iter().map(|x, y| x).count();
            }
        "#;
        let m = model(src);
        let f = find_fn(&m, "f");
        let calls: Vec<String> = f
            .calls
            .iter()
            .map(|c| match &c.callee {
                Callee::Free(p) => format!("free:{}({:?})", p.join("::"), c.args),
                Callee::Method { name, recv } => format!("method:{name}/{recv:?}({:?})", c.args),
            })
            .collect();
        assert!(calls[0].starts_with("free:helper(Some(2)"), "{calls:?}");
        assert!(calls[1].contains("method:pop/Ident(\"q\")(Some(0)"), "{calls:?}");
        assert!(calls[2].contains("method:push/Field(\"other\")"), "{calls:?}");
        assert!(calls[3].starts_with("free:Type::build"), "{calls:?}");
        assert!(calls[4].starts_with("free:a::b::c(Some(2)"), "{calls:?}");
        // The closure's comma defeats arity counting for `map`.
        assert!(calls.iter().any(|c| c.contains("method:map") && c.contains("None")), "{calls:?}");
    }

    #[test]
    fn sites_classify_panics_allocs_and_blocking() {
        let src = r#"
            fn f(v: Vec<u8>) {
                v.first().unwrap();
                x.expect("boom");
                panic!("no");
                assert_eq!(1, 1);
                let a = Vec::new();
                let b = vec![1];
                let c = format!("x");
                out.extend_from_slice(&v);
                h.join();
                std::thread::sleep(d);
            }
        "#;
        let f = model(src);
        let f = find_fn(&f, "f");
        let kinds: Vec<(SiteKind, &str)> =
            f.sites.iter().map(|s| (s.kind, s.what.as_str())).collect();
        assert!(kinds.contains(&(SiteKind::Unwrap, "unwrap")));
        assert!(kinds.contains(&(SiteKind::Expect, "expect")));
        assert!(kinds.contains(&(SiteKind::PanicMacro, "panic")));
        assert!(kinds.contains(&(SiteKind::AssertMacro, "assert_eq")));
        assert!(kinds.contains(&(SiteKind::AllocHard, "Vec::new")));
        assert!(kinds.contains(&(SiteKind::AllocHard, "vec!")));
        assert!(kinds.contains(&(SiteKind::AllocHard, "format!")));
        assert!(kinds.contains(&(SiteKind::AllocAmortized, "extend_from_slice")));
        assert!(kinds.contains(&(SiteKind::Blocking, "join")));
        assert!(kinds.contains(&(SiteKind::Blocking, "thread::sleep")));
    }

    #[test]
    fn lock_holds_nest_for_bound_guards_and_clear_on_statement_end() {
        let src = r#"
            fn f(&self) {
                let a = self.first.lock();
                self.second.lock().touch();
                other();
            }
        "#;
        let m = model(src);
        let f = find_fn(&m, "f");
        assert_eq!(f.locks.len(), 2);
        // Second lock acquired while `a` held.
        assert_eq!(f.locks[1].held_locks, vec![0]);
        // The temporary guard is gone by the time `other()` runs; `a`
        // is still held (block-scoped).
        let other = f.calls.iter().find(|c| matches!(&c.callee, Callee::Free(p) if p == &vec!["other".to_string()])).unwrap();
        assert_eq!(other.held_locks, vec![0]);
    }

    #[test]
    fn scoped_and_dropped_guards_release() {
        let src = r#"
            fn f(&self) {
                {
                    let g = self.a.lock();
                    inner();
                }
                after_scope();
                let h = self.b.lock();
                drop(h);
                after_drop();
            }
        "#;
        let m = model(src);
        let f = find_fn(&m, "f");
        let call = |name: &str| {
            f.calls
                .iter()
                .find(|c| matches!(&c.callee, Callee::Free(p) if p.last().map(String::as_str) == Some(name)))
                .unwrap()
        };
        assert_eq!(call("inner").held_locks, vec![0]);
        assert!(call("after_scope").held_locks.is_empty());
        assert!(call("after_drop").held_locks.is_empty());
    }

    #[test]
    fn indexed_receiver_resolves_to_field() {
        let src = "impl H { fn f(&self, i: usize) { self.shards[i].lock().record(1); } }";
        let m = model(src);
        let f = find_fn(&m, "f");
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].recv, Receiver::Field("shards".to_string()));
    }

    #[test]
    fn use_aliases_resolve_groups_and_renames() {
        let src = "use a::b::{c, d as e};\nuse x::y;\nfn f() {}";
        let m = model(src);
        let get = |k: &str| m.uses.iter().find(|(n, _)| n == k).map(|(_, p)| p.clone());
        assert_eq!(get("c"), Some(vec!["a".into(), "b".into(), "c".into()]));
        assert_eq!(get("e"), Some(vec!["a".into(), "b".into(), "d".into()]));
        assert_eq!(get("y"), Some(vec!["x".into(), "y".into()]));
    }

    #[test]
    fn typed_locals_are_recorded() {
        let src = r#"
            fn f() {
                let a: StageQueue<u8> = make();
                let mut b = Vec::new();
                let c = BufferPool::with_capacity(4);
                let d = Config { x: 1 };
                let e = untyped_helper();
                let (g, h) = pair();
                let Some(i) = opt else { return };
            }
        "#;
        let m = model(src);
        let f = find_fn(&m, "f");
        let get = |k: &str| f.locals.iter().find(|(n, _)| n == k).map(|(_, t)| t.clone());
        assert_eq!(get("a"), Some(vec!["StageQueue".into(), "u8".into()]));
        assert_eq!(get("b"), Some(vec!["Vec".into()]));
        assert_eq!(get("c"), Some(vec!["BufferPool".into()]));
        assert_eq!(get("d"), Some(vec!["Config".into()]));
        assert_eq!(get("e"), None);
        assert_eq!(get("g"), None);
        assert_eq!(get("i"), None);
    }

    #[test]
    fn test_items_are_flagged() {
        let src = "#[cfg(test)]\nmod tests { fn helper() { v.unwrap(); } }\nfn prod() {}";
        let m = model(src);
        assert!(find_fn(&m, "helper").is_test);
        assert!(!find_fn(&m, "prod").is_test);
    }
}

//! Lint self-test: every lint must fire on its known-bad fixture and
//! stay quiet on its known-good twin.
//!
//! A lint that silently stops firing is worse than no lint — the gate
//! keeps reporting green while the invariant rots. The fixtures under
//! `crates/check/fixtures/` pin each lint's behaviour. Token lints
//! (RPR001–RPR005) use single files: `<lint>_bad.rs` must produce at
//! least one *unwaived* finding with the right ID, and
//! `<lint>_good.rs` must produce none (it exercises the same
//! constructs guarded, allowed, or waived — so the waiver machinery is
//! covered too). Graph lints (RPR006–RPR009) are cross-file by
//! definition, so their fixtures are *directories*
//! (`fixtures/graph/<lint>/{bad,good}/*.rs`) parsed as miniature
//! workspaces and run through the full phase-1/phase-2 engine.
//! `rpr-check --self-test` runs both corpora in CI next to the
//! workspace scan; the fixtures directory is in `[global].exclude` so
//! the deliberately-deadlocking fixture code never trips the real gate.

use crate::callgraph::{Graph, Workspace};
use crate::lints::{check_file, LINTS};
use crate::policy::Policy;
use crate::{run_graph_lints, GRAPH_LINT_IDS};
use std::path::Path;

/// The policy the fixtures are checked under: every scoped lint is
/// scoped to the fixture directory, and the atomic-ordering fixtures
/// are pinned to the documented gate set.
fn fixture_policy() -> Policy {
    Policy::parse(
        r#"
        [lints.panic_surface]
        include = ["fixtures/"]
        [lints.truncating_cast]
        include = ["fixtures/"]
        [lints.raw_clock]
        allow = []
        [lints.unsafe_block]
        allow = []
        [lints.atomic_ordering.pinned."fixtures/atomic_ordering_bad.rs"]
        allowed = ["Relaxed", "Release"]
        [lints.atomic_ordering.pinned."fixtures/atomic_ordering_good.rs"]
        allowed = ["Relaxed", "Release"]
        "#,
    )
    .expect("fixture policy is statically valid")
}

/// Runs the self-test against `fixtures_dir`. Returns the list of
/// failures (empty = all lints verified live).
///
/// # Errors
///
/// Returns an I/O error when a fixture file is missing or unreadable —
/// a missing fixture is itself a self-test failure mode that must not
/// pass silently.
/// The policy the graph fixtures run under: each lint's scope points
/// at its fixture directory's `entry.rs` (or the whole directory for
/// lock-order, whose entries are implicit in the lock sites).
fn graph_fixture_policy() -> Policy {
    Policy::parse(
        r#"
        [lints.panic_reach]
        include = [
            "fixtures/graph/panic_reach/bad/entry.rs",
            "fixtures/graph/panic_reach/good/entry.rs",
        ]
        [lints.lock_order]
        include = ["fixtures/graph/lock_order/"]
        [lints.hot_path_alloc]
        entries = [
            "fixtures/graph/hot_path_alloc/bad/entry.rs::kernel",
            "fixtures/graph/hot_path_alloc/good/entry.rs::kernel",
        ]
        [lints.event_loop_blocking]
        entries = [
            "fixtures/graph/event_loop_blocking/bad/entry.rs::Server::step",
            "fixtures/graph/event_loop_blocking/good/entry.rs::Server::step",
        ]
        "#,
    )
    .expect("graph fixture policy is statically valid")
}

pub fn run(fixtures_dir: &Path) -> std::io::Result<Vec<String>> {
    let policy = fixture_policy();
    let mut failures = Vec::new();
    for lint in LINTS.iter().filter(|l| !GRAPH_LINT_IDS.contains(&l.id)) {
        let snake = lint.name.replace('-', "_");
        for (suffix, expect_fire) in [("bad", true), ("good", false)] {
            let file = format!("{snake}_{suffix}.rs");
            let path = fixtures_dir.join(&file);
            let src = std::fs::read_to_string(&path).map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!("fixture {} unreadable: {e}", path.display()),
                )
            })?;
            let rel = format!("fixtures/{file}");
            let findings = check_file(&rel, &src, &policy);
            let unwaived_hits =
                findings.iter().filter(|f| !f.waived && f.id == lint.id).count();
            let unwaived_any = findings.iter().filter(|f| !f.waived).count();
            if expect_fire && unwaived_hits == 0 {
                failures.push(format!(
                    "{} ({}) did not fire on {rel} — the lint has gone dead",
                    lint.id, lint.name
                ));
            }
            if !expect_fire && unwaived_any != 0 {
                let ids: Vec<_> =
                    findings.iter().filter(|f| !f.waived).map(|f| f.id).collect();
                failures.push(format!(
                    "known-good fixture {rel} produced blocking findings: {ids:?}"
                ));
            }
        }
    }

    // Graph lints: directory fixtures parsed as miniature workspaces.
    let graph_policy = graph_fixture_policy();
    for lint in LINTS.iter().filter(|l| GRAPH_LINT_IDS.contains(&l.id)) {
        let snake = lint.name.replace('-', "_");
        for (suffix, expect_fire) in [("bad", true), ("good", false)] {
            let dir = fixtures_dir.join("graph").join(&snake).join(suffix);
            let rel_dir = format!("fixtures/graph/{snake}/{suffix}");
            let mut files = Vec::new();
            let entries = std::fs::read_dir(&dir).map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!("graph fixture dir {} unreadable: {e}", dir.display()),
                )
            })?;
            for entry in entries {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                if !name.ends_with(".rs") {
                    continue;
                }
                let src = std::fs::read_to_string(entry.path())?;
                files.push((format!("{rel_dir}/{name}"), src));
            }
            files.sort();
            if files.is_empty() {
                failures.push(format!("graph fixture dir {rel_dir} holds no .rs files"));
                continue;
            }
            let ws = Workspace::parse(&files);
            let graph = Graph::build(&ws);
            let findings = run_graph_lints(&graph, &graph_policy, &[lint.id]);
            let unwaived_hits =
                findings.iter().filter(|f| !f.waived && f.id == lint.id).count();
            let unwaived_any = findings.iter().filter(|f| !f.waived).count();
            if expect_fire && unwaived_hits == 0 {
                failures.push(format!(
                    "{} ({}) did not fire on {rel_dir}/ — the lint has gone dead",
                    lint.id, lint.name
                ));
            }
            if !expect_fire && unwaived_any != 0 {
                let msgs: Vec<_> = findings
                    .iter()
                    .filter(|f| !f.waived)
                    .map(|f| format!("{}:{} {}", f.file, f.line, f.message))
                    .collect();
                failures.push(format!(
                    "known-good graph fixture {rel_dir}/ produced blocking findings: {msgs:#?}"
                ));
            }
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixtures_pass_the_self_test() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let failures = run(&dir).expect("fixtures readable");
        assert!(failures.is_empty(), "{failures:#?}");
    }
}

//! Lint self-test: every lint must fire on its known-bad fixture and
//! stay quiet on its known-good twin.
//!
//! A lint that silently stops firing is worse than no lint — the gate
//! keeps reporting green while the invariant rots. The fixtures under
//! `crates/check/fixtures/` pin each lint's behaviour: `<lint>_bad.rs`
//! must produce at least one *unwaived* finding with the right ID, and
//! `<lint>_good.rs` must produce none (it exercises the same constructs
//! guarded, allowed, or waived — so the waiver machinery is covered
//! too). `rpr-check --self-test` runs in CI next to the workspace scan.

use crate::lints::{check_file, LINTS};
use crate::policy::Policy;
use std::path::Path;

/// The policy the fixtures are checked under: every scoped lint is
/// scoped to the fixture directory, and the atomic-ordering fixtures
/// are pinned to the documented gate set.
fn fixture_policy() -> Policy {
    Policy::parse(
        r#"
        [lints.panic_surface]
        include = ["fixtures/"]
        [lints.truncating_cast]
        include = ["fixtures/"]
        [lints.raw_clock]
        allow = []
        [lints.unsafe_block]
        allow = []
        [lints.atomic_ordering.pinned."fixtures/atomic_ordering_bad.rs"]
        allowed = ["Relaxed", "Release"]
        [lints.atomic_ordering.pinned."fixtures/atomic_ordering_good.rs"]
        allowed = ["Relaxed", "Release"]
        "#,
    )
    .expect("fixture policy is statically valid")
}

/// Runs the self-test against `fixtures_dir`. Returns the list of
/// failures (empty = all lints verified live).
///
/// # Errors
///
/// Returns an I/O error when a fixture file is missing or unreadable —
/// a missing fixture is itself a self-test failure mode that must not
/// pass silently.
pub fn run(fixtures_dir: &Path) -> std::io::Result<Vec<String>> {
    let policy = fixture_policy();
    let mut failures = Vec::new();
    for lint in LINTS {
        let snake = lint.name.replace('-', "_");
        for (suffix, expect_fire) in [("bad", true), ("good", false)] {
            let file = format!("{snake}_{suffix}.rs");
            let path = fixtures_dir.join(&file);
            let src = std::fs::read_to_string(&path).map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!("fixture {} unreadable: {e}", path.display()),
                )
            })?;
            let rel = format!("fixtures/{file}");
            let findings = check_file(&rel, &src, &policy);
            let unwaived_hits =
                findings.iter().filter(|f| !f.waived && f.id == lint.id).count();
            let unwaived_any = findings.iter().filter(|f| !f.waived).count();
            if expect_fire && unwaived_hits == 0 {
                failures.push(format!(
                    "{} ({}) did not fire on {rel} — the lint has gone dead",
                    lint.id, lint.name
                ));
            }
            if !expect_fire && unwaived_any != 0 {
                let ids: Vec<_> =
                    findings.iter().filter(|f| !f.waived).map(|f| f.id).collect();
                failures.push(format!(
                    "known-good fixture {rel} produced blocking findings: {ids:?}"
                ));
            }
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixtures_pass_the_self_test() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let failures = run(&dir).expect("fixtures readable");
        assert!(failures.is_empty(), "{failures:#?}");
    }
}

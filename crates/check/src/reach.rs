//! Phase 2, part 2: reachability over the call graph.
//!
//! Three of the graph lints share one shape: a set of *entry points*
//! must not transitively reach any *bad site* (panic, allocation,
//! blocking call). [`run_site_lint`] implements that shape once:
//!
//! 1. BFS from every entry over the waiver-filtered edge list — an
//!    edge whose call line carries `allow(<lint-name>)` in the
//!    caller's file is cut, which is the "per-edge waiver" the
//!    tentpole asks for;
//! 2. every reachable fn contributes its sites of the denied kinds;
//! 3. a site whose own line is waived (for this lint, or for any of
//!    the lint's `site_waiver_names` — RPR006 honours `panic-surface`
//!    waivers so an RPR001-justified site is not re-litigated) is
//!    reported `waived`; everything else is a blocking finding with
//!    one example call path from the nearest entry.
//!
//! Findings anchor at the **site** (that is the line to fix); the
//! message carries the entry and the path.

use crate::callgraph::Graph;
use crate::lints::{finding, Finding, LintInfo};
use crate::syntax::Site;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Per-fn BFS predecessor: `(previous fn id, call line in its file)`.
/// Entries carry `None`.
type Preds = BTreeMap<usize, Option<(usize, usize)>>;

/// BFS over edges not cut by `edge_waiver_names` waivers. Returns the
/// predecessor map of every reachable fn (entries included).
pub fn reachable(graph: &Graph<'_>, entries: &[usize], edge_waiver_names: &[&str]) -> Preds {
    let mut preds: Preds = BTreeMap::new();
    let mut q: VecDeque<usize> = VecDeque::new();
    for &e in entries {
        if preds.insert(e, None).is_none() {
            q.push_back(e);
        }
    }
    while let Some(id) = q.pop_front() {
        let fi = graph.file_of(id);
        for edge in &graph.edges[id] {
            if graph.waived(fi, edge.line, edge_waiver_names).is_some() {
                continue;
            }
            // Test fns never appear on production paths.
            if graph.model(edge.to).is_test {
                continue;
            }
            if let std::collections::btree_map::Entry::Vacant(v) = preds.entry(edge.to) {
                v.insert(Some((id, edge.line)));
                q.push_back(edge.to);
            }
        }
    }
    preds
}

/// The entry-to-`id` call path as ` → `-joined qualified names.
pub fn path_string(graph: &Graph<'_>, preds: &Preds, id: usize) -> String {
    let mut chain = vec![graph.display(id)];
    let mut cur = id;
    while let Some(Some((prev, _line))) = preds.get(&cur) {
        chain.push(graph.display(*prev));
        cur = *prev;
    }
    chain.reverse();
    chain.join(" → ")
}

/// Runs one reachability site lint.
///
/// * `entries` — fn ids the policy names as the protected surface.
/// * `deny_kinds` — [`crate::syntax::SiteKind::name`] spellings to flag.
/// * `site_waiver_names` — waiver lint names that exempt a *site* line
///   (always includes the lint's own name).
///
/// Edge waivers use the lint's own name only.
pub fn run_site_lint(
    graph: &Graph<'_>,
    lint: &'static LintInfo,
    entries: &[usize],
    deny_kinds: &[String],
    site_waiver_names: &[&str],
) -> Vec<Finding> {
    let own: &[&str] = &[lint.name];
    let preds = reachable(graph, entries, own);
    let mut names: Vec<&str> = vec![lint.name];
    names.extend(site_waiver_names.iter().copied().filter(|n| *n != lint.name));

    // One finding per (file, line, what); BFS preds give a shortest
    // path from whichever entry reached the site's fn first.
    let mut seen: BTreeMap<(usize, usize, String), ()> = BTreeMap::new();
    let mut out = Vec::new();
    for &id in preds.keys() {
        let f = graph.model(id);
        let fi = graph.file_of(id);
        for site in &f.sites {
            if !deny_kinds.iter().any(|k| k == site.kind.name()) {
                continue;
            }
            if seen.insert((fi, site.line, site.what.clone()), ()).is_some() {
                continue;
            }
            let path = path_string(graph, &preds, id);
            let mut fnd = site_finding(graph, lint, id, site, &path);
            if let Some(reason) = graph.waived(fi, site.line, &names) {
                fnd.waived = true;
                fnd.waiver_reason = Some(reason.to_string());
            }
            out.push(fnd);
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    out
}

fn site_finding(
    graph: &Graph<'_>,
    lint: &'static LintInfo,
    id: usize,
    site: &Site,
    path: &str,
) -> Finding {
    finding(
        lint,
        graph.path_of(id),
        site.line,
        format!("{} site `{}` reachable via {}", site.kind.name(), site.what, path),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;
    use crate::lints::LINTS;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::parse(
            &files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect::<Vec<_>>(),
        )
    }

    fn lint() -> &'static LintInfo {
        &LINTS[5] // RPR006 panic-reach
    }

    #[test]
    fn transitive_panic_is_found_with_path() {
        let w = ws(&[
            ("entry.rs", "pub fn parse() { mid(); }"),
            ("mid.rs", "pub fn mid() { deep(); }"),
            ("deep.rs", "pub fn deep() { opt.unwrap(); }"),
        ]);
        let g = Graph::build(&w);
        let entries = g.resolve_entry("entry.rs::parse");
        let f = run_site_lint(&g, lint(), &entries, &["unwrap".to_string()], &[]);
        assert_eq!(f.len(), 1);
        assert!(!f[0].waived);
        assert_eq!(f[0].file, "deep.rs");
        assert!(f[0].message.contains("entry.rs::parse → mid.rs::mid → deep.rs::deep"), "{}", f[0].message);
    }

    #[test]
    fn edge_waiver_breaks_the_path() {
        let w = ws(&[
            (
                "entry.rs",
                "pub fn parse() {\n\
                 // rpr-check: allow(panic-reach): mid is fuzz-covered panic-free\n\
                 mid();\n}",
            ),
            ("mid.rs", "pub fn mid() { x.unwrap(); }"),
        ]);
        let g = Graph::build(&w);
        let entries = g.resolve_entry("entry.rs::parse");
        let f = run_site_lint(&g, lint(), &entries, &["unwrap".to_string()], &[]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn site_waiver_downgrades_to_waived() {
        let w = ws(&[(
            "entry.rs",
            "pub fn parse() {\n\
             // rpr-check: allow(panic-surface): checked non-empty above\n\
             x.unwrap();\n}",
        )]);
        let g = Graph::build(&w);
        let entries = g.resolve_entry("entry.rs::parse");
        let f =
            run_site_lint(&g, lint(), &entries, &["unwrap".to_string()], &["panic-surface"]);
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
    }

    #[test]
    fn test_fns_are_not_on_paths() {
        let w = ws(&[
            ("entry.rs", "pub fn parse() { helper(); }"),
            (
                "h.rs",
                "#[cfg(test)]\nmod t { pub fn helper() { x.unwrap(); } }\n\
                 pub fn helper() {}",
            ),
        ]);
        let g = Graph::build(&w);
        let entries = g.resolve_entry("entry.rs::parse");
        let f = run_site_lint(&g, lint(), &entries, &["unwrap".to_string()], &[]);
        assert!(f.is_empty(), "{f:?}");
    }
}

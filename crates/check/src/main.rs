//! The `rpr-check` CLI.
//!
//! ```text
//! rpr-check --workspace [--root DIR] [--policy FILE] [--format human|json|sarif]
//! rpr-check --lint RPR006,RPR007 [--root DIR] [--policy FILE] [--timing]
//! rpr-check --self-test [--fixtures DIR]
//! rpr-check --dynamic-plan TOOL [--root DIR] [--policy FILE]
//! rpr-check --list
//! ```
//!
//! `--workspace` runs the per-file token lints (RPR001–RPR005).
//! `--lint` selects lints by ID: token IDs filter the workspace scan,
//! graph IDs (RPR006–RPR009) run the two-phase call-graph engine.
//! `--timing` prints per-phase wall times to stderr so the CI split
//! can show where the graph job spends its budget.
//!
//! `--dynamic-plan` prints the policy-pinned coverage for one nightly
//! tool (miri/asan/lsan/tsan/loom) as `cargo test` argument lines, one
//! per required invocation — CI loops over them, so the matrix always
//! runs exactly what `ci/check_policy.toml` pins.
//!
//! Exit codes: 0 = gate passed, 1 = blocking findings (or a dead lint
//! under `--self-test`), 2 = usage/configuration error.

use rpr_check::{
    check_graph, check_workspace, dynamic_plan, render_json, render_lints, render_sarif,
    render_text, selftest, Policy, GRAPH_LINT_IDS, LINTS,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    workspace: bool,
    self_test: bool,
    list: bool,
    format: Format,
    timing: bool,
    root: PathBuf,
    policy: PathBuf,
    fixtures: Option<PathBuf>,
    dynamic_plan: Option<String>,
    lints: Option<Vec<String>>,
}

fn usage() -> &'static str {
    "usage: rpr-check (--workspace | --lint IDS | --self-test | --dynamic-plan TOOL | --list) \
     [--root DIR] [--policy FILE] [--fixtures DIR] [--format human|json|sarif] [--timing]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        self_test: false,
        list: false,
        format: Format::Human,
        timing: false,
        root: PathBuf::from("."),
        policy: PathBuf::from("ci/check_policy.toml"),
        fixtures: None,
        dynamic_plan: None,
        lints: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--self-test" => args.self_test = true,
            "--list" => args.list = true,
            "--json" => args.format = Format::Json,
            "--timing" => args.timing = true,
            "--format" => {
                let v = it.next().ok_or_else(|| format!("--format needs a value\n{}", usage()))?;
                args.format = match v.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => {
                        return Err(format!("unknown format `{other}`\n{}", usage()));
                    }
                };
            }
            "--lint" => {
                let v = it.next().ok_or_else(|| format!("--lint needs IDs\n{}", usage()))?;
                let ids: Vec<String> =
                    v.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
                if ids.is_empty() {
                    return Err(format!("--lint needs IDs\n{}", usage()));
                }
                for id in &ids {
                    if !LINTS.iter().any(|l| l.id == *id) {
                        return Err(format!("unknown lint ID `{id}` (see --list)\n{}", usage()));
                    }
                }
                args.lints = Some(ids);
            }
            "--root" => args.root = next_path(&mut it, "--root")?,
            "--policy" => args.policy = next_path(&mut it, "--policy")?,
            "--fixtures" => args.fixtures = Some(next_path(&mut it, "--fixtures")?),
            "--dynamic-plan" => {
                args.dynamic_plan = Some(
                    it.next().ok_or_else(|| format!("--dynamic-plan needs a tool\n{}", usage()))?,
                );
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if !(args.workspace || args.self_test || args.list || args.dynamic_plan.is_some())
        && args.lints.is_none()
    {
        return Err(format!("pick a mode\n{}", usage()));
    }
    Ok(args)
}

fn next_path(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next().map(PathBuf::from).ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
}

fn load_policy(args: &Args) -> Result<Policy, String> {
    let policy_path =
        if args.policy.is_absolute() { args.policy.clone() } else { args.root.join(&args.policy) };
    let text = std::fs::read_to_string(&policy_path)
        .map_err(|e| format!("cannot read policy {}: {e}", policy_path.display()))?;
    Policy::parse(&text).map_err(|e| format!("{}: {e}", policy_path.display()))
}

fn render(format: Format, findings: &[rpr_check::Finding], scanned: usize) -> String {
    match format {
        Format::Human => render_text(findings, scanned),
        Format::Json => format!("{}\n", render_json(findings, scanned)),
        Format::Sarif => format!("{}\n", render_sarif(findings, scanned)),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rpr-check: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        print!("{}", render_lints());
        return ExitCode::SUCCESS;
    }

    let mut failed = false;

    if args.self_test {
        let fixtures = args
            .fixtures
            .clone()
            .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures"));
        match selftest::run(&fixtures) {
            Ok(failures) if failures.is_empty() => {
                println!("rpr-check: self-test passed — every lint fires on its bad fixture");
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("rpr-check self-test: {f}");
                }
                failed = true;
            }
            Err(e) => {
                eprintln!("rpr-check self-test: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(tool) = &args.dynamic_plan {
        let policy = match load_policy(&args) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("rpr-check: {e}");
                return ExitCode::from(2);
            }
        };
        match dynamic_plan(&policy, tool) {
            Some(plan) => println!("{plan}"),
            None => {
                eprintln!("rpr-check: no dynamic coverage pinned for `{tool}` — add a [dynamic.{tool}] table to the policy");
                return ExitCode::from(2);
            }
        }
    }

    if args.workspace || args.lints.is_some() {
        let policy = match load_policy(&args) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("rpr-check: {e}");
                return ExitCode::from(2);
            }
        };

        // Which lints run: `--workspace` alone = all token lints;
        // `--lint` = exactly the named ones (token and/or graph).
        let selected: Option<&[String]> = args.lints.as_deref();
        let want_token = args.workspace
            || selected
                .map(|ids| ids.iter().any(|id| !GRAPH_LINT_IDS.contains(&id.as_str())))
                .unwrap_or(false);
        let graph_ids: Vec<&str> = selected
            .map(|ids| {
                ids.iter()
                    .map(String::as_str)
                    .filter(|id| GRAPH_LINT_IDS.contains(id))
                    .collect()
            })
            .unwrap_or_default();

        let mut findings = Vec::new();
        let mut scanned = 0usize;

        if want_token {
            let t0 = Instant::now();
            match check_workspace(&args.root, &policy) {
                Ok((mut fs, n)) => {
                    if let Some(ids) = selected {
                        // RPR000 (waiver syntax) always rides along.
                        fs.retain(|f| f.id == "RPR000" || ids.iter().any(|id| id == f.id));
                    }
                    findings.extend(fs);
                    scanned = n;
                }
                Err(e) => {
                    eprintln!("rpr-check: workspace scan failed: {e}");
                    return ExitCode::from(2);
                }
            }
            if args.timing {
                eprintln!("rpr-check: token lints in {:?}", t0.elapsed());
            }
        }

        if !graph_ids.is_empty() {
            let t0 = Instant::now();
            match check_graph(&args.root, &policy, &graph_ids) {
                Ok((fs, n)) => {
                    findings.extend(fs);
                    scanned = scanned.max(n);
                }
                Err(e) => {
                    eprintln!("rpr-check: graph scan failed: {e}");
                    return ExitCode::from(2);
                }
            }
            if args.timing {
                eprintln!(
                    "rpr-check: graph lints ({}) in {:?}",
                    graph_ids.join(","),
                    t0.elapsed()
                );
            }
        }

        print!("{}", render(args.format, &findings, scanned));
        if findings.iter().any(|f| !f.waived) {
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! The `rpr-check` CLI.
//!
//! ```text
//! rpr-check --workspace [--root DIR] [--policy FILE] [--json]
//! rpr-check --self-test [--fixtures DIR]
//! rpr-check --dynamic-plan TOOL [--root DIR] [--policy FILE]
//! rpr-check --list
//! ```
//!
//! `--dynamic-plan` prints the policy-pinned coverage for one nightly
//! tool (miri/asan/lsan/tsan/loom) as `cargo test` argument lines, one
//! per required invocation — CI loops over them, so the matrix always
//! runs exactly what `ci/check_policy.toml` pins.
//!
//! Exit codes: 0 = gate passed, 1 = blocking findings (or a dead lint
//! under `--self-test`), 2 = usage/configuration error.

use rpr_check::{
    check_workspace, dynamic_plan, render_json, render_lints, render_text, selftest, Policy,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    self_test: bool,
    list: bool,
    json: bool,
    root: PathBuf,
    policy: PathBuf,
    fixtures: Option<PathBuf>,
    dynamic_plan: Option<String>,
}

fn usage() -> &'static str {
    "usage: rpr-check (--workspace | --self-test | --dynamic-plan TOOL | --list) \
     [--root DIR] [--policy FILE] [--fixtures DIR] [--json]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        self_test: false,
        list: false,
        json: false,
        root: PathBuf::from("."),
        policy: PathBuf::from("ci/check_policy.toml"),
        fixtures: None,
        dynamic_plan: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--self-test" => args.self_test = true,
            "--list" => args.list = true,
            "--json" => args.json = true,
            "--root" => args.root = next_path(&mut it, "--root")?,
            "--policy" => args.policy = next_path(&mut it, "--policy")?,
            "--fixtures" => args.fixtures = Some(next_path(&mut it, "--fixtures")?),
            "--dynamic-plan" => {
                args.dynamic_plan = Some(
                    it.next().ok_or_else(|| format!("--dynamic-plan needs a tool\n{}", usage()))?,
                );
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if !(args.workspace || args.self_test || args.list || args.dynamic_plan.is_some()) {
        return Err(format!("pick a mode\n{}", usage()));
    }
    Ok(args)
}

fn next_path(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next().map(PathBuf::from).ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
}

fn load_policy(args: &Args) -> Result<Policy, String> {
    let policy_path =
        if args.policy.is_absolute() { args.policy.clone() } else { args.root.join(&args.policy) };
    let text = std::fs::read_to_string(&policy_path)
        .map_err(|e| format!("cannot read policy {}: {e}", policy_path.display()))?;
    Policy::parse(&text).map_err(|e| format!("{}: {e}", policy_path.display()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rpr-check: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        print!("{}", render_lints());
        return ExitCode::SUCCESS;
    }

    let mut failed = false;

    if args.self_test {
        let fixtures = args
            .fixtures
            .clone()
            .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures"));
        match selftest::run(&fixtures) {
            Ok(failures) if failures.is_empty() => {
                println!("rpr-check: self-test passed — every lint fires on its bad fixture");
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("rpr-check self-test: {f}");
                }
                failed = true;
            }
            Err(e) => {
                eprintln!("rpr-check self-test: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(tool) = &args.dynamic_plan {
        let policy = match load_policy(&args) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("rpr-check: {e}");
                return ExitCode::from(2);
            }
        };
        match dynamic_plan(&policy, tool) {
            Some(plan) => println!("{plan}"),
            None => {
                eprintln!("rpr-check: no dynamic coverage pinned for `{tool}` — add a [dynamic.{tool}] table to the policy");
                return ExitCode::from(2);
            }
        }
    }

    if args.workspace {
        let policy = match load_policy(&args) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("rpr-check: {e}");
                return ExitCode::from(2);
            }
        };
        match check_workspace(&args.root, &policy) {
            Ok((findings, scanned)) => {
                if args.json {
                    println!("{}", render_json(&findings, scanned));
                } else {
                    print!("{}", render_text(&findings, scanned));
                }
                if findings.iter().any(|f| !f.waived) {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("rpr-check: workspace scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

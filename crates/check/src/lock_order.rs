//! RPR007 lock-order: no ordering cycles between the locks of the
//! serving tier.
//!
//! The serve/stream/trace crates hand frames between threads through
//! mutex-protected queues, counters, and flight recorders. A deadlock
//! needs two locks taken in opposite orders on two threads — which is
//! invisible to per-file lints and to any single test that doesn't
//! hit the exact interleaving. This lint extracts the *lock
//! acquisition graph* statically: an edge `A → B` means some path
//! acquires `B` (directly or through callees) while holding `A`. A
//! cycle in that graph is a potential deadlock and fails the gate.
//!
//! ## Lock identity is class-level
//!
//! Locks are named by *where they live in a type* (`BufferPool.inner`,
//! `StageQueue.state`), not per-instance — instances are
//! indistinguishable statically. Two consequences, both documented
//! caveats (DESIGN.md §4j): acquiring the same class twice (two
//! different `StageQueue`s) looks like a self-edge, so self-edges are
//! **excluded** from cycle detection (class-level analysis cannot tell
//! a real re-entry from two instances); and a cycle between classes
//! may be a false positive if the instances can never interleave —
//! that is what `allow(lock-order)` waivers on an acquisition line
//! are for (the waiver removes the acquisition from the graph).
//!
//! Hold tracking is phase 1's: `let`-bound guards to end of block,
//! temporaries to end of statement, `drop(guard)` releases early.
//! Holds propagate through calls: if `f` calls `g` while holding `A`,
//! every lock in `g`'s transitive acquisition set is acquired-under-`A`.

use crate::callgraph::Graph;
use crate::lints::{finding, in_set, Finding, LINTS};
use crate::policy::Policy;
use crate::syntax::Receiver;
use std::collections::{BTreeMap, BTreeSet};

/// Wrapper types that are not the lock-owning type itself.
const WRAPPERS: &[&str] =
    &["Arc", "Rc", "Box", "Mutex", "RwLock", "RefCell", "Option", "Vec", "CachePadded"];

/// Runs RPR007 over a built graph.
pub fn run(graph: &Graph<'_>, policy: &Policy) -> Vec<Finding> {
    let lint = &LINTS[6];
    debug_assert_eq!(lint.id, "RPR007");
    let include = policy.str_array("lints.lock_order.include");
    if include.is_empty() {
        return Vec::new();
    }

    // 1. Name every in-scope, non-waived lock acquisition.
    //    lock_keys[fn_id][lock_idx] = Some(class key) | None (waived /
    //    out of scope).
    let n = graph.fns.len();
    let mut lock_keys: Vec<Vec<Option<String>>> = Vec::with_capacity(n);
    let mut examples: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for id in 0..n {
        let f = graph.model(id);
        let fi = graph.file_of(id);
        let path = graph.path_of(id);
        let in_scope = !f.is_test && in_set(path, &include);
        let mut keys = Vec::with_capacity(f.locks.len());
        for site in &f.locks {
            if !in_scope || graph.waived(fi, site.line, &[lint.name]).is_some() {
                keys.push(None);
                continue;
            }
            let key = lock_key(graph, id, &site.recv, site.line);
            examples.entry(key.clone()).or_insert_with(|| (path.to_string(), site.line));
            keys.push(Some(key));
        }
        lock_keys.push(keys);
    }

    // 2. Transitive acquisition sets Acq(f), fixpoint over the call
    //    graph (edge waivers cut propagation; test fns contribute
    //    nothing).
    let mut acq: Vec<BTreeSet<String>> = (0..n)
        .map(|id| lock_keys[id].iter().flatten().cloned().collect())
        .collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            let fi = graph.file_of(id);
            let mut add: BTreeSet<String> = BTreeSet::new();
            for e in &graph.edges[id] {
                if graph.model(e.to).is_test
                    || graph.waived(fi, e.line, &[lint.name]).is_some()
                {
                    continue;
                }
                for k in &acq[e.to] {
                    if !acq[id].contains(k) {
                        add.insert(k.clone());
                    }
                }
            }
            if !add.is_empty() {
                acq[id].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // 3. Lock-order edges `held → acquired` with one example site per
    //    ordered pair.
    let mut order: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut edge_examples: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    let mut add_edge = |a: &str, b: &str, file: &str, line: usize| {
        if a == b {
            return; // class-level self-edges excluded (see module docs)
        }
        order.entry(a.to_string()).or_default().insert(b.to_string());
        edge_examples
            .entry((a.to_string(), b.to_string()))
            .or_insert_with(|| (file.to_string(), line));
    };
    for (id, keys) in lock_keys.iter().enumerate() {
        let f = graph.model(id);
        let fi = graph.file_of(id);
        let path = graph.path_of(id).to_string();
        // Intra-fn: a lock acquired while earlier locks are held.
        for (li, site) in f.locks.iter().enumerate() {
            let Some(Some(b)) = keys.get(li).cloned() else { continue };
            for &h in &site.held_locks {
                if let Some(Some(a)) = keys.get(h).cloned() {
                    add_edge(&a, &b, &path, site.line);
                }
            }
        }
        // Inter-fn: calls made while holding flow into the callee's
        // transitive acquisition set.
        for e in &graph.edges[id] {
            if graph.model(e.to).is_test || graph.waived(fi, e.line, &[lint.name]).is_some() {
                continue;
            }
            let held = &f.calls[e.call].held_locks;
            if held.is_empty() {
                continue;
            }
            for &h in held {
                let Some(Some(a)) = keys.get(h).cloned() else { continue };
                for b in &acq[e.to] {
                    add_edge(&a, b, &path, e.line);
                }
            }
        }
    }

    // 4. Cycle detection: any strongly-connected component with ≥2
    //    locks contains an ordering cycle.
    let mut findings = Vec::new();
    for scc in sccs(&order) {
        if scc.len() < 2 {
            continue;
        }
        let cycle = one_cycle(&order, &scc);
        let mut legs = Vec::new();
        for w in cycle.windows(2) {
            let (file, line) = edge_examples
                .get(&(w[0].clone(), w[1].clone()))
                .cloned()
                .unwrap_or_default();
            legs.push(format!("`{}` taken while holding `{}` at {file}:{line}", w[1], w[0]));
        }
        let (anchor_file, anchor_line) =
            examples.get(&cycle[0]).cloned().unwrap_or_default();
        findings.push(finding(
            lint,
            &anchor_file,
            anchor_line,
            format!("lock-order cycle {}: {}", cycle.join(" → "), legs.join("; ")),
        ));
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    findings
}

/// Class-level identity for one acquisition.
fn lock_key(graph: &Graph<'_>, id: usize, recv: &Receiver, line: usize) -> String {
    let f = graph.model(id);
    let fi = graph.file_of(id);
    match recv {
        Receiver::SelfDot => match &f.self_ty {
            Some(t) => t.clone(),
            None => format!("{}::{}::self", graph.path_of(id), f.name),
        },
        Receiver::Field(field) => {
            if let Some(t) = &f.self_ty {
                // The common case: `self.field.lock()` in an impl.
                if graph.ws.files[fi]
                    .structs
                    .iter()
                    .any(|s| &s.name == t && s.fields.iter().any(|(n, _)| n == field))
                {
                    return format!("{t}.{field}");
                }
            }
            // Otherwise: any struct declaring the field (caller's file
            // first, then workspace-wide).
            for file in std::iter::once(&graph.ws.files[fi]).chain(&graph.ws.files) {
                for s in &file.structs {
                    if s.fields.iter().any(|(n, _)| n == field) {
                        return format!("{}.{field}", s.name);
                    }
                }
            }
            match &f.self_ty {
                Some(t) => format!("{t}.{field}"),
                None => format!("{}::{}.{field}", graph.path_of(id), f.name),
            }
        }
        Receiver::Ident(x) => {
            let typed = f
                .params
                .iter()
                .chain(&f.locals)
                .find(|(n, _)| n == x)
                .map(|(_, segs)| segs.clone());
            if let Some(segs) = typed {
                if let Some(t) = segs.iter().find(|s| !WRAPPERS.contains(&s.as_str())) {
                    return t.clone();
                }
            }
            format!("{}::{}::{x}", graph.path_of(id), f.name)
        }
        Receiver::Expr => format!("{}::{}::<expr>@{line}", graph.path_of(id), f.name),
    }
}

/// Tarjan SCC over the order graph.
fn sccs(adj: &BTreeMap<String, BTreeSet<String>>) -> Vec<Vec<String>> {
    let nodes: Vec<String> = adj
        .iter()
        .flat_map(|(k, vs)| std::iter::once(k.clone()).chain(vs.iter().cloned()))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let index_of: BTreeMap<&str, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
    let n = nodes.len();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, bs) in adj {
        let ai = index_of[a.as_str()];
        for b in bs {
            succ[ai].push(index_of[b.as_str()]);
        }
    }

    // Iterative Tarjan.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<String>> = Vec::new();
    // DFS frames: (node, child cursor).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        while !frames.is_empty() {
            let (v, cursor) = *frames.last().expect("non-empty");
            if cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if cursor < succ[v].len() {
                let w = succ[v][cursor];
                frames.last_mut().expect("non-empty").1 = cursor + 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(nodes[w].clone());
                        if w == v {
                            break;
                        }
                    }
                    comp.reverse();
                    out.push(comp);
                }
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }
    out
}

/// Extracts one concrete cycle within an SCC: walk in-SCC successors
/// from the lexicographically first node until a repeat, then close
/// the loop. Returned as `[a, …, a]` (first == last).
fn one_cycle(adj: &BTreeMap<String, BTreeSet<String>>, scc: &[String]) -> Vec<String> {
    let set: BTreeSet<&str> = scc.iter().map(String::as_str).collect();
    let start = scc.iter().min().cloned().unwrap_or_default();
    let mut path = vec![start.clone()];
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    seen.insert(start.clone(), 0);
    let mut cur = start;
    loop {
        let next = adj
            .get(&cur)
            .and_then(|vs| vs.iter().find(|v| set.contains(v.as_str())))
            .cloned();
        let Some(next) = next else { return path };
        if let Some(&pos) = seen.get(&next) {
            let mut cycle = path[pos..].to_vec();
            cycle.push(next);
            return cycle;
        }
        seen.insert(next.clone(), path.len());
        path.push(next.clone());
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{Graph, Workspace};
    use crate::policy::Policy;

    fn check(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace::parse(
            &files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect::<Vec<_>>(),
        );
        let g = Graph::build(&ws);
        let policy =
            Policy::parse("[lints.lock_order]\ninclude = [\"crates/serve/src/\"]\n").unwrap();
        run(&g, &policy)
    }

    const STRUCTS: &str = "pub struct S { a: Mutex<Inner>, b: Mutex<Inner> }\n";

    #[test]
    fn opposite_orders_in_two_fns_cycle() {
        let f = check(&[(
            "crates/serve/src/x.rs",
            &format!(
                "{STRUCTS}impl S {{\n\
                 fn one(&self) {{ let g = self.a.lock(); let h = self.b.lock(); }}\n\
                 fn two(&self) {{ let g = self.b.lock(); let h = self.a.lock(); }}\n}}"
            ),
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("S.a") && f[0].message.contains("S.b"), "{}", f[0].message);
    }

    #[test]
    fn consistent_order_is_clean() {
        let f = check(&[(
            "crates/serve/src/x.rs",
            &format!(
                "{STRUCTS}impl S {{\n\
                 fn one(&self) {{ let g = self.a.lock(); let h = self.b.lock(); }}\n\
                 fn two(&self) {{ let g = self.a.lock(); let h = self.b.lock(); }}\n}}"
            ),
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cross_fn_holds_propagate_through_calls() {
        let f = check(&[(
            "crates/serve/src/x.rs",
            &format!(
                "{STRUCTS}impl S {{\n\
                 fn one(&self) {{ let g = self.a.lock(); self.takes_b(); }}\n\
                 fn takes_b(&self) {{ let h = self.b.lock(); }}\n\
                 fn two(&self) {{ let g = self.b.lock(); self.takes_a(); }}\n\
                 fn takes_a(&self) {{ let h = self.a.lock(); }}\n}}"
            ),
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn statement_scoped_temporaries_do_not_hold() {
        // `self.a.lock().x()` releases at end of statement, so the
        // later `b` acquisition is not under `a`.
        let f = check(&[(
            "crates/serve/src/x.rs",
            &format!(
                "{STRUCTS}impl S {{\n\
                 fn one(&self) {{ self.a.lock().touch(); let h = self.b.lock(); }}\n\
                 fn two(&self) {{ self.b.lock().touch(); let h = self.a.lock(); }}\n}}"
            ),
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn waiver_on_acquisition_removes_it_from_the_graph() {
        let f = check(&[(
            "crates/serve/src/x.rs",
            &format!(
                "{STRUCTS}impl S {{\n\
                 fn one(&self) {{ let g = self.a.lock(); let h = self.b.lock(); }}\n\
                 fn two(&self) {{ let g = self.b.lock();\n\
                 // rpr-check: allow(lock-order): `two` only runs at shutdown after all `one` callers quiesce\n\
                 let h = self.a.lock(); }}\n}}"
            ),
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn same_class_twice_is_not_a_self_cycle() {
        let f = check(&[(
            "crates/serve/src/x.rs",
            "pub struct Shard { m: Mutex<u8> }\npub struct H { shards: Vec<Shard> }\n\
             impl H { fn f(&self, i: usize, j: usize) {\n\
             let a = self.shards[i].lock(); let b = self.shards[j].lock(); } }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn out_of_scope_locks_are_ignored() {
        let f = check(&[(
            "crates/other/src/x.rs",
            "pub struct S { a: Mutex<u8>, b: Mutex<u8> }\nimpl S {\n\
             fn one(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             fn two(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n}",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}

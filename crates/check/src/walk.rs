//! Workspace traversal: finds every `.rs` file the gate covers.

use crate::lints::path_matches;
use crate::policy::Policy;
use std::path::{Path, PathBuf};

/// Directories never scanned regardless of policy (build output,
/// vendored third-party subsets, VCS internals). The policy's
/// `global.exclude` list extends this.
const HARD_EXCLUDES: &[&str] = &["target/", "third_party/", ".git/"];

/// Collects repo-relative (`/`-separated) paths of all `.rs` files
/// under `root` that the gate covers.
///
/// # Errors
///
/// Returns the first I/O error hit while walking.
pub fn collect_rust_files(root: &Path, policy: &Policy) -> std::io::Result<Vec<String>> {
    let mut excludes: Vec<String> = HARD_EXCLUDES.iter().map(|s| s.to_string()).collect();
    excludes.extend(policy.str_array("global.exclude"));
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = relative(root, &path);
            if excludes.iter().any(|e| path_matches(&rel, e) || rel.starts_with(e.trim_end_matches('/'))) {
                continue;
            }
            if entry.file_type()?.is_dir() {
                stack.push(path);
            } else if rel.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, `/`-separated.
pub fn relative(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_excludes_are_always_skipped() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
        let files = collect_rust_files(root, &Policy::default()).unwrap();
        assert!(files.iter().all(|f| !f.starts_with("target/")));
        assert!(files.iter().all(|f| !f.starts_with("third_party/")));
        assert!(files.iter().any(|f| f == "crates/wire/src/frame.rs"));
    }
}

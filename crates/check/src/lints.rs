//! The project-specific lints.
//!
//! Each lint carries a machine-readable ID (`RPR001`…), a kebab-case
//! name (the spelling waivers use), and a fix-it hint. Findings on a
//! line covered by a waiver comment —
//!
//! ```text
//! // rpr-check: allow(<lint-name>): <justification>
//! ```
//!
//! — are reported as waived and do not fail the gate. A waiver must
//! carry a non-empty justification; a bare `allow(...)` is itself a
//! finding. Standalone waiver comments cover the following line;
//! trailing ones cover their own line.
//!
//! Code inside `#[test]` / `#[cfg(test)]` items is exempt from every
//! lint: panicking asserts are the point of tests, and test clocks are
//! harmless. The detection is token-level (an attribute containing the
//! ident `test` and not `not`, followed by one item).

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::policy::Policy;
use serde::Serialize;

/// One lint's identity and documentation.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Stable machine-readable ID.
    pub id: &'static str,
    /// Kebab-case name, used in waivers and policy tables.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Fix-it hint attached to every finding.
    pub hint: &'static str,
}

/// Every lint rpr-check enforces.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        id: "RPR001",
        name: "panic-surface",
        description: "no unwrap/expect/panicking macros/indexing in parse & decode surfaces",
        hint: "return a typed WireError/CoreError (or use .get()/try_into); \
               if the panic is provably unreachable, waive with justification",
    },
    LintInfo {
        id: "RPR002",
        name: "truncating-cast",
        description: "no unguarded truncating `as` casts in bitstream/offset arithmetic",
        hint: "use try_from with a typed error for the overflow edge; \
               widening or bounds-checked casts may be waived with justification",
    },
    LintInfo {
        id: "RPR003",
        name: "raw-clock",
        description: "no raw Instant::now/SystemTime reads outside clock/bench modules",
        hint: "route time through the owning module's clock (rpr-trace epoch, \
               stage timers) so simulated time stays injectable",
    },
    LintInfo {
        id: "RPR004",
        name: "unsafe-block",
        description: "no `unsafe` outside the policy allowlist",
        hint: "this workspace is 100% safe Rust; add the file to the policy \
               allowlist only with a Miri-covered justification",
    },
    LintInfo {
        id: "RPR005",
        name: "atomic-ordering",
        description: "atomic Ordering usage pinned to the documented policy (no stray SeqCst)",
        hint: "the trace gate is Relaxed-load/Release-store by design (DESIGN.md 4e); \
               stronger orderings need a policy pin or a waiver",
    },
    // Graph lints (DESIGN.md §4j): cross-file, run over the workspace
    // call graph rather than per-file token streams.
    LintInfo {
        id: "RPR006",
        name: "panic-reach",
        description: "entry points in the panic surface must be transitively panic-free",
        hint: "make the reachable callee fallible (typed error) or break the edge: \
               waive the call line or the panic site with a justification",
    },
    LintInfo {
        id: "RPR007",
        name: "lock-order",
        description: "lock acquisitions across serve/stream/trace must form no ordering cycle",
        hint: "acquire locks in one global order (or drop the first guard before \
               taking the second); waive an acquisition only with a proof it cannot deadlock",
    },
    LintInfo {
        id: "RPR008",
        name: "hot-path-alloc",
        description: "no allocating call reachable from chunked kernels / BufferPool steady state",
        hint: "take buffers from the BufferPool (DESIGN.md 4g) instead of allocating; \
               cold-path or capacity-amortized allocations may be waived with justification",
    },
    LintInfo {
        id: "RPR009",
        name: "event-loop-blocking",
        description: "no blocking call reachable from the Server's non-blocking event loop",
        hint: "use the try_/poll_ variant (try_push, try_pop, non-blocking I/O); \
               a bounded, measured wait may be waived with justification",
    },
];

/// Looks up a lint by kebab-case name.
pub fn lint_by_name(name: &str) -> Option<&'static LintInfo> {
    LINTS.iter().find(|l| l.name == name)
}

/// One reported violation.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Machine-readable lint ID (`RPR001`…).
    pub id: &'static str,
    /// Kebab-case lint name.
    pub lint: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
    /// True when a waiver comment covers the line.
    pub waived: bool,
    /// The waiver's justification, when waived.
    pub waiver_reason: Option<String>,
}

/// True when `path` (repo-relative, `/`-separated) matches a policy
/// entry: entries ending in `/` are directory prefixes (matched at the
/// path start or any segment boundary), others are exact files.
pub fn path_matches(path: &str, entry: &str) -> bool {
    if entry.ends_with('/') {
        path.starts_with(entry) || path.contains(&format!("/{entry}"))
    } else {
        path == entry || path.ends_with(&format!("/{entry}"))
    }
}

/// True when `path` matches any entry.
pub(crate) fn in_set(path: &str, entries: &[String]) -> bool {
    entries.iter().any(|e| path_matches(path, e))
}

/// A waiver parsed from a comment.
#[derive(Debug, Clone)]
pub(crate) struct Waiver {
    pub(crate) lint: String,
    pub(crate) reason: String,
    /// Lines this waiver covers.
    pub(crate) lines: Vec<usize>,
}

/// Extracts waivers (and malformed-waiver findings) from comments.
pub(crate) fn collect_waivers(
    comments: &[Comment],
    file: &str,
    findings: &mut Vec<Finding>,
) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in comments {
        // Doc comments (`///`, `//!`, `/** */`, `/*! */`) describe the
        // waiver syntax; only plain comments can *be* waivers.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(rest) = c.text.split("rpr-check:").nth(1) else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            findings.push(Finding {
                id: "RPR000",
                lint: "waiver-syntax",
                file: file.to_string(),
                line: c.line,
                message: format!("malformed rpr-check directive: `{}`", c.text.trim()),
                hint: "write `rpr-check: allow(<lint-name>): <justification>`",
                waived: false,
                waiver_reason: None,
            });
            continue;
        };
        let Some((name, tail)) = rest.split_once(')') else {
            findings.push(malformed(file, c.line, "missing closing `)` in allow(...)"));
            continue;
        };
        let name = name.trim().to_string();
        if lint_by_name(&name).is_none() {
            findings.push(malformed(file, c.line, &format!("unknown lint `{name}` in waiver")));
            continue;
        }
        let reason = tail.trim_start().trim_start_matches(':').trim().to_string();
        if reason.is_empty() {
            findings.push(malformed(
                file,
                c.line,
                &format!("waiver for `{name}` carries no justification"),
            ));
            continue;
        }
        let mut lines = vec![c.line];
        if c.standalone {
            lines.push(c.line + 1);
        }
        waivers.push(Waiver { lint: name, reason, lines });
    }
    waivers
}

fn malformed(file: &str, line: usize, msg: &str) -> Finding {
    Finding {
        id: "RPR000",
        lint: "waiver-syntax",
        file: file.to_string(),
        line,
        message: msg.to_string(),
        hint: "write `rpr-check: allow(<lint-name>): <justification>`",
        waived: false,
        waiver_reason: None,
    }
}

/// Computes half-open token-index ranges covered by test items
/// (`#[test]` / `#[cfg(test)]` attributes and the item that follows).
pub(crate) fn test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct('#') && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('[')) {
            // Collect the attribute body.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut has_test = false;
            let mut has_not = false;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Ident(s) if s == "test" => has_test = true,
                    TokKind::Ident(s) if s == "not" => has_not = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test && !has_not {
                // Skip any further attributes, then the item itself.
                let start = i;
                let mut k = j + 1;
                while k < toks.len()
                    && toks[k].kind == TokKind::Punct('#')
                    && matches!(toks.get(k + 1), Some(t) if t.kind == TokKind::Punct('['))
                {
                    let mut d = 0usize;
                    k += 1;
                    while k < toks.len() {
                        match toks[k].kind {
                            TokKind::Punct('[') => d += 1,
                            TokKind::Punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // The item ends at the matching `}` of its first brace
                // block, or at a top-level `;`.
                let mut braces = 0usize;
                let mut seen_brace = false;
                while k < toks.len() {
                    match toks[k].kind {
                        TokKind::Punct('{') => {
                            braces += 1;
                            seen_brace = true;
                        }
                        TokKind::Punct('}') => {
                            braces = braces.saturating_sub(1);
                            if seen_brace && braces == 0 {
                                k += 1;
                                break;
                            }
                        }
                        TokKind::Punct(';') if !seen_brace => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                ranges.push((start, k));
                i = k;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Keywords that may legitimately precede `[` without forming an index
/// expression (`for [a, b] in …`, `impl Trait for [u8]`).
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static",
    "struct", "trait", "type", "unsafe", "use", "where", "while", "yield", "await",
];

/// Macros whose invocation panics at runtime.
const PANIC_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// Integer types a cast can truncate into. `usize` is included: the
/// wire format's lengths are `u64`, and `u64 as usize` truncates on
/// 32-bit targets.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize"];

/// Atomic `Ordering` variants (to tell them apart from `cmp::Ordering`).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Runs every applicable lint over one file.
///
/// `rel_path` must be repo-relative with `/` separators; scoping and
/// allowlists match against it.
pub fn check_file(rel_path: &str, src: &str, policy: &Policy) -> Vec<Finding> {
    let lexed = lex(src);
    let mut findings = Vec::new();
    let waivers = collect_waivers(&lexed.comments, rel_path, &mut findings);
    let skip = test_ranges(&lexed.toks);
    let skipped = |idx: usize| skip.iter().any(|&(a, b)| idx >= a && idx < b);
    let toks = &lexed.toks;

    let mut raw: Vec<Finding> = Vec::new();

    // RPR001 panic-surface (scoped by include list).
    if in_set(rel_path, &policy.str_array("lints.panic_surface.include")) {
        let lint = &LINTS[0];
        for i in 0..toks.len() {
            if skipped(i) {
                continue;
            }
            match &toks[i].kind {
                TokKind::Ident(s) if (s == "unwrap" || s == "expect") => {
                    let after_dot =
                        i > 0 && toks[i - 1].kind == TokKind::Punct('.') && !skipped(i - 1);
                    let called =
                        matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('('));
                    if after_dot && called {
                        raw.push(finding(lint, rel_path, toks[i].line, format!(".{s}() may panic")));
                    }
                }
                TokKind::Ident(s) if PANIC_MACROS.contains(&s.as_str()) => {
                    if matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Punct('!')) {
                        raw.push(finding(
                            lint,
                            rel_path,
                            toks[i].line,
                            format!("{s}! panics at runtime"),
                        ));
                    }
                }
                TokKind::Punct('[') if i > 0 && !skipped(i - 1) => {
                    let indexes = match &toks[i - 1].kind {
                        TokKind::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
                        TokKind::Punct(')') | TokKind::Punct(']') => true,
                        _ => false,
                    };
                    if indexes {
                        raw.push(finding(
                            lint,
                            rel_path,
                            toks[i].line,
                            "slice indexing/slicing may panic out of bounds".to_string(),
                        ));
                    }
                }
                _ => {}
            }
        }
    }

    // RPR002 truncating-cast (scoped by include list).
    if in_set(rel_path, &policy.str_array("lints.truncating_cast.include")) {
        let lint = &LINTS[1];
        for i in 0..toks.len().saturating_sub(1) {
            if skipped(i) {
                continue;
            }
            if toks[i].kind == TokKind::Ident("as".into()) {
                if let TokKind::Ident(ty) = &toks[i + 1].kind {
                    if NARROW_INTS.contains(&ty.as_str()) {
                        raw.push(finding(
                            lint,
                            rel_path,
                            toks[i].line,
                            format!("`as {ty}` silently truncates out-of-range values"),
                        ));
                    }
                }
            }
        }
    }

    // RPR003 raw-clock (global minus allowlist).
    if !in_set(rel_path, &policy.str_array("lints.raw_clock.allow")) {
        let lint = &LINTS[2];
        for i in 0..toks.len() {
            if skipped(i) {
                continue;
            }
            let TokKind::Ident(s) = &toks[i].kind else { continue };
            if s != "Instant" && s != "SystemTime" {
                continue;
            }
            let now = toks.get(i + 1).map(|t| &t.kind) == Some(&TokKind::Punct(':'))
                && toks.get(i + 2).map(|t| &t.kind) == Some(&TokKind::Punct(':'))
                && matches!(toks.get(i + 3), Some(t) if t.kind == TokKind::Ident("now".into()));
            if now {
                raw.push(finding(
                    lint,
                    rel_path,
                    toks[i].line,
                    format!("raw {s}::now() outside a clock/bench module"),
                ));
            }
        }
    }

    // RPR004 unsafe-block (global minus allowlist).
    if !in_set(rel_path, &policy.str_array("lints.unsafe_block.allow")) {
        let lint = &LINTS[3];
        for (i, t) in toks.iter().enumerate() {
            if skipped(i) {
                continue;
            }
            if t.kind == TokKind::Ident("unsafe".into()) {
                raw.push(finding(lint, rel_path, t.line, "`unsafe` outside the allowlist".into()));
            }
        }
    }

    // RPR005 atomic-ordering: SeqCst banned everywhere; files with a
    // pinned set may only use the orderings that set lists.
    {
        let lint = &LINTS[4];
        let pinned = policy.str_array(&format!("lints.atomic_ordering.pinned.{rel_path}.allowed"));
        for i in 0..toks.len() {
            if skipped(i) {
                continue;
            }
            let TokKind::Ident(s) = &toks[i].kind else { continue };
            if s != "Ordering" {
                continue;
            }
            let variant = if toks.get(i + 1).map(|t| &t.kind) == Some(&TokKind::Punct(':'))
                && toks.get(i + 2).map(|t| &t.kind) == Some(&TokKind::Punct(':'))
            {
                match toks.get(i + 3).map(|t| &t.kind) {
                    Some(TokKind::Ident(v)) if ATOMIC_ORDERINGS.contains(&v.as_str()) => {
                        Some(v.clone())
                    }
                    _ => None,
                }
            } else {
                None
            };
            let Some(variant) = variant else { continue };
            if variant == "SeqCst" {
                raw.push(finding(
                    lint,
                    rel_path,
                    toks[i].line,
                    "Ordering::SeqCst is banned by the atomics policy".into(),
                ));
            } else if !pinned.is_empty() && !pinned.contains(&variant) {
                raw.push(finding(
                    lint,
                    rel_path,
                    toks[i].line,
                    format!(
                        "Ordering::{variant} is outside this file's pinned set ({})",
                        pinned.join(", ")
                    ),
                ));
            }
        }
    }

    // Apply waivers.
    for mut f in raw {
        if let Some(w) = waivers
            .iter()
            .find(|w| w.lint == f.lint && w.lines.contains(&f.line))
        {
            f.waived = true;
            f.waiver_reason = Some(w.reason.clone());
        }
        findings.push(f);
    }
    findings.sort_by(|a, b| (a.line, a.id).cmp(&(b.line, b.id)));
    findings
}

pub(crate) fn finding(lint: &LintInfo, file: &str, line: usize, message: String) -> Finding {
    Finding {
        id: lint.id,
        lint: lint.name,
        file: file.to_string(),
        line,
        message,
        hint: lint.hint,
        waived: false,
        waiver_reason: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy_scoping(file: &str) -> Policy {
        Policy::parse(&format!(
            "[lints.panic_surface]\ninclude = [\"{file}\"]\n\
             [lints.truncating_cast]\ninclude = [\"{file}\"]\n"
        ))
        .unwrap()
    }

    fn unwaived(findings: &[Finding]) -> Vec<&Finding> {
        findings.iter().filter(|f| !f.waived).collect()
    }

    #[test]
    fn unwrap_and_indexing_fire_in_scope_only() {
        let src = "fn f(v: &[u8]) -> u8 { v.first().unwrap(); v[0] }";
        let p = policy_scoping("a.rs");
        let hits = check_file("a.rs", src, &p);
        assert_eq!(hits.iter().filter(|f| f.id == "RPR001").count(), 2);
        let out_of_scope = check_file("b.rs", src, &p);
        assert!(out_of_scope.iter().all(|f| f.id != "RPR001"));
    }

    #[test]
    fn doc_comments_describing_waiver_syntax_are_not_waivers() {
        let src = "//! Waive with `// rpr-check: allow(<lint-name>): <why>`.\n\
                   /// Same syntax: rpr-check: allow(panic-surface): docs\n\
                   fn f(v: &[u8]) -> u8 { v[0] }";
        let hits = check_file("a.rs", src, &policy_scoping("a.rs"));
        assert!(hits.iter().all(|f| f.id != "RPR000"), "{hits:?}");
        assert_eq!(unwaived(&hits).len(), 1, "doc comment must not waive the index");
    }

    #[test]
    fn test_items_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn g(v: &[u8]) { v[0]; panic!(); }\n}\n\
                   fn h(v: &[u8]) { v.len(); }";
        let hits = check_file("a.rs", src, &policy_scoping("a.rs"));
        assert!(unwaived(&hits).is_empty(), "{hits:?}");
    }

    #[test]
    fn waiver_with_justification_downgrades() {
        let src = "fn f(v: &[u8]) -> u8 {\n\
                   // rpr-check: allow(panic-surface): length checked above\n\
                   v[0]\n}";
        let hits = check_file("a.rs", src, &policy_scoping("a.rs"));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].waived);
        assert_eq!(hits[0].waiver_reason.as_deref(), Some("length checked above"));
    }

    #[test]
    fn waiver_without_justification_is_a_finding() {
        let src = "// rpr-check: allow(panic-surface)\nfn f() {}";
        let hits = check_file("a.rs", src, &Policy::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, "RPR000");
    }

    #[test]
    fn truncating_casts_fire_and_u64_is_exempt() {
        let src = "fn f(x: u64) -> (u32, u64) { (x as u32, x as u64) }";
        let hits = check_file("a.rs", src, &policy_scoping("a.rs"));
        let rpr002: Vec<_> = hits.iter().filter(|f| f.id == "RPR002").collect();
        assert_eq!(rpr002.len(), 1);
        assert!(rpr002[0].message.contains("as u32"));
    }

    #[test]
    fn seqcst_is_banned_and_pins_are_enforced() {
        let p = Policy::parse(
            "[lints.atomic_ordering.pinned.\"gate.rs\"]\nallowed = [\"Relaxed\", \"Release\"]\n",
        )
        .unwrap();
        let src = "fn f() { a.load(Ordering::SeqCst); b.load(Ordering::Acquire); }";
        let hits = check_file("gate.rs", src, &p);
        assert_eq!(hits.iter().filter(|f| f.id == "RPR005").count(), 2);
        // Acquire is fine in an unpinned file; SeqCst never is.
        let hits = check_file("other.rs", src, &p);
        assert_eq!(hits.iter().filter(|f| f.id == "RPR005").count(), 1);
    }

    #[test]
    fn cmp_ordering_is_not_confused_with_atomics() {
        let src = "fn f() { match c { Ordering::Less => {} Ordering::Greater => {} } }";
        let hits = check_file("a.rs", src, &Policy::default());
        assert!(hits.is_empty());
    }

    #[test]
    fn raw_clock_and_unsafe_respect_allowlists() {
        let p = Policy::parse(
            "[lints.raw_clock]\nallow = [\"clock.rs\"]\n[lints.unsafe_block]\nallow = [\"ffi.rs\"]\n",
        )
        .unwrap();
        let src = "fn f() { let t = Instant::now(); unsafe { } }";
        assert_eq!(check_file("x.rs", src, &p).len(), 2);
        assert_eq!(check_file("clock.rs", src, &p).len(), 1);
        assert_eq!(check_file("ffi.rs", src, &p).len(), 1);
    }

    #[test]
    fn attribute_brackets_and_array_types_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\n\
                   fn f() -> Vec<u8> { vec![1, 2] }\nimpl S for [u8] {}";
        let hits = check_file("a.rs", src, &policy_scoping("a.rs"));
        assert!(unwaived(&hits).iter().all(|f| f.id != "RPR001"), "{hits:?}");
    }

    #[test]
    fn path_matching_semantics() {
        assert!(path_matches("crates/wire/src/frame.rs", "crates/wire/src/"));
        assert!(path_matches("crates/wire/src/frame.rs", "crates/wire/src/frame.rs"));
        assert!(!path_matches("crates/wire/src/frame.rs", "crates/core/src/"));
        assert!(!path_matches("crates/wire/srcx/f.rs", "crates/wire/src/"));
    }
}

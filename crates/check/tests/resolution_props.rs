//! Property tests for call-graph resolution (DESIGN.md §4j).
//!
//! The resolver is allowed to *over*-approximate (extra candidate
//! edges make the graph lints conservative) but must never *drop* an
//! edge when the call site carries type evidence — a dropped edge is
//! a hole the reachability lints silently fall through. These tests
//! generate miniature workspaces where every method shares the same
//! name across types (the worst case for evidence-based narrowing)
//! and assert the ground-truth edge is always present.

use proptest::prelude::*;
use rpr_check::callgraph::{Graph, Workspace};

/// How one generated caller proves its receiver type to the resolver.
#[derive(Debug, Clone, Copy)]
enum Evidence {
    /// `fn c(v: &T) { v.act(); }`
    Param,
    /// `let v: T = …; v.act();`
    TypedLocal,
    /// `let v = T::make(); v.act();` — constructor RHS inference.
    CtorLocal,
    /// `struct H { f: T } … self.f.act();`
    Field,
    /// `T::make();` — associated-fn path call.
    AssocPath,
}

fn evidence() -> impl Strategy<Value = Evidence> {
    (0usize..5).prop_map(|i| match i {
        0 => Evidence::Param,
        1 => Evidence::TypedLocal,
        2 => Evidence::CtorLocal,
        3 => Evidence::Field,
        _ => Evidence::AssocPath,
    })
}

/// Builds the workspace sources: one file per type (every type gets
/// the same-named `act` / `make` members), one caller file, and the
/// ground-truth list of (caller fn, target file, target fn) edges.
fn build_sources(calls: &[(usize, Evidence)], ntypes: usize) -> (Vec<(String, String)>, Vec<(String, String, String)>) {
    let mut files: Vec<(String, String)> = (0..ntypes)
        .map(|i| {
            (
                format!("t{i}.rs"),
                format!(
                    "pub struct T{i};\n\
                     impl T{i} {{\n\
                         pub fn act(&self) {{}}\n\
                         pub fn make() -> T{i} {{ T{i} }}\n\
                     }}\n"
                ),
            )
        })
        .collect();

    let mut caller = String::new();
    let mut truth = Vec::new();
    for (j, (ty, ev)) in calls.iter().enumerate() {
        let t = format!("T{ty}");
        let tfile = format!("t{ty}.rs");
        match ev {
            Evidence::Param => {
                caller.push_str(&format!("pub fn via_param{j}(v: &{t}) {{ v.act(); }}\n"));
                truth.push((format!("via_param{j}"), tfile, "act".to_string()));
            }
            Evidence::TypedLocal => {
                caller.push_str(&format!(
                    "pub fn via_local{j}(src: &Source) {{ let v: {t} = src.next(); v.act(); }}\n"
                ));
                truth.push((format!("via_local{j}"), tfile, "act".to_string()));
            }
            Evidence::CtorLocal => {
                caller.push_str(&format!(
                    "pub fn via_ctor{j}() {{ let v = {t}::make(); v.act(); }}\n"
                ));
                truth.push((format!("via_ctor{j}"), tfile.clone(), "act".to_string()));
                truth.push((format!("via_ctor{j}"), tfile, "make".to_string()));
            }
            Evidence::Field => {
                caller.push_str(&format!(
                    "pub struct H{j} {{ f{j}: {t} }}\n\
                     impl H{j} {{ pub fn via_field{j}(&self) {{ self.f{j}.act(); }} }}\n"
                ));
                truth.push((format!("via_field{j}"), tfile, "act".to_string()));
            }
            Evidence::AssocPath => {
                caller.push_str(&format!("pub fn via_path{j}() {{ {t}::make(); }}\n"));
                truth.push((format!("via_path{j}"), tfile, "make".to_string()));
            }
        }
    }
    files.push(("caller.rs".to_string(), caller));
    (files, truth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every evidence-carrying call site resolves to (at least) its
    /// ground-truth target, no matter how many same-named decoys the
    /// workspace holds.
    #[test]
    fn typed_call_sites_never_drop_their_edge(
        ntypes in 2usize..6,
        shapes in proptest::collection::vec(evidence(), 1..12),
        seed in 0usize..1000,
    ) {
        let calls: Vec<(usize, Evidence)> = shapes
            .iter()
            .enumerate()
            .map(|(i, &ev)| ((seed + i * 7) % ntypes, ev))
            .collect();
        let (files, truth) = build_sources(&calls, ntypes);
        let ws = Workspace::parse(&files);
        let g = Graph::build(&ws);

        for (caller, tfile, target) in &truth {
            let id = (0..g.fns.len())
                .find(|&i| g.model(i).name == *caller)
                .expect("generated caller fn is in the graph");
            let hit = g.edges[id].iter().any(|e| {
                g.model(e.to).name == *target && g.path_of(e.to) == tfile
            });
            prop_assert!(
                hit,
                "edge {caller} → {tfile}::{target} dropped; edges: {:?}",
                g.edges[id]
                    .iter()
                    .map(|e| g.display(e.to))
                    .collect::<Vec<_>>()
            );
        }
    }
}

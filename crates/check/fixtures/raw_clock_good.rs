//! Known-good fixture for RPR003 (raw-clock): durations flow in from
//! the caller (ultimately a clock module on the policy allowlist), so
//! nothing here reads the wall clock.

use std::time::Duration;

fn accumulate(samples: &[Duration]) -> Duration {
    samples.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn clocks_are_fine_in_tests() {
        let t = Instant::now();
        let total = accumulate(&[t.elapsed()]);
        assert!(total.as_nanos() < u128::MAX);
    }
}

//! Known-bad fixture for RPR003 (raw-clock): wall-clock reads outside
//! a clock/bench module make simulated time impossible to inject.

use std::time::{Instant, SystemTime};

fn measure() -> u128 {
    let start = Instant::now();
    work();
    start.elapsed().as_nanos()
}

fn stamp() -> SystemTime {
    SystemTime::now()
}

fn work() {}

//! Known-good fixture for RPR002 (truncating-cast): the overflow edge
//! is a typed error, widening casts stay exempt, and a provably
//! bounded cast carries its waiver.

#[derive(Debug)]
enum OffsetError {
    Overflow(u64),
}

fn row_offset(declared: u64) -> Result<u32, OffsetError> {
    u32::try_from(declared).map_err(|_| OffsetError::Overflow(declared))
}

fn widen(v: u32) -> u64 {
    // Widening casts never truncate and are not flagged.
    v as u64
}

fn bounded(len: u64, cap: u64) -> u64 {
    let clamped = len.min(cap);
    // rpr-check: allow(truncating-cast): clamped to cap (< 2^32) on the line above
    let as_index = clamped as usize;
    as_index as u64
}

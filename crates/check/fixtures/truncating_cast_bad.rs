//! Known-bad fixture for RPR002 (truncating-cast): narrowing `as`
//! casts in offset arithmetic, each silently wrapping out-of-range
//! values.

fn row_offset(declared: u64, base: u64) -> u32 {
    // A 5 GiB declared offset wraps to garbage here.
    let off = declared as u32;
    off + base as u32
}

fn entry_count(len: u64) -> usize {
    // Truncates on 32-bit targets.
    len as usize
}

fn small(v: u16) -> u8 {
    v as u8
}

//! Known-bad fixture for RPR005 (atomic-ordering). This file is
//! pinned to {Relaxed, Release} by the self-test policy, mirroring the
//! trace gate's documented set: SeqCst is banned outright, and Acquire
//! violates the pin.

use std::sync::atomic::{AtomicBool, Ordering};

static GATE: AtomicBool = AtomicBool::new(false);

fn enable() {
    GATE.store(true, Ordering::SeqCst);
}

fn is_enabled() -> bool {
    GATE.load(Ordering::Acquire)
}

//! Known-bad fixture for RPR004 (unsafe-block): this workspace is
//! 100% safe Rust; any `unsafe` outside the allowlist is a finding.

fn transmute_len(v: &[u8]) -> usize {
    let p = v.as_ptr();
    unsafe { p.add(v.len()).offset_from(p) as usize }
}

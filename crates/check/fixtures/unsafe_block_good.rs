//! Known-good fixture for RPR004 (unsafe-block): the same computation
//! in safe Rust.

fn safe_len(v: &[u8]) -> u64 {
    v.len() as u64
}

//! Known-good fixture for RPR005 (atomic-ordering): exactly the
//! documented gate protocol — Release on the enable store, Relaxed on
//! the hot-path load — and `cmp::Ordering` stays untouched by the
//! lint.

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicBool, Ordering};

static GATE: AtomicBool = AtomicBool::new(false);

fn enable() {
    GATE.store(true, Ordering::Release);
}

fn is_enabled() -> bool {
    GATE.load(Ordering::Relaxed)
}

fn compare(a: u32, b: u32) -> CmpOrdering {
    a.cmp(&b)
}

//! Known-good fixture for RPR001 (panic-surface): the same shapes as
//! the bad twin, written panic-free (or carrying a justified waiver),
//! plus test code where panicking is legitimate.

#[derive(Debug)]
enum ParseError {
    Truncated,
}

fn parse_header(buf: &[u8]) -> Result<u32, ParseError> {
    let head = buf.get(0..4).ok_or(ParseError::Truncated)?;
    let word: [u8; 4] = head.try_into().map_err(|_| ParseError::Truncated)?;
    let n = u32::from_le_bytes(word);
    // rpr-check: allow(panic-surface): index bounded by the get(0..4) guard above
    let first = buf[0];
    Ok(n + u32::from(first))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asserts_are_fine_in_tests() {
        let buf = [1u8, 0, 0, 0];
        assert_eq!(parse_header(&buf).unwrap(), 2);
        let short: &[u8] = &buf[..2];
        assert!(parse_header(short).is_err());
    }
}

//! The blocking queue the event loop must not call into.

pub struct StageQueue {
    state: Mutex<State>,
}

impl StageQueue {
    pub fn push(&self, v: u8) {
        let st = self.state.lock();
        let st = self.not_full.wait(st);
        drop(st);
    }

    pub fn try_push(&self, v: u8) -> bool {
        true
    }
}

//! Known-bad: the event loop's delivery step reaches a condvar wait
//! inside the queue's blocking `push`, one crate away.

pub struct Server {
    queue: StageQueue,
}

impl Server {
    pub fn step(&self) {
        self.queue.push(1);
    }
}

//! Known-good: the loop only ever uses the non-blocking variant.

pub struct Server {
    queue: StageQueue,
}

impl Server {
    pub fn step(&self) {
        if !self.queue.try_push(1) {
            self.shed();
        }
    }

    fn shed(&self) {}
}

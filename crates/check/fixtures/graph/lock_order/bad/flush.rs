//! The opposite-order half of the deadlock: holds `Depot.stats`, then
//! reaches `Depot.slots` through `grab` in pair.rs.

pub struct Flusher {
    depot: Depot,
}

impl Flusher {
    pub fn flush(&self, d: Depot) {
        let stats = d.stats.lock();
        d.grab();
        drop(stats);
    }
}

//! Known-bad: `refill` takes `Depot.stats` while holding `Depot.slots`;
//! the flush path in flush.rs takes them in the opposite order via a
//! cross-file call — a classic ABBA deadlock.

pub struct Depot {
    slots: Mutex<Vec<u8>>,
    stats: Mutex<Counters>,
}

impl Depot {
    pub fn refill(&self) {
        let slots = self.slots.lock();
        let stats = self.stats.lock();
        drop(stats);
        drop(slots);
    }

    pub fn note(&self) {
        let stats = self.stats.lock();
        drop(stats);
    }

    pub fn grab(&self) {
        let slots = self.slots.lock();
        drop(slots);
    }
}

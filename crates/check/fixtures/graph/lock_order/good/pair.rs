//! Known-good: every path agrees on the order `slots` before `stats`,
//! and the one intentional reversal is waived with a quiescence proof.

pub struct Depot {
    slots: Mutex<Vec<u8>>,
    stats: Mutex<Counters>,
}

impl Depot {
    pub fn refill(&self) {
        let slots = self.slots.lock();
        let stats = self.stats.lock();
        drop(stats);
        drop(slots);
    }

    pub fn grab(&self) {
        let slots = self.slots.lock();
        drop(slots);
    }

    pub fn shutdown_report(&self) {
        let stats = self.stats.lock();
        // rpr-check: allow(lock-order): shutdown runs single-threaded after all workers joined
        let slots = self.slots.lock();
        drop(slots);
        drop(stats);
    }
}

//! Same order as pair.rs: `slots` (via `grab`) is never taken while
//! `stats` is held.

pub struct Flusher {
    depot: Depot,
}

impl Flusher {
    pub fn flush(&self, d: Depot) {
        d.grab();
        let stats = d.stats.lock();
        drop(stats);
    }
}

//! The allocating helper on the hot path.

pub fn widen_rows(out: &mut Vec<u8>, src: &[u8]) {
    let tmp = Vec::new();
    stash(out, tmp, src);
}

fn stash(out: &mut Vec<u8>, tmp: Vec<u8>, src: &[u8]) {
    out.extend_from_slice(src);
    drop(tmp);
}

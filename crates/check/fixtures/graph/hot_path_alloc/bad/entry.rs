//! Known-bad: the kernel itself is clean, but its helper allocates a
//! fresh scratch buffer every call — invisible to a per-file lint.

pub fn kernel(out: &mut Vec<u8>, src: &[u8]) {
    widen_rows(out, src);
}

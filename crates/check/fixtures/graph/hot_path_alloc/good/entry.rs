//! Known-good: the same kernel shape writes through pooled capacity;
//! the single growth call is waived as amortized.

pub fn kernel(out: &mut Vec<u8>, src: &[u8]) {
    widen_rows(out, src);
}

//! Pool-disciplined helper: writes into capacity the pool provided.

pub fn widen_rows(out: &mut Vec<u8>, src: &[u8]) {
    // rpr-check: allow(hot-path-alloc): growth amortized into pooled capacity (DESIGN.md 4g)
    out.extend_from_slice(src);
    out.copy_within(..src.len(), 0);
}

//! Known-good: the same call shape, but the helper chain is fallible
//! all the way down, and the one justified panic is behind a waived
//! edge (the per-edge waiver cuts reachability).

pub fn parse_frame(data: &[u8]) -> u32 {
    // rpr-check: allow(panic-reach): sanity_check only runs under debug builds, fuzz-covered
    sanity_check(data);
    read_len(data).unwrap_or(0)
}

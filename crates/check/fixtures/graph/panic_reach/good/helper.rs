//! Fallible helpers: no panic site reachable from the entry without
//! passing a waived edge.

pub fn read_len(data: &[u8]) -> Option<u32> {
    decode(data)
}

fn decode(data: &[u8]) -> Option<u32> {
    data.first().map(|b| u32::from(*b))
}

pub fn sanity_check(data: &[u8]) {
    assert_or_die(data)
}

fn assert_or_die(data: &[u8]) {
    if data.is_empty() {
        panic!("empty frame");
    }
}

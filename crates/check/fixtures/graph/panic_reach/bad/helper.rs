//! The panicking helper the entry point reaches transitively.

pub fn read_len(data: &[u8]) -> u32 {
    decode(data)
}

fn decode(data: &[u8]) -> u32 {
    u32::from(*data.first().unwrap())
}

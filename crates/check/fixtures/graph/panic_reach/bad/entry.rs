//! Known-bad: the pub entry point is token-clean (no panic site in
//! this file), but it reaches `.unwrap()` two calls away in helper.rs.

pub fn parse_frame(data: &[u8]) -> u32 {
    read_len(data)
}

//! Known-bad fixture for RPR001 (panic-surface). Every construct here
//! must produce a blocking finding; if none fires, the lint is dead.

fn parse_header(buf: &[u8]) -> u32 {
    // Indexing an untrusted buffer: panics on short input.
    let first = buf[0];
    // Slicing panics the same way.
    let head = &buf[0..4];
    // unwrap/expect on fallible conversions.
    let word: [u8; 4] = head.try_into().unwrap();
    let n = u32::from_le_bytes(word);
    let m: u32 = std::str::from_utf8(buf).expect("utf8").len() as u32;
    if first == 0 {
        panic!("zero marker");
    }
    if n > m {
        unreachable!("checked above");
    }
    assert!(n != 7, "asserts also panic in release");
    n
}

//! Fixed-bucket latency histograms, shared by the post-hoc stream
//! telemetry and the live aggregator.
//!
//! The type started life in `rpr-stream` (stage-latency telemetry) and
//! moved here so the live metrics plane ([`crate::live`]) can shard and
//! merge histograms without inverting the crate dependency graph;
//! `rpr-stream` re-exports it, so the serialized schema is unchanged.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Upper bucket bounds for latency histograms, in microseconds.
/// The final bucket is unbounded.
pub const LATENCY_BUCKETS_US: [u64; 11] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000];

/// A fixed-bucket latency histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Sample count.
    pub count: u64,
    /// Total time across all samples, nanoseconds.
    pub sum_ns: u64,
    /// Fastest sample, nanoseconds (0 when empty).
    pub min_ns: u64,
    /// Slowest sample, nanoseconds.
    pub max_ns: u64,
    /// One count per bucket of [`LATENCY_BUCKETS_US`] plus a final
    /// overflow bucket.
    pub buckets: Vec<u64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            count: 0,
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
            buckets: vec![0; LATENCY_BUCKETS_US.len() + 1],
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.record_ns(ns);
    }

    /// Records one sample given directly in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let us = ns / 1_000;
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        if self.count == 1 || ns < self.min_ns {
            self.min_ns = ns;
        }
        if ns > self.max_ns {
            self.max_ns = ns;
        }
    }

    /// Records one sample given in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.record_ns(us.saturating_mul(1_000));
    }

    /// Mean latency in seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1e9
        }
    }

    /// Estimated latency at percentile `p` (0–100), in microseconds.
    ///
    /// The value is linearly interpolated inside the bucket containing
    /// the target rank, using the bucket's bounds (the overflow bucket
    /// is bounded by the exact recorded maximum). The estimate is
    /// clamped to the exact observed `[min, max]`, so single-sample and
    /// boundary cases return real samples rather than bucket edges.
    /// Returns 0 for an empty histogram.
    pub fn percentile_us(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let min_us = self.min_ns as f64 / 1e3;
        let max_us = self.max_ns as f64 / 1e3;
        let target = p / 100.0 * self.count as f64;
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = cum as f64;
            cum += n;
            if cum as f64 >= target {
                let lo = if idx == 0 { 0.0 } else { LATENCY_BUCKETS_US[idx - 1] as f64 };
                let hi = if idx < LATENCY_BUCKETS_US.len() {
                    LATENCY_BUCKETS_US[idx] as f64
                } else {
                    // Overflow bucket: bounded by the recorded maximum.
                    max_us.max(lo)
                };
                let frac = ((target - before) / n as f64).clamp(0.0, 1.0);
                return (lo + frac * (hi - lo)).clamp(min_us, max_us);
            }
        }
        max_us
    }

    /// Median latency estimate in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.percentile_us(50.0)
    }

    /// 90th-percentile latency estimate in microseconds.
    pub fn p90_us(&self) -> f64 {
        self.percentile_us(90.0)
    }

    /// 99th-percentile latency estimate in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.percentile_us(99.0)
    }

    /// Merges another histogram into this one. Merging is commutative
    /// and associative over `{count, sum_ns, buckets}`, and min/max are
    /// the true extrema of both operands — the property the sharded
    /// live aggregator relies on to fold shard snapshots.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        if self.count == 0 {
            self.min_ns = other.min_ns;
        } else {
            self.min_ns = self.min_ns.min(other.min_ns);
        }
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(40)); // bucket 0 (<= 50us)
        h.record(Duration::from_micros(90)); // bucket 1 (<= 100us)
        h.record(Duration::from_millis(200)); // overflow bucket
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(*h.buckets.last().unwrap(), 1);
        assert_eq!(h.min_ns, 40_000);
        assert_eq!(h.max_ns, 200_000_000);
        assert!(h.mean_s() > 0.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        let mut b = LatencyHistogram::new();
        b.record(Duration::from_micros(400));
        b.record(Duration::from_micros(600));
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min_ns, 10_000);
        assert_eq!(a.max_ns, 600_000);
    }

    #[test]
    fn merge_into_empty_copies_extrema() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        b.record(Duration::from_micros(75));
        b.record(Duration::from_micros(125));
        a.merge(&b);
        assert_eq!(a, b, "merging into an empty histogram reproduces the source");
        assert_eq!(a.min_ns, 75_000);
    }

    #[test]
    fn merge_empty_other_is_a_no_op() {
        let mut a = LatencyHistogram::new();
        a.record(Duration::from_micros(30));
        let before = a.clone();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, before);
        assert_eq!(a.min_ns, 30_000, "an empty rhs must not drag min to 0");
    }

    #[test]
    fn merge_is_commutative_across_bucket_boundaries() {
        // Samples sitting exactly on bucket bounds (50us, 100us) plus
        // overflow: merge in both orders and compare every field.
        let mut a = LatencyHistogram::new();
        a.record(Duration::from_micros(50));
        a.record(Duration::from_micros(100));
        let mut b = LatencyHistogram::new();
        b.record(Duration::from_micros(51));
        b.record(Duration::from_millis(500)); // overflow
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 4);
        assert_eq!(ab.buckets[0], 1, "50us sits in bucket 0 (<= 50)");
        assert_eq!(ab.buckets[1], 2, "51us and 100us share bucket 1");
        assert_eq!(*ab.buckets.last().unwrap(), 1);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        // Recording samples into shards and merging must be
        // indistinguishable from recording them all into one histogram.
        let samples_us: &[u64] = &[1, 49, 50, 51, 999, 2_500, 99_999, 100_001, 7_000_000];
        let mut whole = LatencyHistogram::new();
        let mut shards = [LatencyHistogram::new(), LatencyHistogram::new(), LatencyHistogram::new()];
        for (i, &us) in samples_us.iter().enumerate() {
            whole.record(Duration::from_micros(us));
            shards[i % shards.len()].record(Duration::from_micros(us));
        }
        let mut merged = LatencyHistogram::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn merge_saturates_sum_instead_of_overflowing() {
        let mut a = LatencyHistogram::new();
        a.record_ns(u64::MAX);
        let mut b = LatencyHistogram::new();
        b.record_ns(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.sum_ns, u64::MAX, "sum saturates rather than wrapping");
        assert_eq!(a.max_ns, u64::MAX);
    }

    #[test]
    fn record_us_and_ns_agree() {
        let mut a = LatencyHistogram::new();
        a.record_us(250);
        let mut b = LatencyHistogram::new();
        b.record_ns(250_000);
        assert_eq!(a, b);
    }

    #[test]
    fn percentiles_empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50_us(), 0.0);
        assert_eq!(h.p99_us(), 0.0);
    }

    #[test]
    fn percentiles_single_sample_returns_that_sample() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(75));
        // Interpolation inside the (50, 100] bucket is clamped to the
        // exact observed min/max, which coincide.
        assert_eq!(h.p50_us(), 75.0);
        assert_eq!(h.p90_us(), 75.0);
        assert_eq!(h.p99_us(), 75.0);
    }

    #[test]
    fn percentiles_interpolate_within_boundary_buckets() {
        let mut h = LatencyHistogram::new();
        // 100 samples spread across the first bucket (<= 50 us).
        for i in 0..100u64 {
            h.record(Duration::from_nanos(i * 500 + 1));
        }
        let p50 = h.p50_us();
        let p90 = h.p90_us();
        // Bucket 0 spans 0..50 us: rank interpolation lands mid-bucket.
        assert!((20.0..=30.0).contains(&p50), "p50 {p50}");
        assert!((40.0..=50.0).contains(&p90), "p90 {p90}");
        assert!(p50 <= p90);
        assert!(p90 <= h.max_ns as f64 / 1e3);
    }

    #[test]
    fn percentiles_overflow_bucket_is_bounded_by_max() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(10)); // bucket 0
        h.record(Duration::from_millis(150)); // overflow (> 100 ms)
        h.record(Duration::from_millis(250)); // overflow
        let p99 = h.p99_us();
        assert!(p99 > 100_000.0, "p99 {p99} must land in the overflow bucket");
        assert!(p99 <= 250_000.0, "p99 {p99} must not exceed the recorded max");
        assert_eq!(h.percentile_us(100.0), 250_000.0);
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let mut h = LatencyHistogram::new();
        for us in [10u64, 60, 200, 800, 3_000, 40_000, 90_000, 200_000] {
            h.record(Duration::from_micros(us));
        }
        let mut last = 0.0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile_us(p);
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn serde_layout_is_stable() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(40));
        let json = serde_json::to_string(&h).unwrap();
        // The field order rpr-stream's schema test pins.
        assert!(json.starts_with("{\"count\":1,\"sum_ns\":40000,\"min_ns\":40000,\"max_ns\":40000,\"buckets\":["));
        let back: LatencyHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}

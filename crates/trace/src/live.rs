//! The live metrics plane: sharded counters and histograms whose
//! consistent snapshots can be read *while* the serve event loop (and
//! its bridge/stage worker threads) keep writing.
//!
//! [`crate::MetricsRegistry`] builds a [`crate::RunReport`] after a run
//! finishes; this module is its during-the-run counterpart. Writers pay
//! one `Relaxed` fetch-add per counter bump (striped across shards to
//! keep cache lines from ping-ponging) or one uncontended mutex lock
//! per histogram sample; readers fold the shards into a merged
//! [`LatencyHistogram`] snapshot. Each shard is internally consistent
//! under its lock, so a snapshot always satisfies
//! `count == sum(buckets)` even with writers mid-flight — the property
//! the proptest and loom suites pin.
//!
//! Atomic orderings are `Relaxed` only (pinned by rpr-check's
//! `atomic-ordering` lint for this file): counter shards publish no
//! other memory, and cross-shard skew of a few in-flight increments is
//! inherent to live scraping anyway.

#[cfg(loom)]
use loom::sync::{
    atomic::{AtomicU64, Ordering},
    Mutex,
};
#[cfg(not(loom))]
use std::sync::{
    atomic::{AtomicU64, AtomicUsize, Ordering},
    Mutex,
};

use crate::hist::LatencyHistogram;
use crate::slo::{SloConfig, SloTracker};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Shard count for live counters and histograms. Eight is plenty for
/// the writer populations we run (event loop + bridge + stage workers)
/// while keeping snapshot folds cheap.
pub const LIVE_SHARDS: usize = 8;

/// Picks the calling thread's shard stripe: a dense per-thread index
/// assigned on first use, so each steady writer thread lands on its own
/// shard (modulo [`LIVE_SHARDS`]).
#[cfg(not(loom))]
fn shard_hint() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: std::cell::OnceCell<usize> = const { std::cell::OnceCell::new() };
    }
    STRIPE.with(|cell| *cell.get_or_init(|| NEXT.fetch_add(1, Ordering::Relaxed)))
}

/// Under loom every access is perturbation-scheduled anyway; models
/// exercise cross-shard behaviour through the explicit `*_in` APIs.
#[cfg(loom)]
fn shard_hint() -> usize {
    0
}

/// A monotonically increasing counter striped over [`LIVE_SHARDS`]
/// relaxed atomics.
#[derive(Debug)]
pub struct LiveCounter {
    shards: Box<[AtomicU64]>,
}

impl LiveCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        LiveCounter { shards: (0..LIVE_SHARDS).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Adds `value` on the calling thread's stripe.
    #[inline]
    pub fn add(&self, value: u64) {
        self.add_in(shard_hint(), value);
    }

    /// Adds `value` on an explicit shard (tests and loom models).
    #[inline]
    pub fn add_in(&self, shard: usize, value: u64) {
        self.shards[shard % self.shards.len()].fetch_add(value, Ordering::Relaxed);
    }

    /// Current total across all shards. Monotonic between calls: every
    /// shard only ever grows, so a later read can never be smaller.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.load(Ordering::Relaxed)).fold(0u64, u64::wrapping_add)
    }
}

impl Default for LiveCounter {
    fn default() -> Self {
        LiveCounter::new()
    }
}

/// A latency histogram striped over [`LIVE_SHARDS`] mutex-guarded
/// [`LatencyHistogram`] shards. Writers lock only their own stripe;
/// [`snapshot`](LiveHistogram::snapshot) folds the shards with
/// [`LatencyHistogram::merge`].
#[derive(Debug)]
pub struct LiveHistogram {
    shards: Box<[Mutex<LatencyHistogram>]>,
}

impl LiveHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LiveHistogram {
            shards: (0..LIVE_SHARDS).map(|_| Mutex::new(LatencyHistogram::new())).collect(),
        }
    }

    /// Records a sample (µs) on the calling thread's stripe.
    #[inline]
    pub fn record_us(&self, us: u64) {
        self.record_us_in(shard_hint(), us);
    }

    /// Records a sample (µs) on an explicit shard (tests and loom
    /// models).
    pub fn record_us_in(&self, shard: usize, us: u64) {
        let idx = shard % self.shards.len();
        self.shards[idx].lock().expect("live histogram shard poisoned").record_us(us);
    }

    /// A consistent merged snapshot, readable while writers run. Each
    /// shard is folded under its own lock, so the result always has
    /// `count == sum(buckets)`; totals are monotonic between snapshots.
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for shard in self.shards.iter() {
            merged.merge(&shard.lock().expect("live histogram shard poisoned"));
        }
        merged
    }

    /// Rotates the histogram: drains every shard and returns the merged
    /// contents, leaving the histogram empty. Used by windowed
    /// consumers; samples are never lost or double-counted — each lands
    /// in exactly one rotation (or the final snapshot), the
    /// conservation law the loom model checks.
    pub fn rotate(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for shard in self.shards.iter() {
            let taken = std::mem::take(&mut *shard.lock().expect("live histogram shard poisoned"));
            merged.merge(&taken);
        }
        merged
    }
}

impl Default for LiveHistogram {
    fn default() -> Self {
        LiveHistogram::new()
    }
}

/// Live per-tenant metrics: the during-the-run mirror of
/// [`crate::TenantSection`], plus the delivery-latency histogram and
/// the tenant's SLO tracker.
#[derive(Debug)]
pub struct TenantLive {
    /// Dense tenant id (registration order) — the value carried in
    /// [`crate::FrameCtx::tenant`].
    pub id: u32,
    /// Tenant name.
    pub name: String,
    /// Frames admitted past quotas.
    pub frames_accepted: LiveCounter,
    /// Frames that reached the tenant's delivery queue (and, once the
    /// consumer records delivery latency, its pipelines).
    pub frames_delivered: LiveCounter,
    /// Frames dropped by quota veto or queue eviction.
    pub frames_dropped: LiveCounter,
    /// Payload bytes billed against the byte quota.
    pub bytes_ingested: LiveCounter,
    /// Quota throttle events.
    pub quota_throttles: LiveCounter,
    /// End-to-end delivery latency (admit → routed), microseconds.
    pub delivery_us: LiveHistogram,
    slo: Option<SloTracker>,
}

impl TenantLive {
    fn new(id: u32, name: &str, slo: Option<SloConfig>) -> Self {
        TenantLive {
            id,
            name: name.to_string(),
            frames_accepted: LiveCounter::new(),
            frames_delivered: LiveCounter::new(),
            frames_dropped: LiveCounter::new(),
            bytes_ingested: LiveCounter::new(),
            quota_throttles: LiveCounter::new(),
            delivery_us: LiveHistogram::new(),
            slo: slo.map(SloTracker::new),
        }
    }

    /// The tenant's SLO tracker, when one was configured.
    pub fn slo(&self) -> Option<&SloTracker> {
        self.slo.as_ref()
    }

    /// Records one routed delivery: feeds the latency histogram and the
    /// SLO tracker (when configured).
    pub fn record_delivery(&self, now_micros: u64, latency_us: u64) {
        self.frames_delivered.add(1);
        self.delivery_us.record_us(latency_us);
        if let Some(slo) = &self.slo {
            slo.record_delivery(now_micros, latency_us);
        }
    }

    /// Records one dropped frame against the SLO error budget.
    pub fn record_drop(&self, now_micros: u64) {
        self.frames_dropped.add(1);
        if let Some(slo) = &self.slo {
            slo.record_drop(now_micros);
        }
    }

    /// A consistent point-in-time view of this tenant.
    pub fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            tenant: self.name.clone(),
            frames_accepted: self.frames_accepted.value(),
            frames_delivered: self.frames_delivered.value(),
            frames_dropped: self.frames_dropped.value(),
            bytes_ingested: self.bytes_ingested.value(),
            quota_throttles: self.quota_throttles.value(),
            delivery_us: self.delivery_us.snapshot(),
        }
    }
}

/// Serializable point-in-time view of one tenant's live metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// Tenant name.
    pub tenant: String,
    /// Frames admitted past quotas.
    pub frames_accepted: u64,
    /// Frames that reached the delivery queue.
    pub frames_delivered: u64,
    /// Frames dropped (quota veto or queue eviction).
    pub frames_dropped: u64,
    /// Payload bytes ingested.
    pub bytes_ingested: u64,
    /// Quota throttle events.
    pub quota_throttles: u64,
    /// Delivery-latency histogram at snapshot time.
    pub delivery_us: LatencyHistogram,
}

/// The process-level live aggregator: interns tenant names into dense
/// ids and hands out shared [`TenantLive`] handles that writer threads
/// (event loop, bridge, stages, load generators) update concurrently.
#[derive(Debug, Default)]
pub struct LiveMetrics {
    tenants: Mutex<Vec<Arc<TenantLive>>>,
}

impl LiveMetrics {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        LiveMetrics { tenants: Mutex::new(Vec::new()) }
    }

    /// Registers (or re-fetches) a tenant, optionally attaching an SLO.
    /// Registration is idempotent by name; the first call wins and
    /// fixes the tenant's dense id and SLO config.
    pub fn register(&self, name: &str, slo: Option<SloConfig>) -> Arc<TenantLive> {
        let mut tenants = self.tenants.lock().expect("live tenant registry poisoned");
        if let Some(t) = tenants.iter().find(|t| t.name == name) {
            return Arc::clone(t);
        }
        let id = u32::try_from(tenants.len()).unwrap_or(u32::MAX);
        let t = Arc::new(TenantLive::new(id, name, slo));
        tenants.push(Arc::clone(&t));
        t
    }

    /// Looks a tenant up by its dense id.
    pub fn get(&self, id: u32) -> Option<Arc<TenantLive>> {
        let tenants = self.tenants.lock().expect("live tenant registry poisoned");
        tenants.get(id as usize).map(Arc::clone)
    }

    /// Looks a tenant up by name.
    pub fn get_by_name(&self, name: &str) -> Option<Arc<TenantLive>> {
        let tenants = self.tenants.lock().expect("live tenant registry poisoned");
        tenants.iter().find(|t| t.name == name).map(Arc::clone)
    }

    /// Resolves a dense tenant id back to its name.
    pub fn tenant_name(&self, id: u32) -> Option<String> {
        self.get(id).map(|t| t.name.clone())
    }

    /// Snapshots every registered tenant.
    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        let tenants: Vec<Arc<TenantLive>> = {
            let guard = self.tenants.lock().expect("live tenant registry poisoned");
            guard.iter().map(Arc::clone).collect()
        };
        tenants.iter().map(|t| t.snapshot()).collect()
    }

    /// Shared handles to every registered tenant, in id order.
    pub fn tenants(&self) -> Vec<Arc<TenantLive>> {
        let guard = self.tenants.lock().expect("live tenant registry poisoned");
        guard.iter().map(Arc::clone).collect()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_explicit_shards() {
        let c = LiveCounter::new();
        c.add_in(0, 5);
        c.add_in(3, 7);
        c.add_in(LIVE_SHARDS + 3, 1); // wraps onto shard 3
        assert_eq!(c.value(), 13);
        c.add(2);
        assert_eq!(c.value(), 15);
    }

    #[test]
    fn histogram_snapshot_merges_shards() {
        let h = LiveHistogram::new();
        h.record_us_in(0, 40);
        h.record_us_in(1, 90);
        h.record_us_in(2, 200_000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        assert_eq!(snap.min_ns, 40_000);
        assert_eq!(snap.max_ns, 200_000_000);
        // Snapshot does not drain.
        assert_eq!(h.snapshot().count, 3);
    }

    #[test]
    fn histogram_rotate_drains_exactly_once() {
        let h = LiveHistogram::new();
        for i in 0..10 {
            h.record_us_in(i % LIVE_SHARDS, 100 + i as u64);
        }
        let first = h.rotate();
        assert_eq!(first.count, 10);
        assert_eq!(h.rotate().count, 0, "second rotation finds nothing");
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn registration_is_idempotent_and_ids_are_dense() {
        let live = LiveMetrics::new();
        let a = live.register("fleet-a", None);
        let b = live.register("fleet-b", None);
        let a2 = live.register("fleet-a", None);
        assert_eq!(a.id, 0);
        assert_eq!(b.id, 1);
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(live.tenant_name(1).as_deref(), Some("fleet-b"));
        assert!(live.get(2).is_none());
        assert_eq!(live.get_by_name("fleet-b").unwrap().id, 1);
    }

    #[test]
    fn tenant_delivery_feeds_histogram_and_counters() {
        let live = LiveMetrics::new();
        let t = live.register("cam-fleet", None);
        t.frames_accepted.add(2);
        t.record_delivery(1_000, 150);
        t.record_delivery(2_000, 350);
        t.record_drop(3_000);
        let snap = t.snapshot();
        assert_eq!(snap.frames_accepted, 2);
        assert_eq!(snap.frames_delivered, 2);
        assert_eq!(snap.frames_dropped, 1);
        assert_eq!(snap.delivery_us.count, 2);
        assert!(snap.delivery_us.p99_us() >= 150.0);
    }

    #[test]
    fn snapshots_are_monotonic_under_a_writer_thread() {
        let live = Arc::new(LiveMetrics::new());
        let t = live.register("hot", None);
        let writer = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    t.frames_accepted.add(1);
                    t.delivery_us.record_us(50 + i % 400);
                }
            })
        };
        let mut last_count = 0u64;
        let mut last_accepted = 0u64;
        for _ in 0..50 {
            let snap = t.snapshot();
            assert!(snap.frames_accepted >= last_accepted);
            assert!(snap.delivery_us.count >= last_count);
            assert_eq!(
                snap.delivery_us.buckets.iter().sum::<u64>(),
                snap.delivery_us.count,
                "snapshot must be internally sum-consistent"
            );
            last_accepted = snap.frames_accepted;
            last_count = snap.delivery_us.count;
        }
        writer.join().unwrap();
        assert_eq!(t.snapshot().delivery_us.count, 2_000);
    }
}

//! Per-tenant service-level objectives: declarative delivery-latency /
//! drop-rate targets with windowed burn-rate computation.
//!
//! The model is the classic error-budget one: every delivery is *good*
//! if it lands within [`SloConfig::target_delivery_us`], every late
//! delivery or dropped frame is *bad*, and the tenant is allowed a
//! [`SloConfig::budget_fraction`] of bad events over a sliding
//! [`SloConfig::window_micros`] window. The **burn rate** is the
//! observed bad fraction divided by the budget: 1.0 means the tenant is
//! consuming its entire budget exactly; above 1.0 the objective is
//! being violated and (once [`SloConfig::min_events`] events are in the
//! window) the tracker reports a breach, which the server uses to
//! trigger a flight-recorder dump.
//!
//! The sliding window is a ring of [`SUB_WINDOWS`] sub-window slots
//! rotated on the injected serving clock — no wall-clock reads — and
//! the rotate path is deliberately robust to clock skew: time moving
//! backwards records into the current slot without rotating, and a
//! forward jump larger than the whole window resets the ring rather
//! than spinning through intermediate slots.

#[cfg(loom)]
use loom::sync::Mutex;
#[cfg(not(loom))]
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Number of sub-window slots the sliding window is divided into.
pub const SUB_WINDOWS: usize = 8;

/// A tenant's declarative delivery objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Deliveries slower than this (µs, admit → routed) are bad events.
    pub target_delivery_us: u64,
    /// Allowed fraction of bad events (late + dropped) per window.
    pub budget_fraction: f64,
    /// Sliding-window length in microseconds.
    pub window_micros: u64,
    /// Minimum events in the window before a breach can be declared
    /// (keeps a single early drop from tripping the recorder).
    pub min_events: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            target_delivery_us: 10_000,
            budget_fraction: 0.01,
            window_micros: 1_000_000,
            min_events: 16,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    start: u64,
    good: u64,
    bad: u64,
}

#[derive(Debug)]
struct Ring {
    slots: [Slot; SUB_WINDOWS],
    cur: usize,
}

/// Windowed burn-rate tracker for one tenant's [`SloConfig`].
/// Interior-mutable so the event loop, the bridge thread, and load
/// generators can share one handle.
#[derive(Debug)]
pub struct SloTracker {
    cfg: SloConfig,
    ring: Mutex<Ring>,
}

impl SloTracker {
    /// Creates a tracker for one objective.
    pub fn new(cfg: SloConfig) -> Self {
        SloTracker {
            cfg,
            ring: Mutex::new(Ring { slots: [Slot::default(); SUB_WINDOWS], cur: 0 }),
        }
    }

    /// The objective being tracked.
    pub fn config(&self) -> SloConfig {
        self.cfg
    }

    fn slot_width(&self) -> u64 {
        (self.cfg.window_micros / SUB_WINDOWS as u64).max(1)
    }

    /// Rotates expired sub-windows forward to `now`. Skew-tolerant:
    /// `now` earlier than the current slot leaves the ring untouched.
    fn advance(&self, ring: &mut Ring, now: u64) {
        let width = self.slot_width();
        loop {
            let cur_start = ring.slots[ring.cur].start;
            let Some(age) = now.checked_sub(cur_start) else { return };
            if age < width {
                return;
            }
            if age > self.cfg.window_micros.saturating_add(width) {
                // Forward jump past the whole window: everything in the
                // ring has expired; reset instead of spinning.
                ring.slots = [Slot::default(); SUB_WINDOWS];
                ring.cur = 0;
                ring.slots[0].start = now;
                return;
            }
            let next_start = cur_start.saturating_add(width);
            ring.cur = (ring.cur + 1) % SUB_WINDOWS;
            ring.slots[ring.cur] = Slot { start: next_start, good: 0, bad: 0 };
        }
    }

    /// Records one routed delivery at `now` with the given latency.
    pub fn record_delivery(&self, now_micros: u64, latency_us: u64) {
        let mut ring = self.ring.lock().expect("slo ring poisoned");
        self.advance(&mut ring, now_micros);
        let cur = ring.cur;
        if latency_us <= self.cfg.target_delivery_us {
            ring.slots[cur].good += 1;
        } else {
            ring.slots[cur].bad += 1;
        }
    }

    /// Records one dropped frame at `now` (always a bad event).
    pub fn record_drop(&self, now_micros: u64) {
        let mut ring = self.ring.lock().expect("slo ring poisoned");
        self.advance(&mut ring, now_micros);
        let cur = ring.cur;
        ring.slots[cur].bad += 1;
    }

    /// `(good, bad)` event totals currently in the window.
    pub fn window_totals(&self, now_micros: u64) -> (u64, u64) {
        let mut ring = self.ring.lock().expect("slo ring poisoned");
        self.advance(&mut ring, now_micros);
        ring.slots.iter().fold((0, 0), |(g, b), s| (g + s.good, b + s.bad))
    }

    /// The window's burn rate: observed bad fraction divided by the
    /// error budget. 0.0 while the window holds no events; always
    /// finite (a zero budget is clamped to a tiny epsilon).
    pub fn burn_rate(&self, now_micros: u64) -> f64 {
        let (good, bad) = self.window_totals(now_micros);
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        let bad_fraction = bad as f64 / total as f64;
        bad_fraction / self.cfg.budget_fraction.max(1e-9)
    }

    /// Whether the objective is currently breached: burn rate at or
    /// above 1.0 with at least [`SloConfig::min_events`] events in the
    /// window.
    pub fn breached(&self, now_micros: u64) -> bool {
        let (good, bad) = self.window_totals(now_micros);
        let total = good + bad;
        if total < self.cfg.min_events.max(1) {
            return false;
        }
        let bad_fraction = bad as f64 / total as f64;
        bad_fraction / self.cfg.budget_fraction.max(1e-9) >= 1.0
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            target_delivery_us: 1_000,
            budget_fraction: 0.1,
            window_micros: 8_000,
            min_events: 4,
        }
    }

    #[test]
    fn fast_deliveries_do_not_burn() {
        let t = SloTracker::new(cfg());
        for i in 0..20 {
            t.record_delivery(i * 100, 200);
        }
        assert_eq!(t.window_totals(2_000), (20, 0));
        assert_eq!(t.burn_rate(2_000), 0.0);
        assert!(!t.breached(2_000));
    }

    #[test]
    fn late_and_dropped_frames_burn_the_budget() {
        let t = SloTracker::new(cfg());
        // 10 events in one slot: 8 good, 1 late, 1 dropped = 20% bad
        // against a 10% budget → burn rate 2.0, breached.
        for _ in 0..8 {
            t.record_delivery(100, 500);
        }
        t.record_delivery(100, 5_000);
        t.record_drop(100);
        let burn = t.burn_rate(100);
        assert!((burn - 2.0).abs() < 1e-9, "burn {burn}");
        assert!(t.breached(100));
    }

    #[test]
    fn min_events_gates_breach_but_not_burn() {
        let t = SloTracker::new(cfg());
        t.record_drop(0);
        assert!(t.burn_rate(0) > 1.0);
        assert!(!t.breached(0), "one event is below min_events");
    }

    #[test]
    fn bad_events_age_out_of_the_window() {
        let t = SloTracker::new(cfg());
        for _ in 0..8 {
            t.record_drop(100);
        }
        assert!(t.breached(100));
        // One window later the drops have rotated out entirely.
        for i in 0..8u64 {
            t.record_delivery(10_000 + i * 1_000, 100);
        }
        let (good, bad) = t.window_totals(18_000);
        assert_eq!(bad, 0, "old drops expired");
        assert!(good >= 4);
        assert!(!t.breached(18_000));
    }

    #[test]
    fn backwards_time_records_without_rotating() {
        let t = SloTracker::new(cfg());
        t.record_delivery(5_000, 100);
        // A skewed observer reports an earlier timestamp: the event
        // still lands, nothing panics, totals stay conserved.
        t.record_delivery(1_000, 100);
        t.record_drop(0);
        let (good, bad) = t.window_totals(5_000);
        assert_eq!(good + bad, 3);
    }

    #[test]
    fn huge_forward_jump_resets_instead_of_spinning() {
        let t = SloTracker::new(cfg());
        t.record_drop(0);
        // A jump of ~2^40 µs must not iterate slot-by-slot.
        let far = 1u64 << 40;
        assert_eq!(t.window_totals(far), (0, 0));
        t.record_delivery(far, 100);
        assert_eq!(t.window_totals(far), (1, 0));
    }

    #[test]
    fn zero_budget_is_clamped_finite() {
        let t = SloTracker::new(SloConfig { budget_fraction: 0.0, ..cfg() });
        t.record_drop(0);
        assert!(t.burn_rate(0).is_finite());
        assert!(t.burn_rate(0) > 1.0);
    }
}

//! The `RunReport` schema — one serde document describing a whole run —
//! plus threshold-gated diffing between two reports.
//!
//! # Schema stability
//!
//! [`REPORT_SCHEMA_VERSION`] is bumped whenever a field is renamed,
//! removed, or changes meaning; adding fields is backward compatible
//! (readers must ignore unknown fields). The JSON layout is documented
//! in `DESIGN.md` ("RunReport schema") and locked by tests in
//! `rpr-bench`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Version of the `RunReport` JSON layout produced by this build.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// DRAM/frame-memory traffic for the run (from `rpr-memsim`
/// `TrafficSummary` plus footprint and capture statistics).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MemorySection {
    /// Total bytes written to the modeled DRAM.
    pub write_bytes: u64,
    /// Total bytes read back from the modeled DRAM.
    pub read_bytes: u64,
    /// Metadata (mask/region-table) bytes, counted inside the totals.
    pub metadata_bytes: u64,
    /// Mean `(write + read)` bytes per frame.
    pub bytes_per_frame: f64,
    /// Sustained traffic at the run's frame rate, in MB/s.
    pub throughput_mb_s: f64,
    /// Mean per-frame encoded footprint in bytes.
    pub mean_footprint_bytes: f64,
    /// Largest per-frame encoded footprint in bytes.
    pub peak_footprint_bytes: u64,
    /// Mean fraction of sensor pixels captured (0..=1).
    pub mean_captured_fraction: f64,
}

/// Energy totals for the run (from `rpr-memsim`'s `EnergyModel`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergySection {
    /// Sensing (pixel-array readout) energy in pJ.
    pub sensing_pj: f64,
    /// Sensor-interface (CSI + DDR link) energy in pJ.
    pub interface_pj: f64,
    /// DRAM array energy in pJ.
    pub dram_pj: f64,
    /// Downstream compute (MAC) energy in pJ.
    pub compute_pj: f64,
    /// Total energy over the run in mJ.
    pub total_mj: f64,
    /// Mean energy per frame in mJ.
    pub mj_per_frame: f64,
    /// Average power at the run's frame rate, in mW (0 when the frame
    /// rate is unknown or zero).
    pub power_mw: f64,
}

/// Hardware-model estimates (from `rpr-hwsim`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HwSection {
    /// Estimated encoder power in mW.
    pub encoder_mw: f64,
    /// Estimated decoder power in mW.
    pub decoder_mw: f64,
    /// Mean mask comparisons per pixel in the encoder.
    pub comparisons_per_pixel: f64,
    /// Fraction of pixels kept by the encoder (0..=1).
    pub keep_ratio: f64,
}

/// Per-stage latency summary for one staged-pipeline stage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageSection {
    /// Stage name (`source`, `capture`, `task`).
    pub name: String,
    /// Frames processed by the stage.
    pub frames: u64,
    /// Frames processed in a degraded mode.
    pub degraded_frames: u64,
    /// Mean stage latency in microseconds.
    pub mean_latency_us: f64,
    /// Median (p50) stage latency in microseconds, bucket-interpolated.
    pub p50_us: f64,
    /// p90 stage latency in microseconds, bucket-interpolated.
    pub p90_us: f64,
    /// p99 stage latency in microseconds, bucket-interpolated.
    pub p99_us: f64,
}

/// One stream of the staged executor (from `rpr-stream` telemetry).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamSection {
    /// Stream identifier.
    pub stream_id: u64,
    /// Frames produced by the source.
    pub frames_in: u64,
    /// Frames fully processed by the final stage.
    pub frames_out: u64,
    /// Frames dropped at full queues.
    pub frames_dropped: u64,
    /// Wall-clock run time in seconds.
    pub wall_time_s: f64,
    /// End-to-end throughput in frames per second (0 for zero-length runs).
    pub end_to_end_fps: f64,
    /// Per-stage latency summaries.
    pub stages: Vec<StageSection>,
}

/// Region-label population statistics (from `rpr-workloads`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegionSection {
    /// Average number of regions per regional frame.
    pub avg_regions: f64,
    /// Smallest region edge observed, `(w, h)`.
    pub min_size: (u32, u32),
    /// Largest region edge observed, `(w, h)`.
    pub max_size: (u32, u32),
    /// Smallest spatial stride observed.
    pub min_stride: u32,
    /// Largest spatial stride observed.
    pub max_stride: u32,
    /// Fastest sampling interval observed in ms (skip × frame time).
    pub min_rate_ms: f64,
    /// Slowest sampling interval observed in ms.
    pub max_rate_ms: f64,
    /// Regional frames observed.
    pub frames: u64,
}

/// DRAM-traffic and energy attribution for one region-label shape,
/// aggregated over the run from `encoder.label_px` trace counters.
///
/// Labels are keyed by `(label_id, stride, skip)`: the slot index in the
/// frame's region list plus the rhythmic parameters. Runs whose label
/// lists are stable frame-to-frame (all bundled workloads) therefore get
/// one row per logical region.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LabelAttribution {
    /// Region-list slot index.
    pub label_id: u32,
    /// Spatial stride of the label.
    pub stride: u32,
    /// Temporal skip of the label.
    pub skip: u32,
    /// Frames on which this label captured at least one pixel.
    pub frames: u64,
    /// Total pixels captured (stored) for this label.
    pub pixels: u64,
    /// DRAM bytes attributed to this label (pixel write + read traffic).
    pub dram_bytes: u64,
    /// DRAM + interface energy attributed to this label, in pJ.
    pub energy_pj: f64,
}

/// Per-tenant traffic and service-quality accounting for a served run
/// (from `rpr-serve`). One row per tenant; a single-tenant or unserved
/// run simply leaves [`RunReport::tenants`] empty.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantSection {
    /// Tenant identifier (the string clients present at admission).
    pub tenant: String,
    /// Sessions the tenant attempted to open.
    pub sessions_offered: u64,
    /// Sessions admitted (≤ offered; the rest hit admission control).
    pub sessions_admitted: u64,
    /// Frames accepted off the wire for this tenant.
    pub frames_accepted: u64,
    /// Frames delivered end to end to the tenant's pipelines.
    pub frames_delivered: u64,
    /// Frames dropped (quota throttling plus drop-oldest eviction).
    pub frames_dropped: u64,
    /// Payload bytes ingested for this tenant.
    pub bytes_ingested: u64,
    /// Times the tenant hit its byte or frame token bucket.
    pub quota_throttles: u64,
    /// Times the tenant's queue raised degrade pressure.
    pub degrade_events: u64,
    /// `frames_delivered / frames_accepted` (1.0 when nothing was
    /// accepted) — the headline per-tenant service-quality number.
    pub delivered_fraction: f64,
}

/// Region-prediction quality for a moving-camera run (from
/// `rpr-predict` via the workloads tracking runner). Absent for runs
/// without prediction scoring.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictionSection {
    /// Mean best-IoU of the planned regions against the ground-truth
    /// object tracks, over scored regional frames — the headline
    /// prediction-quality number.
    pub mean_region_iou: f64,
    /// Regional frames that contributed to `mean_region_iou`.
    pub frames_scored: u64,
    /// Mean RANSAC inlier fraction of the per-frame ego-motion fits
    /// (0 when no fit ran).
    pub mean_inlier_fraction: f64,
    /// Total full-resolution-equivalent pixels the planned regions
    /// kept over scored frames — the high-resolution pixel budget the
    /// acceptance criterion compares at.
    pub hi_res_pixels: u64,
}

/// One tenant's service-level-objective outcome for a served run (from
/// the live telemetry plane in `rpr-trace`/`rpr-serve`). One row per
/// tenant that declared an SLO.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloSection {
    /// Tenant the objective belongs to.
    pub tenant: String,
    /// Delivery-latency target in µs (slower deliveries are bad events).
    pub target_delivery_us: u64,
    /// Allowed fraction of bad events (late + dropped) per window.
    pub budget_fraction: f64,
    /// Sliding-window length in microseconds.
    pub window_micros: u64,
    /// Good events in the window at report time.
    pub good_events: u64,
    /// Bad events (late deliveries + drops) in the window at report time.
    pub bad_events: u64,
    /// Windowed burn rate: bad fraction ÷ budget (≥ 1.0 = violating).
    pub burn_rate: f64,
    /// Breach episodes observed over the run.
    pub breaches: u64,
    /// Flight-recorder dumps triggered for this tenant over the run.
    pub flight_dumps: u64,
}

/// One run of one workload, fully described: the unified document the
/// `rpr-report` CLI renders and diffs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Layout version ([`REPORT_SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Workload name (`face`, `pose`, `slam`, ...).
    pub task: String,
    /// Dataset / scale description.
    pub dataset: String,
    /// Capture baseline (`rpr`, `full-capture`, ...).
    pub baseline: String,
    /// Frames processed end to end.
    pub frames: u64,
    /// Nominal sensor frame rate used for rate-derived metrics.
    pub fps: f64,
    /// Task-specific accuracy metrics (IoU, PCK, ATE, ... by name).
    pub accuracy: BTreeMap<String, f64>,
    /// Memory-traffic section.
    pub memory: MemorySection,
    /// Energy section.
    pub energy: EnergySection,
    /// Hardware-model section.
    pub hw: HwSection,
    /// Staged-executor streams (empty for single-threaded runs).
    pub streams: Vec<StreamSection>,
    /// Region statistics (absent when the run never produced regions).
    pub region_stats: Option<RegionSection>,
    /// Per-region-label DRAM/energy attribution (empty when tracing was
    /// off during the run).
    pub labels: Vec<LabelAttribution>,
    /// Traffic bytes not attributable to any label (masks, region
    /// tables, raw-baseline frames).
    pub unattributed_bytes: u64,
    /// Per-tenant serving accounting (empty for unserved runs).
    pub tenants: Vec<TenantSection>,
    /// Region-prediction quality (absent when the run scored none;
    /// reports written before this field existed parse as `None`).
    pub prediction: Option<PredictionSection>,
    /// Per-tenant SLO outcomes (absent for runs without declared SLOs;
    /// reports written before this field existed parse as `None`).
    pub slos: Option<Vec<SloSection>>,
}

impl RunReport {
    /// Renders the report as a human-readable text block.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, line: String| {
            out.push_str(&line);
            out.push('\n');
        };
        push(
            &mut out,
            format!(
                "RunReport v{} — task={} dataset={} baseline={}",
                self.schema_version, self.task, self.dataset, self.baseline
            ),
        );
        push(&mut out, format!("frames: {}  fps: {:.1}", self.frames, self.fps));
        if !self.accuracy.is_empty() {
            push(&mut out, "accuracy:".to_string());
            for (k, v) in &self.accuracy {
                push(&mut out, format!("  {k}: {v:.4}"));
            }
        }
        let m = &self.memory;
        push(&mut out, "memory:".to_string());
        push(
            &mut out,
            format!(
                "  write {} B  read {} B  metadata {} B  ({:.1} B/frame, {:.2} MB/s)",
                m.write_bytes, m.read_bytes, m.metadata_bytes, m.bytes_per_frame, m.throughput_mb_s
            ),
        );
        push(
            &mut out,
            format!(
                "  footprint mean {:.1} B  peak {} B  captured fraction {:.3}",
                m.mean_footprint_bytes, m.peak_footprint_bytes, m.mean_captured_fraction
            ),
        );
        let e = &self.energy;
        push(&mut out, "energy:".to_string());
        push(
            &mut out,
            format!(
                "  sensing {:.0} pJ  interface {:.0} pJ  dram {:.0} pJ  compute {:.0} pJ",
                e.sensing_pj, e.interface_pj, e.dram_pj, e.compute_pj
            ),
        );
        push(
            &mut out,
            format!(
                "  total {:.3} mJ  ({:.4} mJ/frame, {:.2} mW @ {:.0} fps)",
                e.total_mj, e.mj_per_frame, e.power_mw, self.fps
            ),
        );
        let h = &self.hw;
        push(
            &mut out,
            format!(
                "hw: encoder {:.2} mW  decoder {:.2} mW  cmp/px {:.2}  keep {:.3}",
                h.encoder_mw, h.decoder_mw, h.comparisons_per_pixel, h.keep_ratio
            ),
        );
        for s in &self.streams {
            push(
                &mut out,
                format!(
                    "stream {}: in {} out {} dropped {}  {:.1} fps over {:.2} s",
                    s.stream_id, s.frames_in, s.frames_out, s.frames_dropped, s.end_to_end_fps,
                    s.wall_time_s
                ),
            );
            for st in &s.stages {
                push(
                    &mut out,
                    format!(
                        "  stage {}: {} frames ({} degraded)  mean {:.0} µs  p50 {:.0}  p90 {:.0}  p99 {:.0}",
                        st.name, st.frames, st.degraded_frames, st.mean_latency_us, st.p50_us,
                        st.p90_us, st.p99_us
                    ),
                );
            }
        }
        if let Some(r) = &self.region_stats {
            push(
                &mut out,
                format!(
                    "regions: avg {:.2}/frame  size {}x{}..{}x{}  stride {}..{}  rate {:.1}..{:.1} ms over {} frames",
                    r.avg_regions, r.min_size.0, r.min_size.1, r.max_size.0, r.max_size.1,
                    r.min_stride, r.max_stride, r.min_rate_ms, r.max_rate_ms, r.frames
                ),
            );
        }
        if !self.labels.is_empty() {
            push(
                &mut out,
                "label attribution (label/stride/skip, frames, px, DRAM bytes, energy pJ):"
                    .to_string(),
            );
            for l in &self.labels {
                push(
                    &mut out,
                    format!(
                        "  L{} s{} k{}: {} frames  {} px  {} B  {:.0} pJ",
                        l.label_id, l.stride, l.skip, l.frames, l.pixels, l.dram_bytes, l.energy_pj
                    ),
                );
            }
            push(&mut out, format!("  unattributed: {} B", self.unattributed_bytes));
        }
        if !self.tenants.is_empty() {
            push(
                &mut out,
                "tenants (sessions adm/off, frames del/acc/drop, bytes, throttles):".to_string(),
            );
            for t in &self.tenants {
                push(
                    &mut out,
                    format!(
                        "  {}: {}/{} sessions  {}/{} frames ({} dropped)  {} B  {} throttles  {} degrades  delivered {:.3}",
                        t.tenant, t.sessions_admitted, t.sessions_offered, t.frames_delivered,
                        t.frames_accepted, t.frames_dropped, t.bytes_ingested, t.quota_throttles,
                        t.degrade_events, t.delivered_fraction
                    ),
                );
            }
        }
        if let Some(p) = &self.prediction {
            push(
                &mut out,
                format!(
                    "prediction: mean region IoU {:.4} over {} frames  inliers {:.3}  hi-res px {}",
                    p.mean_region_iou, p.frames_scored, p.mean_inlier_fraction, p.hi_res_pixels
                ),
            );
        }
        if let Some(slos) = &self.slos {
            if !slos.is_empty() {
                push(&mut out, "slos (target µs, budget, window µs, good/bad, burn):".to_string());
                for s in slos {
                    push(
                        &mut out,
                        format!(
                            "  {}: target {} µs  budget {:.4}  window {} µs  {}/{} events  burn {:.3}  breaches {}  dumps {}",
                            s.tenant, s.target_delivery_us, s.budget_fraction, s.window_micros,
                            s.good_events, s.bad_events, s.burn_rate, s.breaches, s.flight_dumps
                        ),
                    );
                }
            }
        }
        out
    }
}

/// Regression thresholds for [`diff_reports`], in percent of the
/// baseline value. A metric regresses when it *worsens* by more than
/// its threshold (traffic/energy/latency up, throughput/accuracy down).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffThresholds {
    /// Allowed DRAM-traffic growth (`write+read` bytes), percent.
    pub dram_pct: f64,
    /// Allowed energy growth (total mJ), percent.
    pub energy_pct: f64,
    /// Allowed stage-latency growth (per-stage p90), percent.
    pub latency_pct: f64,
    /// Allowed accuracy drop, percent.
    pub accuracy_pct: f64,
    /// Whether wall-clock-derived metrics (latency, fps) are compared at
    /// all. Off when the two reports come from different machines.
    pub check_latency: bool,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            dram_pct: 5.0,
            energy_pct: 5.0,
            latency_pct: 5.0,
            accuracy_pct: 5.0,
            check_latency: true,
        }
    }
}

/// One compared metric in a [`ReportDiff`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDelta {
    /// Metric name, e.g. `memory.write_bytes`.
    pub name: String,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub new: f64,
    /// Signed change in percent of the baseline (0 when the baseline is
    /// 0 and the candidate is too; 100 when growing from a 0 baseline).
    pub pct_change: f64,
    /// Threshold applied to this metric, percent.
    pub threshold_pct: f64,
    /// Whether the change is a regression beyond the threshold.
    pub regressed: bool,
}

/// Outcome of [`diff_reports`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReportDiff {
    /// Every compared metric, regressions first.
    pub deltas: Vec<MetricDelta>,
}

impl ReportDiff {
    /// Whether any compared metric regressed beyond its threshold.
    pub fn regressed(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }

    /// Renders the comparison as a text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            let flag = if d.regressed { "REGRESSED" } else { "ok" };
            out.push_str(&format!(
                "{:<32} {:>14.3} -> {:>14.3}  {:>+8.2}% (limit {:.1}%)  {}\n",
                d.name, d.base, d.new, d.pct_change, d.threshold_pct, flag
            ));
        }
        out
    }
}

fn pct_change(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            100.0
        }
    } else {
        (new - base) / base * 100.0
    }
}

/// Direction in which a metric worsens.
#[derive(Clone, Copy)]
enum Worse {
    Up,
    Down,
}

fn delta(name: String, base: f64, new: f64, threshold_pct: f64, worse: Worse) -> MetricDelta {
    let pct = pct_change(base, new);
    let regressed = match worse {
        Worse::Up => pct > threshold_pct,
        Worse::Down => -pct > threshold_pct,
    };
    MetricDelta { name, base, new, pct_change: pct, threshold_pct, regressed }
}

/// Compares a candidate report against a baseline, flagging metrics that
/// worsened beyond the [`DiffThresholds`].
pub fn diff_reports(base: &RunReport, new: &RunReport, th: &DiffThresholds) -> ReportDiff {
    let mut deltas = vec![
        delta(
            "memory.total_bytes".into(),
            (base.memory.write_bytes + base.memory.read_bytes) as f64,
            (new.memory.write_bytes + new.memory.read_bytes) as f64,
            th.dram_pct,
            Worse::Up,
        ),
        delta(
            "memory.write_bytes".into(),
            base.memory.write_bytes as f64,
            new.memory.write_bytes as f64,
            th.dram_pct,
            Worse::Up,
        ),
        delta(
            "memory.read_bytes".into(),
            base.memory.read_bytes as f64,
            new.memory.read_bytes as f64,
            th.dram_pct,
            Worse::Up,
        ),
        delta(
            "memory.bytes_per_frame".into(),
            base.memory.bytes_per_frame,
            new.memory.bytes_per_frame,
            th.dram_pct,
            Worse::Up,
        ),
        delta(
            "energy.total_mj".into(),
            base.energy.total_mj,
            new.energy.total_mj,
            th.energy_pct,
            Worse::Up,
        ),
    ];
    for (name, base_v) in &base.accuracy {
        if let Some(new_v) = new.accuracy.get(name) {
            deltas.push(delta(
                format!("accuracy.{name}"),
                *base_v,
                *new_v,
                th.accuracy_pct,
                Worse::Down,
            ));
        }
    }
    for bt in &base.tenants {
        if let Some(nt) = new.tenants.iter().find(|t| t.tenant == bt.tenant) {
            deltas.push(delta(
                format!("tenant.{}.delivered_fraction", bt.tenant),
                bt.delivered_fraction,
                nt.delivered_fraction,
                th.accuracy_pct,
                Worse::Down,
            ));
        }
    }
    if let (Some(bp), Some(np)) = (&base.prediction, &new.prediction) {
        deltas.push(delta(
            "prediction.mean_region_iou".into(),
            bp.mean_region_iou,
            np.mean_region_iou,
            th.accuracy_pct,
            Worse::Down,
        ));
        deltas.push(delta(
            "prediction.hi_res_pixels".into(),
            bp.hi_res_pixels as f64,
            np.hi_res_pixels as f64,
            th.dram_pct,
            Worse::Up,
        ));
    }
    if let (Some(base_slos), Some(new_slos)) = (&base.slos, &new.slos) {
        for bs in base_slos {
            if let Some(ns) = new_slos.iter().find(|s| s.tenant == bs.tenant) {
                deltas.push(delta(
                    format!("slo.{}.burn_rate", bs.tenant),
                    bs.burn_rate,
                    ns.burn_rate,
                    th.accuracy_pct,
                    Worse::Up,
                ));
                deltas.push(delta(
                    format!("slo.{}.breaches", bs.tenant),
                    bs.breaches as f64,
                    ns.breaches as f64,
                    th.accuracy_pct,
                    Worse::Up,
                ));
            }
        }
    }
    if th.check_latency {
        for (bs, ns) in base.streams.iter().zip(new.streams.iter()) {
            deltas.push(delta(
                format!("stream{}.end_to_end_fps", bs.stream_id),
                bs.end_to_end_fps,
                ns.end_to_end_fps,
                th.latency_pct,
                Worse::Down,
            ));
            for (bst, nst) in bs.stages.iter().zip(ns.stages.iter()) {
                deltas.push(delta(
                    format!("stream{}.stage.{}.p90_us", bs.stream_id, bst.name),
                    bst.p90_us,
                    nst.p90_us,
                    th.latency_pct,
                    Worse::Up,
                ));
            }
        }
    }
    deltas.sort_by_key(|d| !d.regressed as u8);
    ReportDiff { deltas }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut accuracy = BTreeMap::new();
        accuracy.insert("iou".to_string(), 0.8);
        RunReport {
            schema_version: REPORT_SCHEMA_VERSION,
            task: "face".into(),
            dataset: "quick-256x192".into(),
            baseline: "rpr".into(),
            frames: 46,
            fps: 30.0,
            accuracy,
            memory: MemorySection {
                write_bytes: 1000,
                read_bytes: 900,
                metadata_bytes: 64,
                bytes_per_frame: 41.3,
                throughput_mb_s: 1.2,
                mean_footprint_bytes: 20.0,
                peak_footprint_bytes: 64,
                mean_captured_fraction: 0.4,
            },
            energy: EnergySection { total_mj: 10.0, ..Default::default() },
            streams: vec![StreamSection {
                stream_id: 0,
                frames_out: 46,
                end_to_end_fps: 100.0,
                stages: vec![StageSection {
                    name: "task".into(),
                    frames: 46,
                    p90_us: 500.0,
                    ..Default::default()
                }],
                ..Default::default()
            }],
            labels: vec![LabelAttribution {
                label_id: 0,
                stride: 2,
                skip: 1,
                frames: 46,
                pixels: 400,
                dram_bytes: 2400,
                energy_pj: 1680.0,
            }],
            ..Default::default()
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = sample_report();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert!(json.contains("\"schema_version\": 1"));
    }

    #[test]
    fn identical_reports_do_not_regress() {
        let report = sample_report();
        let diff = diff_reports(&report, &report, &DiffThresholds::default());
        assert!(!diff.regressed(), "{}", diff.render_text());
        assert!(!diff.deltas.is_empty());
    }

    #[test]
    fn traffic_growth_beyond_threshold_regresses() {
        let base = sample_report();
        let mut new = base.clone();
        new.memory.write_bytes = 1200; // +20% writes, > 5% total growth
        let diff = diff_reports(&base, &new, &DiffThresholds::default());
        assert!(diff.regressed());
        let d = diff.deltas.iter().find(|d| d.name == "memory.write_bytes").unwrap();
        assert!(d.regressed);
        assert!((d.pct_change - 20.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_drop_regresses_and_rise_does_not() {
        let base = sample_report();
        let mut worse = base.clone();
        worse.accuracy.insert("iou".to_string(), 0.7);
        assert!(diff_reports(&base, &worse, &DiffThresholds::default()).regressed());
        let mut better = base.clone();
        better.accuracy.insert("iou".to_string(), 0.9);
        assert!(!diff_reports(&base, &better, &DiffThresholds::default()).regressed());
    }

    #[test]
    fn latency_checks_can_be_disabled() {
        let base = sample_report();
        let mut new = base.clone();
        new.streams[0].stages[0].p90_us = 5_000.0;
        new.streams[0].end_to_end_fps = 10.0;
        let th = DiffThresholds { check_latency: false, ..Default::default() };
        assert!(!diff_reports(&base, &new, &th).regressed());
        assert!(diff_reports(&base, &new, &DiffThresholds::default()).regressed());
    }

    #[test]
    fn zero_baseline_changes_are_flagged_as_full_growth() {
        assert_eq!(pct_change(0.0, 0.0), 0.0);
        assert_eq!(pct_change(0.0, 5.0), 100.0);
    }

    #[test]
    fn render_text_mentions_key_sections() {
        let text = sample_report().render_text();
        assert!(text.contains("RunReport v1"));
        assert!(text.contains("memory:"));
        assert!(text.contains("energy:"));
        assert!(text.contains("label attribution"));
        assert!(text.contains("L0 s2 k1"));
    }

    fn tenant(name: &str, accepted: u64, delivered: u64) -> TenantSection {
        TenantSection {
            tenant: name.to_string(),
            sessions_offered: 8,
            sessions_admitted: 8,
            frames_accepted: accepted,
            frames_delivered: delivered,
            frames_dropped: accepted - delivered,
            bytes_ingested: accepted * 100,
            delivered_fraction: if accepted == 0 {
                1.0
            } else {
                delivered as f64 / accepted as f64
            },
            ..Default::default()
        }
    }

    #[test]
    fn tenant_sections_render_and_roundtrip() {
        let mut report = sample_report();
        report.tenants = vec![tenant("acme", 100, 100), tenant("globex", 100, 60)];
        let text = report.render_text();
        assert!(text.contains("tenants ("), "{text}");
        assert!(text.contains("globex: 8/8 sessions  60/100 frames"), "{text}");
        let back: RunReport =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn prediction_section_roundtrips_and_old_reports_still_parse() {
        let mut report = sample_report();
        report.prediction = Some(PredictionSection {
            mean_region_iou: 0.62,
            frames_scored: 40,
            mean_inlier_fraction: 0.85,
            hi_res_pixels: 120_000,
        });
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert!(report.render_text().contains("prediction: mean region IoU 0.6200"));

        // A pre-prediction report (no `prediction` key) still parses
        // with the section absent.
        let old = serde_json::to_string(&sample_report())
            .unwrap()
            .replace("\"prediction\":null", "\"unknown_future_field\":null");
        assert!(!old.contains("\"prediction\""), "{old}");
        let parsed: RunReport = serde_json::from_str(&old).unwrap();
        assert_eq!(parsed.prediction, None);
    }

    #[test]
    fn prediction_iou_drop_regresses_and_budget_growth_regresses() {
        let mut base = sample_report();
        base.prediction = Some(PredictionSection {
            mean_region_iou: 0.60,
            frames_scored: 40,
            mean_inlier_fraction: 0.9,
            hi_res_pixels: 100_000,
        });
        let mut worse = base.clone();
        worse.prediction.as_mut().unwrap().mean_region_iou = 0.50;
        let diff = diff_reports(&base, &worse, &DiffThresholds::default());
        assert!(diff.regressed(), "{}", diff.render_text());
        let mut fatter = base.clone();
        fatter.prediction.as_mut().unwrap().hi_res_pixels = 120_000;
        assert!(diff_reports(&base, &fatter, &DiffThresholds::default()).regressed());
        // Better IoU at the same budget is not a regression.
        let mut better = base.clone();
        better.prediction.as_mut().unwrap().mean_region_iou = 0.70;
        assert!(!diff_reports(&base, &better, &DiffThresholds::default()).regressed());
        // One-sided sections are skipped, not compared against zero.
        let mut none = base.clone();
        none.prediction = None;
        assert!(diff_reports(&base, &none, &DiffThresholds::default())
            .deltas
            .iter()
            .all(|d| !d.name.starts_with("prediction.")));
    }

    fn slo_row(tenant: &str, burn: f64, breaches: u64) -> SloSection {
        SloSection {
            tenant: tenant.to_string(),
            target_delivery_us: 5_000,
            budget_fraction: 0.01,
            window_micros: 1_000_000,
            good_events: 990,
            bad_events: 10,
            burn_rate: burn,
            breaches,
            flight_dumps: breaches.min(1),
        }
    }

    #[test]
    fn slo_section_roundtrips_and_old_reports_still_parse() {
        let mut report = sample_report();
        report.slos = Some(vec![slo_row("acme", 0.5, 0)]);
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        let text = report.render_text();
        assert!(text.contains("slos ("), "{text}");
        assert!(text.contains("acme: target 5000 µs"), "{text}");

        // A pre-SLO report (no `slos` key) still parses with the
        // section absent.
        let old = serde_json::to_string(&sample_report())
            .unwrap()
            .replace("\"slos\":null", "\"unknown_future_field\":null");
        assert!(!old.contains("\"slos\""), "{old}");
        let parsed: RunReport = serde_json::from_str(&old).unwrap();
        assert_eq!(parsed.slos, None);
    }

    #[test]
    fn slo_burn_rate_growth_regresses() {
        let mut base = sample_report();
        base.slos = Some(vec![slo_row("acme", 0.0, 0)]);
        // An injected breach against a zero-burn baseline must trip the
        // gate (pct_change reports 100% growth from a 0 baseline).
        let mut breached = base.clone();
        breached.slos = Some(vec![slo_row("acme", 3.0, 1)]);
        let diff = diff_reports(&base, &breached, &DiffThresholds::default());
        assert!(diff.regressed(), "{}", diff.render_text());
        let d = diff.deltas.iter().find(|d| d.name == "slo.acme.burn_rate").unwrap();
        assert!(d.regressed);
        assert_eq!(d.pct_change, 100.0);
        // Identical SLO outcomes do not regress.
        assert!(!diff_reports(&base, &base.clone(), &DiffThresholds::default()).regressed());
        // A tenant only in the candidate is ignored.
        let mut extra = base.clone();
        extra.slos.as_mut().unwrap().push(slo_row("newcomer", 9.0, 4));
        assert!(!diff_reports(&base, &extra, &DiffThresholds::default()).regressed());
    }

    #[test]
    fn tenant_delivered_fraction_drop_regresses() {
        let mut base = sample_report();
        base.tenants = vec![tenant("acme", 100, 100)];
        let mut new = base.clone();
        new.tenants = vec![tenant("acme", 100, 60)];
        let diff = diff_reports(&base, &new, &DiffThresholds::default());
        let d = diff
            .deltas
            .iter()
            .find(|d| d.name == "tenant.acme.delivered_fraction")
            .expect("tenant delta present");
        assert!(d.regressed, "{}", diff.render_text());
        // A tenant only present in the candidate is ignored (new
        // tenants cannot regress a baseline that never served them).
        new.tenants.push(tenant("initech", 10, 0));
        assert!(diff_reports(&base, &new, &DiffThresholds::default())
            .deltas
            .iter()
            .all(|d| !d.name.contains("initech")));
    }
}

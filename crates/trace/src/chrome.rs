//! Chrome trace-event export: turns drained [`TraceEvent`]s into the
//! JSON object format that Perfetto and `chrome://tracing` load
//! directly (<https://ui.perfetto.dev>, "Open trace file").

use crate::sink::{EventKind, Provenance, TraceEvent};
use serde_json::Value;

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

fn args_of(e: &TraceEvent) -> Value {
    let mut entries: Vec<(String, Value)> = Vec::new();
    if e.kind == EventKind::Counter {
        entries.push(("value".to_string(), Value::F64(e.value)));
    }
    let Provenance { frame_idx, label_id, stride, skip, ctx } = e.provenance;
    if let Some(f) = frame_idx {
        entries.push(("frame_idx".to_string(), Value::U64(f)));
    }
    if let Some(l) = label_id {
        entries.push(("label_id".to_string(), Value::U64(u64::from(l))));
    }
    if let Some(s) = stride {
        entries.push(("stride".to_string(), Value::U64(u64::from(s))));
    }
    if let Some(s) = skip {
        entries.push(("skip".to_string(), Value::U64(u64::from(s))));
    }
    if let Some(c) = ctx {
        entries.push(("tenant".to_string(), Value::U64(u64::from(c.tenant))));
        entries.push(("camera".to_string(), Value::U64(c.camera)));
        entries.push(("session".to_string(), Value::U64(c.session)));
        entries.push(("frame_seq".to_string(), Value::U64(c.frame_seq)));
        entries.push(("ingest_micros".to_string(), Value::U64(c.ingest_micros)));
    }
    Value::Map(entries)
}

/// A Perfetto metadata (`ph: "M"`) event naming a process or thread
/// track.
fn metadata_event(name: &str, tid: Option<u64>, label: &str) -> Value {
    let mut entries: Vec<(String, Value)> = vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::U64(1)),
    ];
    if let Some(tid) = tid {
        entries.push(("tid".to_string(), Value::U64(tid)));
    }
    entries.push((
        "args".to_string(),
        Value::Map(vec![("name".to_string(), Value::Str(label.to_string()))]),
    ));
    Value::Map(entries)
}

fn event_value(e: &TraceEvent) -> Value {
    let mut entries: Vec<(String, Value)> = vec![
        ("name".to_string(), Value::Str(e.name.to_string())),
        ("cat".to_string(), Value::Str(e.cat.to_string())),
        ("pid".to_string(), Value::U64(1)),
        ("tid".to_string(), Value::U64(e.tid)),
        ("ts".to_string(), Value::F64(us(e.ts_ns))),
    ];
    match e.kind {
        EventKind::Span => {
            entries.push(("ph".to_string(), Value::Str("X".to_string())));
            entries.push(("dur".to_string(), Value::F64(us(e.dur_ns))));
        }
        EventKind::Counter => {
            entries.push(("ph".to_string(), Value::Str("C".to_string())));
            // Distinct label ids become distinct counter tracks.
            if let Some(label_id) = e.provenance.label_id {
                entries.push(("id".to_string(), Value::U64(u64::from(label_id))));
            }
        }
        EventKind::Instant => {
            entries.push(("ph".to_string(), Value::Str("i".to_string())));
            entries.push(("s".to_string(), Value::Str("t".to_string())));
        }
    }
    entries.push(("args".to_string(), args_of(e)));
    Value::Map(entries)
}

/// Builds the Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form) for a set of drained events.
///
/// [`crate::thread_label`] markers in the event stream are converted to
/// Perfetto `thread_name` metadata, so stage workers show up as named
/// tracks. For explicit track names (e.g. `tenant/camera` labels from
/// the serve flight recorder) use [`chrome_trace_value_named`].
pub fn chrome_trace_value(events: &[TraceEvent]) -> Value {
    chrome_trace_value_named(events, &[], "")
}

/// [`chrome_trace_value`] with explicit track names: `thread_names`
/// maps tids to track labels (merged with any [`crate::thread_label`]
/// markers found in the stream; explicit names win), and a non-empty
/// `process_name` names the pid-1 process track.
pub fn chrome_trace_value_named(
    events: &[TraceEvent],
    thread_names: &[(u64, String)],
    process_name: &str,
) -> Value {
    // Harvest thread labels the workers self-reported, newest wins,
    // then overlay the caller's explicit names.
    let mut names: Vec<(u64, String)> = Vec::new();
    let mut upsert = |tid: u64, label: String| match names.iter_mut().find(|(t, _)| *t == tid) {
        Some(entry) => entry.1 = label,
        None => names.push((tid, label)),
    };
    for e in events {
        if e.name == crate::names::THREAD_LABEL {
            upsert(e.tid, e.cat.to_string());
        }
    }
    for (tid, label) in thread_names {
        upsert(*tid, label.clone());
    }

    let mut out: Vec<Value> = Vec::new();
    if !process_name.is_empty() {
        out.push(metadata_event("process_name", None, process_name));
    }
    for (tid, label) in &names {
        out.push(metadata_event("thread_name", Some(*tid), label));
    }
    out.extend(events.iter().filter(|e| e.name != crate::names::THREAD_LABEL).map(event_value));
    Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(out)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ])
}

/// [`chrome_trace_value`] rendered as a JSON string.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    serde_json::to_string(&chrome_trace_value(events)).expect("chrome trace serializes")
}

/// [`chrome_trace_value_named`] rendered as a JSON string.
pub fn chrome_trace_json_named(
    events: &[TraceEvent],
    thread_names: &[(u64, String)],
    process_name: &str,
) -> String {
    serde_json::to_string(&chrome_trace_value_named(events, thread_names, process_name))
        .expect("chrome trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_event() -> TraceEvent {
        TraceEvent {
            name: "encode",
            cat: "core",
            kind: EventKind::Span,
            tid: 3,
            ts_ns: 2_000,
            dur_ns: 1_500,
            value: 0.0,
            provenance: Provenance { frame_idx: Some(4), ..Default::default() },
        }
    }

    fn counter_event() -> TraceEvent {
        TraceEvent {
            name: "encoder.label_px",
            cat: "core",
            kind: EventKind::Counter,
            tid: 0,
            ts_ns: 5_000,
            dur_ns: 0,
            value: 256.0,
            provenance: Provenance {
                frame_idx: Some(4),
                label_id: Some(1),
                stride: Some(2),
                skip: Some(3),
                ..Default::default()
            },
        }
    }

    #[test]
    fn export_shape_is_chrome_compatible() {
        let json = chrome_trace_json(&[span_event(), counter_event()]);
        // Structural checks against the trace-event format.
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"dur\":1.5"));
        assert!(json.contains("\"ts\":2.0"));
        assert!(json.contains("\"label_id\":1"));
        assert!(json.contains("\"value\":256.0"));
        // Must round-trip through a JSON parser (what Perfetto does).
        let back: Value = serde_json::from_str(&json).unwrap();
        let Value::Map(entries) = back else { panic!("object expected") };
        assert_eq!(entries[0].0, "traceEvents");
        let Value::Seq(events) = &entries[0].1 else { panic!("array expected") };
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn thread_labels_become_perfetto_metadata() {
        let label = TraceEvent {
            name: crate::names::THREAD_LABEL,
            cat: "stage.task",
            kind: EventKind::Instant,
            tid: 7,
            ts_ns: 0,
            dur_ns: 0,
            value: 0.0,
            provenance: Provenance::default(),
        };
        let json = chrome_trace_json(&[label, span_event()]);
        assert!(json.contains("\"name\":\"thread_name\""), "{json}");
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("{\"name\":\"stage.task\"}"), "{json}");
        assert!(!json.contains(crate::names::THREAD_LABEL), "marker itself filtered out");
    }

    #[test]
    fn explicit_names_and_process_label_are_emitted() {
        let json = chrome_trace_json_named(
            &[span_event()],
            &[(3, "fleet-a/camera-9".to_string())],
            "rpr-serve",
        );
        assert!(json.contains("\"name\":\"process_name\""), "{json}");
        assert!(json.contains("{\"name\":\"rpr-serve\"}"), "{json}");
        assert!(json.contains("\"tid\":3"), "{json}");
        assert!(json.contains("{\"name\":\"fleet-a/camera-9\"}"), "{json}");
        // Still loads as JSON with traceEvents first.
        let back: Value = serde_json::from_str(&json).unwrap();
        let Value::Map(entries) = back else { panic!("object expected") };
        assert_eq!(entries[0].0, "traceEvents");
    }

    #[test]
    fn ctx_provenance_lands_in_args() {
        let mut e = span_event();
        e.provenance.ctx = Some(crate::FrameCtx {
            tenant: 2,
            camera: 9,
            session: 5,
            frame_seq: 31,
            ingest_micros: 400,
        });
        let json = chrome_trace_json(&[e]);
        assert!(json.contains("\"tenant\":2"), "{json}");
        assert!(json.contains("\"camera\":9"), "{json}");
        assert!(json.contains("\"frame_seq\":31"), "{json}");
        assert!(json.contains("\"ingest_micros\":400"), "{json}");
    }

    #[test]
    fn instant_events_carry_scope() {
        let e = TraceEvent {
            name: "marker",
            cat: "t",
            kind: EventKind::Instant,
            tid: 0,
            ts_ns: 0,
            dur_ns: 0,
            value: 0.0,
            provenance: Provenance::default(),
        };
        let json = chrome_trace_json(&[e]);
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
    }
}

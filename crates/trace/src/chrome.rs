//! Chrome trace-event export: turns drained [`TraceEvent`]s into the
//! JSON object format that Perfetto and `chrome://tracing` load
//! directly (<https://ui.perfetto.dev>, "Open trace file").

use crate::sink::{EventKind, Provenance, TraceEvent};
use serde_json::Value;

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

fn args_of(e: &TraceEvent) -> Value {
    let mut entries: Vec<(String, Value)> = Vec::new();
    if e.kind == EventKind::Counter {
        entries.push(("value".to_string(), Value::F64(e.value)));
    }
    let Provenance { frame_idx, label_id, stride, skip } = e.provenance;
    if let Some(f) = frame_idx {
        entries.push(("frame_idx".to_string(), Value::U64(f)));
    }
    if let Some(l) = label_id {
        entries.push(("label_id".to_string(), Value::U64(u64::from(l))));
    }
    if let Some(s) = stride {
        entries.push(("stride".to_string(), Value::U64(u64::from(s))));
    }
    if let Some(s) = skip {
        entries.push(("skip".to_string(), Value::U64(u64::from(s))));
    }
    Value::Map(entries)
}

fn event_value(e: &TraceEvent) -> Value {
    let mut entries: Vec<(String, Value)> = vec![
        ("name".to_string(), Value::Str(e.name.to_string())),
        ("cat".to_string(), Value::Str(e.cat.to_string())),
        ("pid".to_string(), Value::U64(1)),
        ("tid".to_string(), Value::U64(e.tid)),
        ("ts".to_string(), Value::F64(us(e.ts_ns))),
    ];
    match e.kind {
        EventKind::Span => {
            entries.push(("ph".to_string(), Value::Str("X".to_string())));
            entries.push(("dur".to_string(), Value::F64(us(e.dur_ns))));
        }
        EventKind::Counter => {
            entries.push(("ph".to_string(), Value::Str("C".to_string())));
            // Distinct label ids become distinct counter tracks.
            if let Some(label_id) = e.provenance.label_id {
                entries.push(("id".to_string(), Value::U64(u64::from(label_id))));
            }
        }
        EventKind::Instant => {
            entries.push(("ph".to_string(), Value::Str("i".to_string())));
            entries.push(("s".to_string(), Value::Str("t".to_string())));
        }
    }
    entries.push(("args".to_string(), args_of(e)));
    Value::Map(entries)
}

/// Builds the Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form) for a set of drained events.
pub fn chrome_trace_value(events: &[TraceEvent]) -> Value {
    Value::Map(vec![
        (
            "traceEvents".to_string(),
            Value::Seq(events.iter().map(event_value).collect()),
        ),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ])
}

/// [`chrome_trace_value`] rendered as a JSON string.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    serde_json::to_string(&chrome_trace_value(events)).expect("chrome trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_event() -> TraceEvent {
        TraceEvent {
            name: "encode",
            cat: "core",
            kind: EventKind::Span,
            tid: 3,
            ts_ns: 2_000,
            dur_ns: 1_500,
            value: 0.0,
            provenance: Provenance { frame_idx: Some(4), ..Default::default() },
        }
    }

    fn counter_event() -> TraceEvent {
        TraceEvent {
            name: "encoder.label_px",
            cat: "core",
            kind: EventKind::Counter,
            tid: 0,
            ts_ns: 5_000,
            dur_ns: 0,
            value: 256.0,
            provenance: Provenance {
                frame_idx: Some(4),
                label_id: Some(1),
                stride: Some(2),
                skip: Some(3),
            },
        }
    }

    #[test]
    fn export_shape_is_chrome_compatible() {
        let json = chrome_trace_json(&[span_event(), counter_event()]);
        // Structural checks against the trace-event format.
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"dur\":1.5"));
        assert!(json.contains("\"ts\":2.0"));
        assert!(json.contains("\"label_id\":1"));
        assert!(json.contains("\"value\":256.0"));
        // Must round-trip through a JSON parser (what Perfetto does).
        let back: Value = serde_json::from_str(&json).unwrap();
        let Value::Map(entries) = back else { panic!("object expected") };
        assert_eq!(entries[0].0, "traceEvents");
        let Value::Seq(events) = &entries[0].1 else { panic!("array expected") };
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn instant_events_carry_scope() {
        let e = TraceEvent {
            name: "marker",
            cat: "t",
            kind: EventKind::Instant,
            tid: 0,
            ts_ns: 0,
            dur_ns: 0,
            value: 0.0,
            provenance: Provenance::default(),
        };
        let json = chrome_trace_json(&[e]);
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
    }
}

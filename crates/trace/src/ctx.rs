//! Trace-context propagation: the compact per-frame identity that rides
//! with a frame from session ingest, across the tenant bridge, into the
//! staged-executor stages — so one frame's end-to-end path
//! (ingest → admit → deliver → decode → task) reconstructs as a single
//! causal span chain in the exported trace.
//!
//! The context is all-numeric and `Copy` so it fits inside
//! [`crate::Provenance`] (trace events are `Copy` structs with no
//! allocation on the hot path); tenant *names* are interned by the live
//! aggregator ([`crate::live::LiveMetrics`]), which hands out the dense
//! `tenant` ids used here.

use serde::{Deserialize, Serialize};

/// Identity of one frame on its way through the serving stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameCtx {
    /// Dense tenant id interned by the live aggregator (registration
    /// order; resolve back to a name via `LiveMetrics::tenant_name`).
    pub tenant: u32,
    /// Camera id the session announced in its HELLO.
    pub camera: u64,
    /// Serving-session id (unique per server instance).
    pub session: u64,
    /// 0-based frame sequence number within the session.
    pub frame_seq: u64,
    /// Server-clock timestamp (µs) at which the frame was admitted —
    /// the anchor every downstream latency measures against.
    pub ingest_micros: u64,
}

impl FrameCtx {
    /// The same context re-anchored to a specific frame sequence
    /// number — used by stages that carry a per-stream base context and
    /// stamp each frame as it passes.
    pub fn for_frame(mut self, frame_seq: u64) -> Self {
        self.frame_seq = frame_seq;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_frame_rewrites_only_the_sequence() {
        let base = FrameCtx { tenant: 2, camera: 7, session: 11, frame_seq: 0, ingest_micros: 99 };
        let f = base.for_frame(41);
        assert_eq!(f.frame_seq, 41);
        assert_eq!(f.tenant, 2);
        assert_eq!(f.camera, 7);
        assert_eq!(f.session, 11);
        assert_eq!(f.ingest_micros, 99);
    }

    #[test]
    fn ctx_serializes_roundtrip() {
        let c = FrameCtx { tenant: 1, camera: 2, session: 3, frame_seq: 4, ingest_micros: 5 };
        let json = serde_json::to_string(&c).unwrap();
        let back: FrameCtx = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}

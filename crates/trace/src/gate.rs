//! The two lock-free cores of the trace sink, extracted so loom can
//! model them in isolation: the global enable gate every
//! instrumentation point polls, and the dense thread-id assigner.
//!
//! # Atomic-ordering policy
//!
//! This module (together with [`crate::sink`], which hosts the static
//! instances) is the only place in the workspace allowed to touch
//! atomics directly, and it uses exactly two orderings:
//!
//! * **`Relaxed` loads** on the hot path ([`EnableGate::is_enabled`],
//!   [`TidAssigner::assign`]). The gate is a *sampling* decision — an
//!   emission point racing `enable()` may record or skip one event
//!   either way, and both outcomes are correct. Paying an acquire
//!   fence per pixel to tighten that window would be pure cost.
//! * **`Release` stores** on the cold path ([`EnableGate::enable`] /
//!   [`EnableGate::disable`]), so a thread that observes the flag
//!   *through an existing synchronization edge* (thread join, mutex)
//!   also observes everything the enabling thread wrote before
//!   flipping it (e.g. the trace epoch).
//!
//! `SeqCst` is banned workspace-wide (rpr-check `atomic-ordering`,
//! pinned to `{Relaxed, Release}` for this file): nothing here needs a
//! total store order, and `SeqCst` tends to get cargo-culted precisely
//! into hot paths like this one. The loom model in
//! `tests/loom_gate.rs` exercises the gate and assigner under
//! adversarial interleavings.

#[cfg(loom)]
use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The global recording on/off flag. One `Relaxed` load per
/// instrumentation point when disabled — the entire cost of carrying
/// tracing in a release build.
#[derive(Debug)]
pub struct EnableGate {
    enabled: AtomicBool,
}

impl EnableGate {
    /// Creates a gate in the disabled state.
    pub const fn new() -> Self {
        EnableGate { enabled: AtomicBool::new(false) }
    }

    /// Turns recording on (`Release`: pairs with the synchronization
    /// edge a reader crosses before trusting buffered state).
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Turns recording off.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether recording is on. `Relaxed`: racing a flip may record or
    /// skip one borderline event, both acceptable by design.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }
}

impl Default for EnableGate {
    fn default() -> Self {
        EnableGate::new()
    }
}

/// Hands out small dense thread ids for [`crate::TraceEvent::tid`].
/// A plain `Relaxed` fetch-add: uniqueness comes from atomicity, and
/// no other memory is published through the counter.
#[derive(Debug)]
pub struct TidAssigner {
    next: AtomicU64,
}

impl TidAssigner {
    /// Creates an assigner starting at tid 0.
    pub const fn new() -> Self {
        TidAssigner { next: AtomicU64::new(0) }
    }

    /// Claims the next unused thread id.
    pub fn assign(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

impl Default for TidAssigner {
    fn default() -> Self {
        TidAssigner::new()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn gate_flips_and_reads_back() {
        let gate = EnableGate::new();
        assert!(!gate.is_enabled());
        gate.enable();
        assert!(gate.is_enabled());
        gate.disable();
        assert!(!gate.is_enabled());
    }

    #[test]
    fn tids_are_dense_and_unique() {
        let tids = TidAssigner::new();
        assert_eq!(tids.assign(), 0);
        assert_eq!(tids.assign(), 1);
        assert_eq!(tids.assign(), 2);
    }
}

//! Prometheus text exposition: renders live aggregator snapshots (and
//! SLO state) in the `text/plain; version=0.0.4` format a Prometheus
//! scraper — or the serve protocol's `METRICS` request — returns.
//!
//! The output is deterministic for a given snapshot (insertion order,
//! no timestamps beyond the explicit scrape-clock gauge), which is what
//! lets the golden test and the CI consistency check pin it.

use crate::live::TenantSnapshot;
use crate::report::SloSection;
use std::fmt::Write as _;

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn counter_family(
    out: &mut String,
    name: &str,
    help: &str,
    rows: impl Iterator<Item = (String, u64)>,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for (tenant, value) in rows {
        let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {value}", escape_label(&tenant));
    }
}

/// Renders the exposition document for a set of tenant snapshots and
/// their SLO outcomes, stamped with the serving clock.
pub fn render_prometheus(
    tenants: &[TenantSnapshot],
    slos: &[SloSection],
    now_micros: u64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# HELP rpr_scrape_clock_micros Serving-clock time of this scrape.");
    let _ = writeln!(out, "# TYPE rpr_scrape_clock_micros gauge");
    let _ = writeln!(out, "rpr_scrape_clock_micros {now_micros}");

    counter_family(
        &mut out,
        "rpr_frames_accepted_total",
        "Frames admitted past quotas.",
        tenants.iter().map(|t| (t.tenant.clone(), t.frames_accepted)),
    );
    counter_family(
        &mut out,
        "rpr_frames_delivered_total",
        "Frames routed to the tenant's pipelines.",
        tenants.iter().map(|t| (t.tenant.clone(), t.frames_delivered)),
    );
    counter_family(
        &mut out,
        "rpr_frames_dropped_total",
        "Frames dropped by quota veto or queue eviction.",
        tenants.iter().map(|t| (t.tenant.clone(), t.frames_dropped)),
    );
    counter_family(
        &mut out,
        "rpr_bytes_ingested_total",
        "Payload bytes billed against the byte quota.",
        tenants.iter().map(|t| (t.tenant.clone(), t.bytes_ingested)),
    );
    counter_family(
        &mut out,
        "rpr_quota_throttles_total",
        "Token-bucket throttle events.",
        tenants.iter().map(|t| (t.tenant.clone(), t.quota_throttles)),
    );

    let _ = writeln!(out, "# HELP rpr_delivery_latency_us Delivery latency (admit to routed), µs.");
    let _ = writeln!(out, "# TYPE rpr_delivery_latency_us summary");
    for t in tenants {
        let tenant = escape_label(&t.tenant);
        let h = &t.delivery_us;
        for (q, v) in
            [("0.5", h.p50_us()), ("0.9", h.p90_us()), ("0.99", h.p99_us())]
        {
            let _ = writeln!(
                out,
                "rpr_delivery_latency_us{{tenant=\"{tenant}\",quantile=\"{q}\"}} {v}"
            );
        }
        let _ = writeln!(
            out,
            "rpr_delivery_latency_us_sum{{tenant=\"{tenant}\"}} {}",
            h.sum_ns as f64 / 1e3
        );
        let _ = writeln!(out, "rpr_delivery_latency_us_count{{tenant=\"{tenant}\"}} {}", h.count);
    }

    if !slos.is_empty() {
        let _ = writeln!(out, "# HELP rpr_slo_burn_rate Windowed bad fraction over error budget.");
        let _ = writeln!(out, "# TYPE rpr_slo_burn_rate gauge");
        for s in slos {
            let _ = writeln!(
                out,
                "rpr_slo_burn_rate{{tenant=\"{}\"}} {}",
                escape_label(&s.tenant),
                s.burn_rate
            );
        }
        let _ = writeln!(out, "# HELP rpr_slo_breaches_total Breach episodes over the run.");
        let _ = writeln!(out, "# TYPE rpr_slo_breaches_total counter");
        for s in slos {
            let _ = writeln!(
                out,
                "rpr_slo_breaches_total{{tenant=\"{}\"}} {}",
                escape_label(&s.tenant),
                s.breaches
            );
        }
        let _ = writeln!(out, "# HELP rpr_flight_dumps_total Flight-recorder dumps triggered.");
        let _ = writeln!(out, "# TYPE rpr_flight_dumps_total counter");
        for s in slos {
            let _ = writeln!(
                out,
                "rpr_flight_dumps_total{{tenant=\"{}\"}} {}",
                escape_label(&s.tenant),
                s.flight_dumps
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;
    use std::time::Duration;

    fn snap(name: &str) -> TenantSnapshot {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(75));
        TenantSnapshot {
            tenant: name.to_string(),
            frames_accepted: 12,
            frames_delivered: 10,
            frames_dropped: 2,
            bytes_ingested: 4_096,
            quota_throttles: 1,
            delivery_us: h,
        }
    }

    #[test]
    fn golden_exposition_format() {
        let slos = vec![SloSection {
            tenant: "fleet-a".into(),
            target_delivery_us: 5_000,
            budget_fraction: 0.01,
            window_micros: 1_000_000,
            good_events: 10,
            bad_events: 2,
            burn_rate: 2.5,
            breaches: 1,
            flight_dumps: 1,
        }];
        let text = render_prometheus(&[snap("fleet-a")], &slos, 123_456);
        let expected = "\
# HELP rpr_scrape_clock_micros Serving-clock time of this scrape.
# TYPE rpr_scrape_clock_micros gauge
rpr_scrape_clock_micros 123456
# HELP rpr_frames_accepted_total Frames admitted past quotas.
# TYPE rpr_frames_accepted_total counter
rpr_frames_accepted_total{tenant=\"fleet-a\"} 12
# HELP rpr_frames_delivered_total Frames routed to the tenant's pipelines.
# TYPE rpr_frames_delivered_total counter
rpr_frames_delivered_total{tenant=\"fleet-a\"} 10
# HELP rpr_frames_dropped_total Frames dropped by quota veto or queue eviction.
# TYPE rpr_frames_dropped_total counter
rpr_frames_dropped_total{tenant=\"fleet-a\"} 2
# HELP rpr_bytes_ingested_total Payload bytes billed against the byte quota.
# TYPE rpr_bytes_ingested_total counter
rpr_bytes_ingested_total{tenant=\"fleet-a\"} 4096
# HELP rpr_quota_throttles_total Token-bucket throttle events.
# TYPE rpr_quota_throttles_total counter
rpr_quota_throttles_total{tenant=\"fleet-a\"} 1
# HELP rpr_delivery_latency_us Delivery latency (admit to routed), µs.
# TYPE rpr_delivery_latency_us summary
rpr_delivery_latency_us{tenant=\"fleet-a\",quantile=\"0.5\"} 75
rpr_delivery_latency_us{tenant=\"fleet-a\",quantile=\"0.9\"} 75
rpr_delivery_latency_us{tenant=\"fleet-a\",quantile=\"0.99\"} 75
rpr_delivery_latency_us_sum{tenant=\"fleet-a\"} 75
rpr_delivery_latency_us_count{tenant=\"fleet-a\"} 1
# HELP rpr_slo_burn_rate Windowed bad fraction over error budget.
# TYPE rpr_slo_burn_rate gauge
rpr_slo_burn_rate{tenant=\"fleet-a\"} 2.5
# HELP rpr_slo_breaches_total Breach episodes over the run.
# TYPE rpr_slo_breaches_total counter
rpr_slo_breaches_total{tenant=\"fleet-a\"} 1
# HELP rpr_flight_dumps_total Flight-recorder dumps triggered.
# TYPE rpr_flight_dumps_total counter
rpr_flight_dumps_total{tenant=\"fleet-a\"} 1
";
        assert_eq!(text, expected);
    }

    #[test]
    fn multiple_tenants_keep_registration_order() {
        let text = render_prometheus(&[snap("b-fleet"), snap("a-fleet")], &[], 0);
        let b = text.find("rpr_frames_accepted_total{tenant=\"b-fleet\"}").unwrap();
        let a = text.find("rpr_frames_accepted_total{tenant=\"a-fleet\"}").unwrap();
        assert!(b < a, "rows follow snapshot order, not lexical order");
        assert!(!text.contains("rpr_slo_burn_rate"), "no SLO families without SLOs");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut s = snap("we\"ird\\name");
        s.tenant = "we\"ird\\name\n".into();
        let text = render_prometheus(&[s], &[], 0);
        assert!(text.contains("tenant=\"we\\\"ird\\\\name\\n\""), "{text}");
    }
}

//! [`MetricsRegistry`]: the builder that gathers per-layer metrics into
//! one [`RunReport`].
//!
//! The registry deliberately knows nothing about the producing crates —
//! `rpr-stream`, `rpr-memsim`, `rpr-hwsim`, and `rpr-workloads` all
//! depend on this crate, so the conversion glue from their telemetry
//! types into the section structs lives above them (in `rpr-bench`).

use crate::report::{
    EnergySection, HwSection, LabelAttribution, MemorySection, RegionSection, RunReport,
    StreamSection, REPORT_SCHEMA_VERSION,
};
use crate::sink::{EventKind, TraceEvent};
use crate::names;
use std::collections::BTreeMap;

/// Accumulates sections and produces a [`RunReport`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    report: RunReport,
}

impl MetricsRegistry {
    /// Starts a registry for one run.
    pub fn new(task: &str, dataset: &str, baseline: &str) -> Self {
        MetricsRegistry {
            report: RunReport {
                schema_version: REPORT_SCHEMA_VERSION,
                task: task.to_string(),
                dataset: dataset.to_string(),
                baseline: baseline.to_string(),
                ..Default::default()
            },
        }
    }

    /// Sets the frame count and nominal frame rate.
    pub fn set_run_shape(&mut self, frames: u64, fps: f64) -> &mut Self {
        self.report.frames = frames;
        self.report.fps = fps;
        self
    }

    /// Records one named accuracy metric.
    pub fn set_accuracy(&mut self, name: &str, value: f64) -> &mut Self {
        self.report.accuracy.insert(name.to_string(), value);
        self
    }

    /// Sets the memory-traffic section.
    pub fn set_memory(&mut self, memory: MemorySection) -> &mut Self {
        self.report.memory = memory;
        self
    }

    /// Sets the energy section.
    pub fn set_energy(&mut self, energy: EnergySection) -> &mut Self {
        self.report.energy = energy;
        self
    }

    /// Sets the hardware-model section.
    pub fn set_hw(&mut self, hw: HwSection) -> &mut Self {
        self.report.hw = hw;
        self
    }

    /// Appends one staged-executor stream.
    pub fn add_stream(&mut self, stream: StreamSection) -> &mut Self {
        self.report.streams.push(stream);
        self
    }

    /// Sets the region-statistics section.
    pub fn set_region_stats(&mut self, region: Option<RegionSection>) -> &mut Self {
        self.report.region_stats = region;
        self
    }

    /// Attributes DRAM traffic and energy to region labels from drained
    /// trace events.
    ///
    /// Every [`names::ENCODER_LABEL_PX`] counter contributes its pixel
    /// count to the `(label_id, stride, skip)` bucket; pixels convert to
    /// bytes via `bytes_per_pixel` (doubled: DRAM write then read back
    /// by the consumer) and to energy via `pj_per_pixel` (the caller
    /// derives it from its `EnergyModel`, typically write-path +
    /// read-path pJ per pixel). `total_traffic_bytes` — the run's whole
    /// `write + read` traffic — determines the unattributed remainder
    /// (metadata, raw-baseline frames).
    pub fn ingest_label_pixels(
        &mut self,
        events: &[TraceEvent],
        bytes_per_pixel: u64,
        pj_per_pixel: f64,
        total_traffic_bytes: u64,
    ) -> &mut Self {
        #[derive(Default)]
        struct Acc {
            frames: BTreeMap<u64, ()>,
            pixels: u64,
        }
        let mut buckets: BTreeMap<(u32, u32, u32), Acc> = BTreeMap::new();
        for e in events {
            if e.kind != EventKind::Counter || e.name != names::ENCODER_LABEL_PX {
                continue;
            }
            let (Some(label_id), Some(stride), Some(skip)) =
                (e.provenance.label_id, e.provenance.stride, e.provenance.skip)
            else {
                continue;
            };
            let acc = buckets.entry((label_id, stride, skip)).or_default();
            acc.pixels += e.value as u64;
            if let Some(frame) = e.provenance.frame_idx {
                acc.frames.insert(frame, ());
            }
        }
        let mut labels: Vec<LabelAttribution> = buckets
            .into_iter()
            .map(|((label_id, stride, skip), acc)| LabelAttribution {
                label_id,
                stride,
                skip,
                frames: acc.frames.len() as u64,
                pixels: acc.pixels,
                dram_bytes: acc.pixels * bytes_per_pixel * 2,
                energy_pj: acc.pixels as f64 * pj_per_pixel,
            })
            .collect();
        labels.sort_by_key(|l| std::cmp::Reverse(l.dram_bytes));
        let attributed: u64 = labels.iter().map(|l| l.dram_bytes).sum();
        self.report.unattributed_bytes = total_traffic_bytes.saturating_sub(attributed);
        self.report.labels = labels;
        self
    }

    /// Finalizes and returns the report.
    pub fn finish(self) -> RunReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{EventKind, Provenance, TraceEvent};

    fn label_px(frame: u64, label: u32, stride: u32, skip: u32, px: f64) -> TraceEvent {
        TraceEvent {
            name: names::ENCODER_LABEL_PX,
            cat: "core",
            kind: EventKind::Counter,
            tid: 0,
            ts_ns: frame,
            dur_ns: 0,
            value: px,
            provenance: Provenance {
                frame_idx: Some(frame),
                label_id: Some(label),
                stride: Some(stride),
                skip: Some(skip),
                ..Default::default()
            },
        }
    }

    #[test]
    fn registry_assembles_a_versioned_report() {
        let mut reg = MetricsRegistry::new("slam", "quick", "rpr");
        reg.set_run_shape(92, 30.0).set_accuracy("ate_px", 1.5);
        let report = reg.finish();
        assert_eq!(report.schema_version, REPORT_SCHEMA_VERSION);
        assert_eq!(report.task, "slam");
        assert_eq!(report.frames, 92);
        assert_eq!(report.accuracy.get("ate_px"), Some(&1.5));
    }

    #[test]
    fn label_ingestion_aggregates_by_shape_and_counts_frames_once() {
        let events = vec![
            label_px(0, 0, 2, 1, 100.0),
            label_px(1, 0, 2, 1, 60.0),
            label_px(1, 1, 4, 3, 40.0),
            // Not a label counter: ignored.
            TraceEvent {
                name: names::DRAM_WRITE_BYTES,
                cat: "memsim",
                kind: EventKind::Counter,
                tid: 0,
                ts_ns: 0,
                dur_ns: 0,
                value: 999.0,
                provenance: Provenance::default(),
            },
        ];
        let mut reg = MetricsRegistry::new("face", "quick", "rpr");
        // 3 bytes/px RGB888, write+read doubling; 2.5 pJ/px.
        reg.ingest_label_pixels(&events, 3, 2.5, 2000);
        let report = reg.finish();
        assert_eq!(report.labels.len(), 2);
        let l0 = report.labels.iter().find(|l| l.label_id == 0).unwrap();
        assert_eq!(l0.pixels, 160);
        assert_eq!(l0.frames, 2);
        assert_eq!(l0.dram_bytes, 160 * 3 * 2);
        assert!((l0.energy_pj - 400.0).abs() < 1e-9);
        let l1 = report.labels.iter().find(|l| l.label_id == 1).unwrap();
        assert_eq!(l1.stride, 4);
        assert_eq!(l1.skip, 3);
        assert_eq!(l1.dram_bytes, 40 * 3 * 2);
        // 2000 total - (960 + 240) attributed.
        assert_eq!(report.unattributed_bytes, 800);
        // Sorted by descending traffic.
        assert!(report.labels[0].dram_bytes >= report.labels[1].dram_bytes);
    }

    #[test]
    fn attribution_never_underflows_total() {
        let events = vec![label_px(0, 0, 1, 1, 1000.0)];
        let mut reg = MetricsRegistry::new("face", "quick", "rpr");
        reg.ingest_label_pixels(&events, 3, 1.0, 100);
        assert_eq!(reg.finish().unattributed_bytes, 0);
    }
}

//! The flight recorder: a bounded ring of recent trace events that is
//! always on (cheap enough to run in production) and dumped as a
//! Chrome/Perfetto trace when something goes wrong — an SLO breach or a
//! session-fault storm — so the anomaly arrives with a retroactive
//! trace attached instead of a request to "please reproduce with
//! tracing enabled".
//!
//! Events are striped into per-thread shards by `tid` (each writer
//! thread locks only its own stripe) and each stripe is a fixed-size
//! ring: recording never allocates past the cap and never blocks on
//! other writers. [`FlightRecorder::dump`] drains the rings, merges and
//! time-sorts the events, so one anomaly produces one dump and the
//! ring starts refilling for the next.

use crate::sink::TraceEvent;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Shard count: matches the live aggregator's stripe width.
const FLIGHT_SHARDS: usize = 8;

/// A bounded multi-writer ring of recent [`TraceEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    shards: Box<[Mutex<VecDeque<TraceEvent>>]>,
    cap_per_shard: usize,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events overall
    /// (rounded up to a multiple of the shard count).
    pub fn new(capacity: usize) -> Self {
        let cap_per_shard = capacity.div_ceil(FLIGHT_SHARDS).max(1);
        FlightRecorder {
            shards: (0..FLIGHT_SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
            cap_per_shard,
        }
    }

    /// Records one event, evicting the shard's oldest when full.
    pub fn record(&self, event: TraceEvent) {
        let idx = usize::try_from(event.tid).unwrap_or(0) % self.shards.len();
        let mut ring = self.shards[idx].lock().expect("flight shard poisoned");
        if ring.len() >= self.cap_per_shard {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Events currently buffered across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("flight shard poisoned").len()).sum()
    }

    /// Whether the recorder holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains every shard and returns the merged, time-sorted events.
    pub fn dump(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for shard in self.shards.iter() {
            all.extend(std::mem::take(&mut *shard.lock().expect("flight shard poisoned")));
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{EventKind, Provenance};

    fn ev(tid: u64, ts_ns: u64) -> TraceEvent {
        TraceEvent {
            name: "serve.deliver",
            cat: "serve",
            kind: EventKind::Span,
            tid,
            ts_ns,
            dur_ns: 10,
            value: 0.0,
            provenance: Provenance::default(),
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let fr = FlightRecorder::new(FLIGHT_SHARDS * 4);
        // Everything lands on tid 0's shard: capacity 4 there.
        for ts in 0..100 {
            fr.record(ev(0, ts));
        }
        assert_eq!(fr.len(), 4);
        let dump = fr.dump();
        let ts: Vec<u64> = dump.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![96, 97, 98, 99], "oldest evicted first");
    }

    #[test]
    fn dump_merges_shards_sorted_and_drains() {
        let fr = FlightRecorder::new(64);
        fr.record(ev(1, 30));
        fr.record(ev(2, 10));
        fr.record(ev(3, 20));
        let dump = fr.dump();
        assert_eq!(dump.iter().map(|e| e.ts_ns).collect::<Vec<_>>(), vec![10, 20, 30]);
        assert!(fr.is_empty(), "dump drains the rings");
    }

    #[test]
    fn zero_capacity_still_holds_one_per_shard() {
        let fr = FlightRecorder::new(0);
        fr.record(ev(0, 1));
        fr.record(ev(0, 2));
        assert_eq!(fr.dump().len(), 1);
    }
}

//! The recording side: a global on/off gate, per-thread event buffers,
//! and the span/counter emission API.
//!
//! Design constraints (the encoder hot path runs per pixel, the stage
//! workers per frame):
//!
//! * **Disabled is (nearly) free.** Every emission point first does one
//!   `Relaxed` atomic load and branches out. No allocation, no clock
//!   read, no lock.
//! * **Enabled is allocation-conscious.** Events are plain `Copy`-ish
//!   structs with `&'static str` names pushed onto a per-thread
//!   `Vec` guarded by a mutex that only that thread ever locks during
//!   recording (the collector locks it once at [`drain`] time), so the
//!   fast path is an uncontended lock + vector push.

use crate::ctx::FrameCtx;
use crate::gate::{EnableGate, TidAssigner};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// What an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A closed duration (`ts_ns` .. `ts_ns + dur_ns`).
    Span,
    /// A sampled numeric value at `ts_ns`.
    Counter,
    /// A zero-duration marker.
    Instant,
}

/// Optional per-frame / per-region-label provenance carried by events —
/// the rhythmic-pixel coordinates (label id within the frame's region
/// list, spatial stride, temporal skip) that make attribution possible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Frame index within the run.
    pub frame_idx: Option<u64>,
    /// Region-label slot index within that frame's `RegionList`.
    pub label_id: Option<u32>,
    /// The label's spatial stride.
    pub stride: Option<u32>,
    /// The label's temporal skip.
    pub skip: Option<u32>,
    /// Serving-side frame identity (tenant/camera/session/frame_seq),
    /// threaded from session ingest through the bridge into the stages.
    pub ctx: Option<FrameCtx>,
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Event name (a canonical constant from [`crate::names`] or any
    /// static string).
    pub name: &'static str,
    /// Category (typically the emitting crate/layer).
    pub cat: &'static str,
    /// Span, counter, or instant.
    pub kind: EventKind,
    /// Recording thread (small dense ids assigned per thread).
    pub tid: u64,
    /// Nanoseconds since [`enable`] first initialized the trace epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (0 for counters/instants).
    pub dur_ns: u64,
    /// Counter value (0.0 for spans/instants).
    pub value: f64,
    /// Frame/region provenance.
    pub provenance: Provenance,
}

static GATE: EnableGate = EnableGate::new();
static TIDS: TidAssigner = TidAssigner::new();

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

type SharedBuffer = Arc<Mutex<Vec<TraceEvent>>>;

fn registry() -> &'static Mutex<Vec<SharedBuffer>> {
    static REGISTRY: OnceLock<Mutex<Vec<SharedBuffer>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: OnceLock<(u64, SharedBuffer)> = const { OnceLock::new() };
}

fn with_local<R>(f: impl FnOnce(u64, &SharedBuffer) -> R) -> R {
    LOCAL.with(|cell| {
        let (tid, buf) = cell.get_or_init(|| {
            let tid = TIDS.assign();
            let buf: SharedBuffer = Arc::new(Mutex::new(Vec::new()));
            // rpr-check: allow(panic-reach): poisoned mutex means a panic is already unwinding elsewhere; propagating is correct
            registry().lock().expect("trace registry poisoned").push(Arc::clone(&buf));
            (tid, buf)
        });
        f(*tid, buf)
    })
}

/// Turns recording on (and fixes the trace epoch on first use).
pub fn enable() {
    let _ = epoch();
    GATE.enable();
}

/// Turns recording off. Already-buffered events stay until [`drain`].
pub fn disable() {
    GATE.disable();
}

/// Whether recording is currently on — the one check every
/// instrumentation point pays when tracing is disabled. Ordering
/// rationale lives in [`crate::gate`].
#[inline]
pub fn is_enabled() -> bool {
    GATE.is_enabled()
}

/// Collects (and clears) every thread's buffered events, ordered by
/// timestamp.
pub fn drain() -> Vec<TraceEvent> {
    let mut all = Vec::new();
    for buf in registry().lock().expect("trace registry poisoned").iter() {
        all.append(&mut buf.lock().expect("trace buffer poisoned"));
    }
    all.sort_by_key(|e| e.ts_ns);
    all
}

#[inline]
fn record(event: TraceEvent) {
    // rpr-check: allow(panic-reach): poisoned mutex means a panic is already unwinding elsewhere; propagating is correct
    with_local(|_, buf| buf.lock().expect("trace buffer poisoned").push(event));
}

/// Records a counter sample.
#[inline]
pub fn counter(name: &'static str, cat: &'static str, value: f64) {
    counter_with(name, cat, value, Provenance::default());
}

/// Records a counter sample attributed to a frame.
#[inline]
pub fn counter_for_frame(name: &'static str, cat: &'static str, frame_idx: u64, value: f64) {
    counter_with(name, cat, value, Provenance { frame_idx: Some(frame_idx), ..Default::default() });
}

/// Records a counter sample with full region-label provenance.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn counter_for_region(
    name: &'static str,
    cat: &'static str,
    frame_idx: u64,
    label_id: u32,
    stride: u32,
    skip: u32,
    value: f64,
) {
    counter_with(
        name,
        cat,
        value,
        Provenance {
            frame_idx: Some(frame_idx),
            label_id: Some(label_id),
            stride: Some(stride),
            skip: Some(skip),
            ctx: None,
        },
    )
}

/// Records a counter sample attributed to a serving-side frame context.
#[inline]
pub fn counter_for_ctx(name: &'static str, cat: &'static str, ctx: FrameCtx, value: f64) {
    counter_with(
        name,
        cat,
        value,
        Provenance { frame_idx: Some(ctx.frame_seq), ctx: Some(ctx), ..Default::default() },
    );
}

/// Labels the calling thread for trace exports: emits one
/// [`crate::names::THREAD_LABEL`] marker whose category is the label.
/// The Chrome exporter turns it into a Perfetto `thread_name` metadata
/// event, so stage workers show up as named tracks instead of bare
/// thread ids. Cheap to call repeatedly; the exporter dedupes.
#[inline]
pub fn thread_label(label: &'static str) {
    if !is_enabled() {
        return;
    }
    record(TraceEvent {
        name: crate::names::THREAD_LABEL,
        cat: label,
        kind: EventKind::Instant,
        tid: with_local(|tid, _| tid),
        ts_ns: now_ns(),
        dur_ns: 0,
        value: 0.0,
        provenance: Provenance::default(),
    });
}

#[inline]
fn counter_with(name: &'static str, cat: &'static str, value: f64, provenance: Provenance) {
    if !is_enabled() {
        return;
    }
    record(TraceEvent {
        name,
        cat,
        kind: EventKind::Counter,
        tid: with_local(|tid, _| tid),
        ts_ns: now_ns(),
        dur_ns: 0,
        value,
        provenance,
    });
}

/// Records a zero-duration marker.
#[inline]
pub fn instant(name: &'static str, cat: &'static str) {
    if !is_enabled() {
        return;
    }
    record(TraceEvent {
        name,
        cat,
        kind: EventKind::Instant,
        tid: with_local(|tid, _| tid),
        ts_ns: now_ns(),
        dur_ns: 0,
        value: 0.0,
        provenance: Provenance::default(),
    });
}

/// A RAII span: records one [`EventKind::Span`] event on drop, covering
/// the guard's lifetime. When tracing was disabled at creation the
/// guard is inert (no clock read, nothing recorded on drop).
#[must_use = "a span records its duration when dropped"]
#[derive(Debug)]
pub struct Span {
    live: Option<SpanMeta>,
}

#[derive(Debug)]
struct SpanMeta {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    provenance: Provenance,
}

/// Opens a span. Attach provenance with [`Span::with_frame`] /
/// [`Span::with_region`].
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> Span {
    if !is_enabled() {
        return Span { live: None };
    }
    Span {
        live: Some(SpanMeta { name, cat, start_ns: now_ns(), provenance: Provenance::default() }),
    }
}

impl Span {
    /// Attributes the span to a frame.
    #[inline]
    pub fn with_frame(mut self, frame_idx: u64) -> Self {
        if let Some(meta) = self.live.as_mut() {
            meta.provenance.frame_idx = Some(frame_idx);
        }
        self
    }

    /// Attributes the span to a region label.
    #[inline]
    pub fn with_region(mut self, label_id: u32, stride: u32, skip: u32) -> Self {
        if let Some(meta) = self.live.as_mut() {
            meta.provenance.label_id = Some(label_id);
            meta.provenance.stride = Some(stride);
            meta.provenance.skip = Some(skip);
        }
        self
    }

    /// Attributes the span to a serving-side frame context (and, via
    /// `frame_seq`, to a frame index).
    #[inline]
    pub fn with_ctx(mut self, ctx: FrameCtx) -> Self {
        if let Some(meta) = self.live.as_mut() {
            meta.provenance.ctx = Some(ctx);
            meta.provenance.frame_idx = Some(ctx.frame_seq);
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(meta) = self.live.take() else { return };
        let end = now_ns();
        record(TraceEvent {
            name: meta.name,
            cat: meta.cat,
            kind: EventKind::Span,
            tid: with_local(|tid, _| tid),
            ts_ns: meta.start_ns,
            dur_ns: end.saturating_sub(meta.start_ns),
            value: 0.0,
            provenance: meta.provenance,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tests share the process-global sink, so they run under one
    // lock to avoid draining each other's events.
    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _gate = serialized();
        disable();
        let _ = drain();
        {
            let _s = span("s", "t").with_frame(3);
            counter("c", "t", 1.0);
            instant("i", "t");
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn span_records_duration_and_provenance() {
        let _gate = serialized();
        let _ = drain();
        enable();
        {
            let _s = span("work", "test").with_frame(7).with_region(2, 4, 3);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        disable();
        let events = drain();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.name, "work");
        assert_eq!(e.kind, EventKind::Span);
        assert!(e.dur_ns >= 500_000, "dur {}", e.dur_ns);
        assert_eq!(e.provenance.frame_idx, Some(7));
        assert_eq!(e.provenance.label_id, Some(2));
        assert_eq!(e.provenance.stride, Some(4));
        assert_eq!(e.provenance.skip, Some(3));
    }

    #[test]
    fn counters_capture_values_across_threads() {
        let _gate = serialized();
        let _ = drain();
        enable();
        counter_for_region("px", "test", 0, 1, 2, 2, 64.0);
        std::thread::scope(|s| {
            s.spawn(|| counter_for_frame("px2", "test", 5, 9.0));
        });
        disable();
        let events = drain();
        assert_eq!(events.len(), 2);
        let px = events.iter().find(|e| e.name == "px").unwrap();
        assert_eq!(px.value, 64.0);
        let px2 = events.iter().find(|e| e.name == "px2").unwrap();
        assert_eq!(px2.provenance.frame_idx, Some(5));
        assert_ne!(px.tid, px2.tid, "threads get distinct tids");
    }

    #[test]
    fn ctx_rides_spans_and_counters() {
        let _gate = serialized();
        let _ = drain();
        enable();
        let ctx = FrameCtx { tenant: 3, camera: 9, session: 1, frame_seq: 12, ingest_micros: 77 };
        {
            let _s = span("deliver", "serve").with_ctx(ctx);
        }
        counter_for_ctx("serve.e2e_us", "serve", ctx, 140.0);
        thread_label("stage.task");
        disable();
        let events = drain();
        assert_eq!(events.len(), 3);
        let s = events.iter().find(|e| e.name == "deliver").unwrap();
        assert_eq!(s.provenance.ctx, Some(ctx));
        assert_eq!(s.provenance.frame_idx, Some(12), "ctx also sets the frame index");
        let c = events.iter().find(|e| e.name == "serve.e2e_us").unwrap();
        assert_eq!(c.provenance.ctx.unwrap().camera, 9);
        let label = events.iter().find(|e| e.name == crate::names::THREAD_LABEL).unwrap();
        assert_eq!(label.cat, "stage.task");
    }

    #[test]
    fn drain_clears_and_sorts() {
        let _gate = serialized();
        let _ = drain();
        enable();
        counter("a", "t", 1.0);
        counter("b", "t", 2.0);
        disable();
        let events = drain();
        assert_eq!(events.len(), 2);
        assert!(events[0].ts_ns <= events[1].ts_ns);
        assert!(drain().is_empty(), "drain clears the buffers");
    }
}

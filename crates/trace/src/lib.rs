//! Cross-layer observability for the rhythmic-pixel stack.
//!
//! The paper's headline claims are *system-level* numbers — DRAM traffic
//! and energy reduction, encoder/decoder cost, end-to-end accuracy — but
//! each signal is produced by a different crate (`rpr-stream` telemetry,
//! `rpr-memsim` traffic/energy, `rpr-hwsim` power, `rpr-workloads`
//! accuracy). This crate is the thin layer that ties them together:
//!
//! * **Tracing** ([`span`], [`counter`], [`counter_for_region`]): cheap
//!   structured events with per-frame / per-region-label provenance
//!   (label id, stride, skip), recorded into per-thread sinks behind a
//!   single global [`enable`] gate. When tracing is disabled the only
//!   cost at every instrumentation point is one relaxed atomic load.
//! * **Chrome trace export** ([`chrome_trace_value`]): any captured run
//!   opens directly in Perfetto / `about:tracing`.
//! * **[`MetricsRegistry`] / [`RunReport`]**: one serde document with a
//!   stable, versioned schema ([`REPORT_SCHEMA_VERSION`]) unifying
//!   stream telemetry, memory traffic, energy, hardware power, region
//!   statistics, accuracy, and per-region-label DRAM/energy attribution.
//! * **Report diffing** ([`diff_reports`]): threshold-gated regression
//!   comparison of two `RunReport`s, usable as a CI gate (the
//!   `rpr-report` binary in `rpr-bench` is the CLI front end).
//!
//! # Quick start
//!
//! ```
//! rpr_trace::enable();
//! {
//!     let _span = rpr_trace::span("encode", "demo").with_frame(0);
//!     rpr_trace::counter_for_region("demo.label_px", "demo", 0, 2, 1, 1, 64.0);
//! }
//! let events = rpr_trace::drain();
//! rpr_trace::disable();
//! assert_eq!(events.len(), 2);
//! let chrome = rpr_trace::chrome_trace_value(&events);
//! assert!(serde_json::to_string(&chrome).unwrap().contains("traceEvents"));
//! ```

#![deny(missing_docs)]

mod chrome;
mod ctx;
mod expo;
mod flight;
pub mod gate;
mod hist;
pub mod live;
mod registry;
mod report;
mod sink;
pub mod slo;

pub use chrome::{
    chrome_trace_json, chrome_trace_json_named, chrome_trace_value, chrome_trace_value_named,
};
pub use ctx::FrameCtx;
pub use expo::render_prometheus;
pub use flight::FlightRecorder;
pub use hist::{LatencyHistogram, LATENCY_BUCKETS_US};
pub use live::{LiveCounter, LiveHistogram, LiveMetrics, TenantLive, TenantSnapshot};
pub use registry::MetricsRegistry;
pub use report::{
    diff_reports, DiffThresholds, EnergySection, HwSection, LabelAttribution, MemorySection,
    MetricDelta, PredictionSection, RegionSection, ReportDiff, RunReport, SloSection, StageSection,
    StreamSection, TenantSection, REPORT_SCHEMA_VERSION,
};
pub use sink::{
    counter, counter_for_ctx, counter_for_frame, counter_for_region, disable, drain, enable,
    instant, is_enabled, span, thread_label, EventKind, Provenance, Span, TraceEvent,
};
pub use slo::{SloConfig, SloTracker};

/// Canonical event names emitted by the instrumented crates, shared
/// between the emission sites and [`MetricsRegistry`] ingestion.
pub mod names {
    /// One whole-frame encode pass (`rpr-core`), span.
    pub const ENCODE: &str = "encoder.encode";
    /// One whole-frame decode pass (`rpr-core`), span.
    pub const DECODE: &str = "decoder.decode";
    /// Captured (stored `R`) pixels for one region label on one frame
    /// (`rpr-core`), counter with full region provenance.
    pub const ENCODER_LABEL_PX: &str = "encoder.label_px";
    /// Bytes written to the modeled DRAM on one frame (`rpr-memsim`).
    pub const DRAM_WRITE_BYTES: &str = "dram.write_bytes";
    /// Bytes read from the modeled DRAM on one frame (`rpr-memsim`).
    pub const DRAM_READ_BYTES: &str = "dram.read_bytes";
    /// One capture-path frame through the experiment pipeline
    /// (`rpr-workloads`), span.
    pub const PIPELINE_FRAME: &str = "pipeline.process_frame";
    /// One source-stage frame production (`rpr-stream`), span.
    pub const STAGE_SOURCE: &str = "stage.source";
    /// One capture-stage frame (`rpr-stream`), span.
    pub const STAGE_CAPTURE: &str = "stage.capture";
    /// One task-stage frame (`rpr-stream`), span.
    pub const STAGE_TASK: &str = "stage.task";
    /// One ego-motion fit over a frame's motion vectors
    /// (`rpr-predict`), span.
    pub const PREDICT_EGO_FIT: &str = "predict.ego_fit";
    /// One forward-projection pass over a frame's region labels
    /// (`rpr-predict`), span.
    pub const PREDICT_PROJECT: &str = "predict.project";
    /// Motion vectors consumed by one ego-motion fit (`rpr-predict`),
    /// counter.
    pub const PREDICT_VECTORS: &str = "predict.vectors";
    /// RANSAC inlier fraction of one ego-motion fit (`rpr-predict`),
    /// counter in [0, 1].
    pub const PREDICT_INLIER_FRACTION: &str = "predict.inlier_fraction";
    /// Mean IoU of predicted regions against ground-truth object tracks
    /// on one frame (`rpr-workloads` tracking runner), counter.
    pub const PREDICT_REGION_IOU: &str = "predict.region_iou";
    /// Thread-label marker emitted by [`crate::thread_label`]; the
    /// Chrome exporter turns it into `thread_name` metadata.
    pub const THREAD_LABEL: &str = "meta.thread_label";
    /// One session's bytes→frames ingest poll (`rpr-serve`), span.
    pub const SERVE_INGEST: &str = "serve.ingest";
    /// One frame's admission decision (`rpr-serve`), instant/counter.
    pub const SERVE_ADMIT: &str = "serve.admit";
    /// One frame's path from admission to its tenant delivery queue
    /// (`rpr-serve`), span.
    pub const SERVE_DELIVER: &str = "serve.deliver";
    /// One frame routed by the tenant bridge into its per-camera
    /// pipeline (`rpr-serve`), span whose duration is admit→routed.
    pub const SERVE_ROUTE: &str = "serve.route";
    /// End-to-end delivery latency sample in µs (`rpr-serve`), counter
    /// with frame ctx.
    pub const SERVE_E2E_US: &str = "serve.e2e_us";
}

//! Loom models of the live metrics plane's snapshot/rotate races.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; run with
//! `RUSTFLAGS="--cfg loom" cargo test -p rpr-trace --test loom_live`.
#![cfg(loom)]

use loom::thread;
use rpr_trace::{LiveCounter, LiveHistogram};
use std::sync::Arc;

#[test]
fn counter_increments_are_never_lost_across_shards() {
    loom::model(|| {
        let counter = Arc::new(LiveCounter::new());
        let a = Arc::clone(&counter);
        let b = Arc::clone(&counter);
        let h1 = thread::spawn(move || a.add_in(0, 3));
        let h2 = thread::spawn(move || b.add_in(1, 4));
        // A racing read sees a prefix of the increments — never more.
        let mid = counter.value();
        assert!(mid <= 7, "mid-race read saw phantom increments: {mid}");
        h1.join().unwrap();
        h2.join().unwrap();
        assert_eq!(counter.value(), 7, "all increments visible after join");
    });
}

#[test]
fn snapshot_racing_a_writer_stays_internally_consistent() {
    loom::model(|| {
        let hist = Arc::new(LiveHistogram::new());
        hist.record_us_in(0, 40);
        let writer = Arc::clone(&hist);
        let h = thread::spawn(move || writer.record_us_in(1, 80));
        // Mid-race the snapshot holds either 1 or 2 samples, but its
        // internal invariant never wobbles.
        let snap = hist.snapshot();
        assert!(snap.count == 1 || snap.count == 2, "count {}", snap.count);
        assert_eq!(snap.count, snap.buckets.iter().sum::<u64>());
        h.join().unwrap();
        let fin = hist.snapshot();
        assert_eq!(fin.count, 2);
        assert_eq!(fin.sum_ns, 120_000);
    });
}

#[test]
fn rotate_racing_a_writer_conserves_every_sample() {
    loom::model(|| {
        let hist = Arc::new(LiveHistogram::new());
        hist.record_us_in(0, 10);
        let writer = Arc::clone(&hist);
        let h = thread::spawn(move || writer.record_us_in(1, 20));
        // The racing write lands in exactly one of: the rotated window
        // or the final snapshot — never both, never neither.
        let window = hist.rotate();
        h.join().unwrap();
        let tail = hist.snapshot();
        assert_eq!(
            window.count + tail.count,
            2,
            "rotation lost or duplicated a sample (window {}, tail {})",
            window.count,
            tail.count
        );
        assert_eq!(window.sum_ns + tail.sum_ns, 30_000, "mass conserved across rotation");
    });
}

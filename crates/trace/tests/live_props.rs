//! Property tests for the live metrics plane: snapshots taken while
//! writer threads are mid-flight must stay internally consistent
//! (`count == Σ buckets`, `sum_ns` matching the recorded mass) and
//! monotonic from one snapshot to the next.

use proptest::prelude::*;
use rpr_trace::{LiveCounter, LiveHistogram};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Concurrent writers + a snapshotting reader: every snapshot is
    /// internally consistent and totals only ever grow; the final
    /// snapshot accounts for every sample exactly once.
    #[test]
    fn snapshots_stay_consistent_under_concurrent_writers(
        samples in proptest::collection::vec(0u64..200_000, 1..256),
        writers in 1usize..5,
    ) {
        let hist = Arc::new(LiveHistogram::new());
        let counter = Arc::new(LiveCounter::new());
        let chunks: Vec<Vec<u64>> = samples
            .chunks(samples.len().div_ceil(writers))
            .map(<[u64]>::to_vec)
            .collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(w, chunk)| {
                let hist = Arc::clone(&hist);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for &us in &chunk {
                        hist.record_us_in(w, us);
                        counter.add_in(w, 1);
                    }
                })
            })
            .collect();

        // Reader races the writers: consistency and monotonicity must
        // hold for every mid-flight snapshot.
        let mut last_count = 0u64;
        let mut last_sum = 0u64;
        for _ in 0..64 {
            let snap = hist.snapshot();
            let bucket_total: u64 = snap.buckets.iter().sum();
            prop_assert_eq!(snap.count, bucket_total, "count == sum(buckets) mid-flight");
            prop_assert!(snap.count >= last_count, "count is monotonic");
            prop_assert!(snap.sum_ns >= last_sum, "sum is monotonic");
            prop_assert!(counter.value() >= snap.count || counter.value() <= samples.len() as u64);
            last_count = snap.count;
            last_sum = snap.sum_ns;
        }
        for h in handles {
            h.join().expect("writer thread");
        }

        let fin = hist.snapshot();
        prop_assert_eq!(fin.count, samples.len() as u64, "every sample landed once");
        let expected_ns: u64 = samples.iter().map(|us| us * 1_000).sum();
        prop_assert_eq!(fin.sum_ns, expected_ns, "mass conserved");
        prop_assert_eq!(fin.buckets.iter().sum::<u64>(), fin.count);
        prop_assert_eq!(counter.value(), samples.len() as u64);
        if let Some(&mx) = samples.iter().max() {
            prop_assert_eq!(fin.max_ns, mx * 1_000);
        }
    }

    /// Rotation conserves mass: interleaving rotations with writes never
    /// loses or double-counts a sample — the rotations plus the final
    /// snapshot always merge back to exactly the recorded workload.
    #[test]
    fn rotations_conserve_every_sample(
        samples in proptest::collection::vec(0u64..200_000, 1..256),
        rotate_every in 1usize..32,
    ) {
        let hist = LiveHistogram::new();
        let mut windows = rpr_trace::LatencyHistogram::new();
        for (i, &us) in samples.iter().enumerate() {
            hist.record_us_in(i, us);
            if i % rotate_every == 0 {
                windows.merge(&hist.rotate());
            }
        }
        windows.merge(&hist.snapshot());
        prop_assert_eq!(windows.count, samples.len() as u64);
        let expected_ns: u64 = samples.iter().map(|us| us * 1_000).sum();
        prop_assert_eq!(windows.sum_ns, expected_ns);
        prop_assert_eq!(windows.buckets.iter().sum::<u64>(), windows.count);
        // And rotation really drains every shard.
        let _residue = hist.rotate();
        prop_assert_eq!(hist.snapshot().count, 0, "rotate leaves the histogram empty");
    }
}

//! Loom models of the trace sink's lock-free cores.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; run with
//! `RUSTFLAGS="--cfg loom" cargo test -p rpr-trace --test loom_gate`.
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use rpr_trace::gate::{EnableGate, TidAssigner};

#[test]
fn racing_threads_never_share_a_tid() {
    loom::model(|| {
        let tids = Arc::new(TidAssigner::new());
        let a = Arc::clone(&tids);
        let b = Arc::clone(&tids);
        let h1 = thread::spawn(move || a.assign());
        let h2 = thread::spawn(move || b.assign());
        let t0 = tids.assign();
        let t1 = h1.join().unwrap();
        let t2 = h2.join().unwrap();
        assert_ne!(t0, t1);
        assert_ne!(t0, t2);
        assert_ne!(t1, t2);
        // Ids stay dense: three claims draw from {0, 1, 2}.
        let mut all = [t0, t1, t2];
        all.sort_unstable();
        assert_eq!(all, [0, 1, 2]);
    });
}

#[test]
fn enable_is_visible_after_a_join_edge() {
    loom::model(|| {
        let gate = Arc::new(EnableGate::new());
        let enabler = Arc::clone(&gate);
        let h = thread::spawn(move || enabler.enable());
        // Mid-race the Relaxed load may read either state — both are
        // within the gate's sampling contract, so nothing to assert.
        let _ = gate.is_enabled();
        h.join().unwrap();
        // But across the join's happens-before edge the Release store
        // must be visible.
        assert!(gate.is_enabled(), "enable() must be visible after join");
    });
}

#[test]
fn a_disabled_gate_stays_disabled_under_a_racing_reader() {
    loom::model(|| {
        let gate = Arc::new(EnableGate::new());
        let reader = Arc::clone(&gate);
        let h = thread::spawn(move || reader.is_enabled());
        gate.enable();
        gate.disable();
        let _mid = h.join().unwrap(); // either state is acceptable mid-race
        assert!(!gate.is_enabled(), "last write wins on the writer thread");
    });
}

//! Quickstart: encode a frame under a handful of rhythmic pixel
//! regions, decode it back, and inspect what was kept.
//!
//! Run with: `cargo run --release --example quickstart`

use rhythmic_pixel_regions::core::{
    PixelStatus, RegionLabel, RegionRuntime, SoftwareDecoder,
};
use rhythmic_pixel_regions::frame::Plane;

fn main() {
    let (width, height) = (96u32, 64u32);

    // 1. A synthetic "sensor" frame: a gradient with a bright square.
    let frame = Plane::from_fn(width, height, |x, y| {
        if (30..54).contains(&x) && (20..44).contains(&y) {
            230
        } else {
            ((x + y) % 160) as u8
        }
    });

    // 2. Program region labels through the runtime — the paper's
    //    SetRegionLabels() call. One dense region over the object, one
    //    strided context region, one slow background band.
    let mut runtime = RegionRuntime::new(width, height);
    runtime
        .set_region_labels(vec![
            RegionLabel::new(28, 18, 28, 28, 1, 1), // object: full res, every frame
            RegionLabel::new(8, 8, 80, 48, 4, 1),   // context: 1/16 density
            RegionLabel::new(0, 56, 96, 8, 2, 3),   // floor: strided, every 3rd frame
        ])
        .expect("labels are valid");

    // 3. Encode a few frames; the encoder discards everything outside
    //    the regions' spatial/temporal rhythm before "DRAM".
    let mut decoder = SoftwareDecoder::new(width, height);
    for t in 0..4 {
        let encoded = runtime.encode_frame(&frame);
        let meta = encoded.metadata();
        let hist = meta.mask.histogram();
        println!(
            "frame {t}: stored {:4} of {} pixels ({:4.1}%)  mask N/St/Sk/R = {:?}  \
             payload {} B + metadata {} B",
            encoded.pixel_count(),
            width * height,
            encoded.captured_fraction() * 100.0,
            hist,
            encoded.payload_bytes(),
            encoded.metadata_bytes(),
        );

        // 4. Decode for the vision algorithm: frame-based addressing is
        //    fully restored.
        let decoded = decoder.decode(&encoded);
        assert_eq!(decoded.get(40, 30), frame.get(40, 30), "object pixels are exact");
        if t == 0 {
            let status = meta.mask.get(40, 30);
            assert_eq!(status, PixelStatus::Regional);
            println!(
                "  decoded object pixel (40,30) = {} (original {}), status {}",
                decoded.get(40, 30).unwrap(),
                frame.get(40, 30).unwrap(),
                status
            );
        }
    }

    let stats = runtime.encoder().stats();
    println!(
        "\nencoder totals: {} px in -> {} px out (keep ratio {:.1}%), \
         {:.2} comparisons/pixel",
        stats.pixels_in,
        stats.pixels_out,
        stats.keep_ratio() * 100.0,
        stats.comparisons_per_pixel(),
    );
}

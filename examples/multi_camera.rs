//! Multi-camera capture service on the staged executor.
//!
//! Part 1 multiplexes a homogeneous fleet of four pose-tracking
//! cameras over [`StreamManager`]'s shared worker pool; part 2 runs a
//! heterogeneous trio (pose + face + SLAM) as independently staged
//! streams. Both print the per-stage telemetry the executor records.
//!
//! Run with: `cargo run --release --example multi_camera`

use rhythmic_pixel_regions::stream::{
    BackpressureMode, StreamConfig, StreamManager, StreamTelemetry,
};
use rhythmic_pixel_regions::workloads::{
    pose_outcome, pose_spec, run_face_staged, run_pose_staged, run_slam_staged, Baseline,
    FaceDataset, PipelineConfig, PoseDataset, SlamDataset,
};

fn main() {
    let (w, h, frames) = (160u32, 120u32, 24usize);
    let cfg = PipelineConfig::new(w, h, Baseline::Rp { cycle_length: 5 });
    let stream = StreamConfig::blocking();

    // 1. A homogeneous fleet: four pose cameras (different scenes) on
    //    the shared worker pool.
    let cameras: Vec<PoseDataset> =
        (0..4).map(|i| PoseDataset::new(w, h, frames, 11 + i)).collect();
    let manager = StreamManager::default();
    println!("fleet: 4 pose cameras on {} pool worker(s)", manager.workers());
    let specs = cameras.iter().map(|ds| pose_spec(ds, cfg, stream)).collect();
    let results = manager.run_all(specs);

    let telemetry: Vec<StreamTelemetry> =
        results.iter().map(|r| r.telemetry.clone()).collect();
    println!("aggregate throughput: {:.1} fps", StreamTelemetry::aggregate_fps(&telemetry));
    for t in &telemetry {
        let capture = &t.stages[1];
        println!(
            "  stream {}: {} frames, capture mean {:.2} ms, raw-queue max depth {}",
            t.stream_id,
            t.frames_out,
            capture.latency.mean_s() * 1e3,
            t.queues[0].max_depth,
        );
    }
    for r in results {
        let id = r.stream_id;
        let out = pose_outcome(r);
        println!(
            "  stream {id}: mAP {:.3}, traffic {:.2} MB/s",
            out.map, out.measurements.traffic.throughput_mb_s
        );
    }

    // 2. A heterogeneous trio: each task type is its own staged stream.
    let pose_ds = PoseDataset::new(w, h, frames, 21);
    let face_ds = FaceDataset::new(w, h, frames, 2, 22);
    let slam_ds = SlamDataset::new(w, h, frames, 23);
    let ((pose, _), (face, _), (slam, slam_tel)) = std::thread::scope(|scope| {
        let hp = scope.spawn(|| run_pose_staged(&pose_ds, cfg, stream));
        let hf = scope.spawn(|| run_face_staged(&face_ds, cfg, stream));
        let hs = scope.spawn(|| run_slam_staged(&slam_ds, cfg, stream));
        (
            hp.join().expect("pose stream"),
            hf.join().expect("face stream"),
            hs.join().expect("slam stream"),
        )
    });
    println!("\nheterogeneous trio:");
    println!("  pose: mAP {:.3}", pose.map);
    println!("  face: mAP {:.3}", face.map);
    println!("  slam: ATE {:.1} mm, {} tracking failures", slam.ate_mm, slam.tracking_failures);

    // 3. The full telemetry schema, as the JSON a service would export.
    println!(
        "\nslam stream telemetry (JSON):\n{}",
        serde_json::to_string_pretty(&slam_tel).expect("telemetry serializes")
    );

    // Under pressure a queue can also drop stale frames or degrade the
    // capture rhythm instead of blocking:
    let _ = stream.with_backpressure(BackpressureMode::DropOldest);
    let _ = stream.with_backpressure(BackpressureMode::Degrade);
}

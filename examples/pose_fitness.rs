//! A fitness-coach scenario: human pose tracking where the articulated
//! person region needs dense, fast sampling but the static room does
//! not. Shows the per-region stride/skip adaptation the paper derives
//! from region size and motion (§5.3.2).
//!
//! Run with: `cargo run --release --example pose_fitness`

use rhythmic_pixel_regions::workloads::datasets::VideoDataset;
use rhythmic_pixel_regions::workloads::tasks::run_pose;
use rhythmic_pixel_regions::workloads::{Baseline, PoseDataset};

fn main() {
    let dataset = PoseDataset::new(320, 240, 61, 11);
    println!(
        "fitness scene: {} frames of {}x{}, one articulated skeleton\n",
        dataset.len(),
        dataset.width(),
        dataset.height()
    );

    println!(
        "{:<10} {:>8} {:>13} {:>13} {:>9}",
        "baseline", "mAP (%)", "traffic MB/s", "footprint MB", "px kept"
    );
    for baseline in [
        Baseline::Fch,
        Baseline::Fcl { factor: 3 },
        Baseline::Rp { cycle_length: 10 },
        Baseline::MultiRoi { max_regions: 16, cycle_length: 10 },
    ] {
        let out = run_pose(&dataset, baseline);
        println!(
            "{:<10} {:>8.1} {:>13.2} {:>13.3} {:>8.0}%",
            baseline.label(),
            out.map * 100.0,
            out.measurements.traffic.throughput_mb_s,
            out.measurements.mean_footprint_bytes / 1e6,
            out.measurements.mean_captured_fraction() * 100.0
        );
    }

    let rp = run_pose(&dataset, Baseline::Rp { cycle_length: 10 });
    if let Some(stats) = rp.measurements.region_stats {
        println!(
            "\nRP10 person regions: avg {:.1}/frame, {}x{}..{}x{}, stride {}..{}, \
             sampled every {:.0}..{:.0} ms",
            stats.avg_regions,
            stats.min_size.0,
            stats.min_size.1,
            stats.max_size.0,
            stats.max_size.1,
            stats.min_stride,
            stats.max_stride,
            stats.min_rate_ms,
            stats.max_rate_ms
        );
    }
    println!(
        "\nDownscaling the whole frame (FCL) destroys the thin-limb detail the\n\
         pose estimator needs; rhythmic regions keep the person crisp while\n\
         the static room is dropped — the paper's Table 1 trade-off."
    );
}

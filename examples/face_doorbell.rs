//! A battery-powered video-doorbell scenario (the paper's IoT
//! motivation): continuous face detection where the camera must sip
//! power. Faces walking through the scene are tracked with
//! per-face rhythmic regions; everything else is discarded before
//! DRAM.
//!
//! Run with: `cargo run --release --example face_doorbell`

use rhythmic_pixel_regions::workloads::datasets::VideoDataset;
use rhythmic_pixel_regions::workloads::progression::format_progression;
use rhythmic_pixel_regions::workloads::tasks::run_face;
use rhythmic_pixel_regions::workloads::{Baseline, FaceDataset};

fn main() {
    let dataset = FaceDataset::new(320, 240, 61, 4, 7);
    println!(
        "doorbell scene: {} frames, up to 4 visitors crossing a {}x{} view\n",
        dataset.len(),
        dataset.width(),
        dataset.height()
    );

    println!("{:<10} {:>8} {:>13} {:>12}", "baseline", "mAP (%)", "traffic MB/s", "px kept");
    let mut rp10_fracs = Vec::new();
    for baseline in [
        Baseline::Fch,
        Baseline::Rp { cycle_length: 5 },
        Baseline::Rp { cycle_length: 10 },
        Baseline::Rp { cycle_length: 15 },
    ] {
        let out = run_face(&dataset, baseline);
        println!(
            "{:<10} {:>8.1} {:>13.2} {:>11.0}%",
            baseline.label(),
            out.map * 100.0,
            out.measurements.traffic.throughput_mb_s,
            out.measurements.mean_captured_fraction() * 100.0
        );
        if baseline == (Baseline::Rp { cycle_length: 10 }) {
            rp10_fracs = out.measurements.captured_fractions;
        }
    }

    println!("\nRP10 capture rhythm, first 21 frames (100% = periodic full scan):");
    let strip: Vec<f64> = rp10_fracs.iter().copied().take(21).collect();
    println!("  {}", format_progression(&strip));
    println!(
        "\nBetween full scans only the tracked face regions are stored, at\n\
         temporal rates matched to each visitor's walking speed."
    );
}

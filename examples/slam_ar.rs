//! The paper's motivating AR scenario: visual SLAM tracking a camera
//! over a textured environment, comparing frame-based capture against
//! rhythmic pixel regions end to end — accuracy, traffic, footprint,
//! and energy.
//!
//! Run with: `cargo run --release --example slam_ar`

use rhythmic_pixel_regions::memsim::{EnergyModel, FrameActivity};
use rhythmic_pixel_regions::workloads::datasets::VideoDataset;
use rhythmic_pixel_regions::workloads::tasks::run_slam;
use rhythmic_pixel_regions::workloads::{Baseline, SlamDataset};

fn main() {
    let dataset = SlamDataset::new(320, 240, 61, 42);
    println!(
        "dataset: {} frames of {}x{}, ground-truth camera trajectory (mm units)\n",
        dataset.len(),
        dataset.width(),
        dataset.height()
    );

    let energy = EnergyModel::paper_defaults();
    let bpp = 3u64; // RGB888 accounting
    println!(
        "{:<10} {:>9} {:>12} {:>13} {:>11} {:>12}",
        "baseline", "ATE (mm)", "traffic MB/s", "footprint MB", "px kept", "energy mJ/fr"
    );
    for baseline in [
        Baseline::Fch,
        Baseline::Fcl { factor: 4 },
        Baseline::Rp { cycle_length: 5 },
        Baseline::Rp { cycle_length: 10 },
        Baseline::Rp { cycle_length: 15 },
    ] {
        let out = run_slam(&dataset, baseline);
        let m = &out.measurements;
        let px = u64::from(dataset.width()) * u64::from(dataset.height());
        let frames = m.captured_fractions.len() as u64;
        let activity = FrameActivity {
            sensed_px: px,
            csi_px: px,
            dram_written_px: m.traffic.write_bytes / bpp / frames.max(1),
            dram_read_px: m.traffic.read_bytes / bpp / frames.max(1),
            macs: 0,
        };
        println!(
            "{:<10} {:>9.2} {:>12.2} {:>13.3} {:>10.0}% {:>12.2}",
            baseline.label(),
            out.ate_mm,
            m.traffic.throughput_mb_s,
            m.mean_footprint_bytes / 1e6,
            m.mean_captured_fraction() * 100.0,
            energy.frame_energy(&activity).total_mj(),
        );
    }

    println!(
        "\nThe rhythmic configurations keep the AR-relevant feature regions at\n\
         full detail while discarding the rest — near-FCH trajectory accuracy\n\
         at a fraction of the pixel memory traffic (paper Figs. 8-9)."
    );
}

//! Fleet ingest: eight cameras across two tenants record their capture
//! streams to `.rpr` containers, then stream them at one `rpr-serve`
//! event loop. The server admits each session, enforces per-tenant
//! quotas, and demuxes deliveries through a [`TenantBridge`] into one
//! decode pipeline per camera — with the live telemetry plane wired:
//! delivery latency and SLO burn rate accumulate while sessions
//! stream, a `ScrapeClient` pulls the Prometheus page off the same
//! event loop, and the run ends with the per-tenant `RunReport`
//! (SLO section included) a fleet operator would export.
//!
//! Run with: `cargo run --release --example fleet_ingest`

use rhythmic_pixel_regions::core::{EncodedFrame, RegionLabel, RegionRuntime};
use rhythmic_pixel_regions::frame::{GrayFrame, Plane};
use rhythmic_pixel_regions::serve::{
    session_script, AdmitCode, ManualClock, ScrapeClient, ScriptedClient, Server, SloConfig,
    TenantBridge, TenantConfig,
};
use rhythmic_pixel_regions::stream::{
    run_stream, BackpressureMode, DecodeCapture, Feedback, StreamConfig, TaskStage,
};
use rhythmic_pixel_regions::trace::{RunReport, REPORT_SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

const W: u32 = 96;
const H: u32 = 64;
const FRAMES_PER_CAM: u64 = 6;

/// One camera's capture: a textured scene with a region of interest
/// drifting across it, encoded rhythmically and sealed in a container.
fn record_camera(camera: u64) -> Vec<u8> {
    let mut runtime = RegionRuntime::new(W, H);
    let frames: Vec<EncodedFrame> = (0..FRAMES_PER_CAM)
        .map(|t| {
            let x = ((8 * camera + 4 * t) % u64::from(W - 24)) as u32;
            runtime
                .set_region_labels(vec![RegionLabel::new(x, 16, 24, 24, 1, 1)])
                .expect("labels fit the frame");
            let frame = Plane::from_fn(W, H, |px, py| {
                ((px * 3) ^ (py * 7) ^ (camera as u32 * 31) ^ (t as u32 * 13)) as u8
            });
            runtime.encode_frame(&frame)
        })
        .collect();
    rhythmic_pixel_regions::wire::write_container(&frames).expect("container writes")
}

/// A toy per-camera analytics task: tallies decoded frames and their
/// mean brightness.
#[derive(Default)]
struct BrightnessTally {
    frames: u64,
    luma_sum: u64,
}

impl TaskStage for BrightnessTally {
    type Input = GrayFrame;
    type Output = (u64, f64);

    fn consume(&mut self, _frame_idx: u64, frame: GrayFrame) -> Feedback {
        self.frames += 1;
        self.luma_sum += frame.as_slice().iter().map(|&p| u64::from(p)).sum::<u64>();
        Feedback::empty()
    }

    fn finish(self) -> (u64, f64) {
        let pixels = (self.frames * u64::from(W) * u64::from(H)).max(1);
        (self.frames, self.luma_sum as f64 / pixels as f64)
    }
}

fn main() {
    // 1. The fleet records offline: four cameras per tenant, each
    //    capture sealed into its own `.rpr` container.
    let tenants = ["fleet-north", "fleet-south"];
    let recordings: Vec<(usize, u64, Vec<u8>)> = (0..8u64)
        .map(|cam| ((cam % 2) as usize, cam, record_camera(cam)))
        .collect();
    println!(
        "recorded 8 cameras, {} container bytes total",
        recordings.iter().map(|(_, _, b)| b.len()).sum::<usize>()
    );

    // 2. One ingestion server, two tenants with different contracts:
    //    north is unlimited; south has a frame budget smaller than its
    //    cameras offer, so the quota throttle is visible in the report.
    //    Both tenants carry a delivery SLO so the burn rate shows up
    //    live and in the final report.
    let clock = Arc::new(ManualClock::new());
    let mut server = Server::new(clock.clone()).with_read_quantum(2048);
    let slo = SloConfig {
        target_delivery_us: 50_000,
        budget_fraction: 0.5,
        window_micros: 1_000_000,
        min_events: 8,
    };
    server.add_tenant(
        tenants[0],
        TenantConfig::unlimited()
            .with_qos(BackpressureMode::Block, 32)
            .with_slo(slo),
    );
    server.add_tenant(
        tenants[1],
        TenantConfig::unlimited()
            .with_frame_quota(0, 3 * FRAMES_PER_CAM)
            .with_qos(BackpressureMode::Block, 32)
            .with_slo(slo),
    );

    // 3. Behind each tenant queue, a bridge demuxes deliveries into a
    //    per-camera decode pipeline feeding the analytics task.
    // (tenant index, camera, frames decoded, mean brightness)
    type CameraResult = (usize, u64, u64, f64);
    let results: Arc<Mutex<Vec<CameraResult>>> = Arc::new(Mutex::new(Vec::new()));
    let workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
        Arc::new(Mutex::new(Vec::new()));
    let bridges: Vec<TenantBridge> = tenants
        .iter()
        .enumerate()
        .map(|(ti, t)| {
            let queue = server.tenant_queue(t).expect("tenant registered");
            let live = server.live().get_by_name(t).expect("tenant live block");
            let results = Arc::clone(&results);
            let workers = Arc::clone(&workers);
            TenantBridge::start_with_live(
                queue,
                16,
                BackpressureMode::Block,
                live,
                clock.clone(),
                move |camera, source| {
                    let results = Arc::clone(&results);
                    workers.lock().expect("workers lock").push(std::thread::spawn(move || {
                        let out = run_stream(
                            camera as usize,
                            source,
                            DecodeCapture::new(W, H),
                            BrightnessTally::default(),
                            StreamConfig::blocking(),
                        );
                        let (frames, brightness) = out.task;
                        results
                            .lock()
                            .expect("results lock")
                            .push((ti, camera, frames, brightness));
                    }));
                },
            )
        })
        .collect();

    // 4. Replay: every camera connects and streams its container, the
    //    event loop multiplexing all eight sessions.
    let listener = server.listener();
    let mut cams: Vec<ScriptedClient> = recordings
        .iter()
        .map(|(ti, cam, bytes)| {
            ScriptedClient::connect(
                &listener,
                1 << 14,
                session_script(tenants[*ti], *cam, bytes, 512, true),
            )
        })
        .collect();
    for _ in 0..100_000 {
        for c in cams.iter_mut() {
            c.flush();
        }
        server.step();
        if server.is_idle() && cams.iter_mut().all(|c| c.done()) {
            break;
        }
    }
    assert!(server.is_idle(), "ingest failed to drain");
    for c in cams.iter_mut() {
        assert_eq!(c.admit_code(), Some(AdmitCode::Accepted));
    }

    // 5. A monitoring scrape over the same event loop: MSG_METRICS in,
    //    Prometheus text page out — what a collector would poll while
    //    the fleet streams.
    let mut scrape = ScrapeClient::connect(&listener, 1 << 14, tenants[0], u64::MAX);
    let mut page = None;
    for _ in 0..10_000 {
        if let Some(p) = scrape.poll() {
            page = Some(p.to_string());
            break;
        }
        server.step();
    }
    let page = page.expect("metrics scrape completes");
    println!("prometheus scrape ({} bytes), delivery + slo families:", page.len());
    for line in page.lines().filter(|l| {
        l.starts_with("rpr_frames_delivered_total") || l.starts_with("rpr_slo_burn_rate")
    }) {
        println!("  {line}");
    }

    server.close_tenant_queues();
    let routed: u64 = bridges.into_iter().map(TenantBridge::join).sum();
    for w in workers.lock().expect("workers lock").drain(..) {
        w.join().expect("camera pipeline");
    }
    println!("server drained: {routed} frames routed to per-camera pipelines");

    // 6. The per-tenant RunReport: admission, delivery, quota, drop,
    //    and SLO burn-rate accounting straight off the server's books.
    let sections = server.tenant_sections();
    let delivered: u64 = sections.iter().map(|s| s.frames_delivered).sum();
    let mut accuracy = BTreeMap::new();
    accuracy.insert("delivered_fraction".to_string(), 1.0);
    let report = RunReport {
        schema_version: REPORT_SCHEMA_VERSION,
        task: "fleet_ingest".to_string(),
        dataset: format!("8 cameras x {FRAMES_PER_CAM} frames, 2 tenants"),
        baseline: "serve".to_string(),
        frames: delivered,
        accuracy,
        tenants: sections,
        slos: Some(server.slo_sections()),
        ..RunReport::default()
    };
    print!("{}", report.render_text());

    let mut results = results.lock().expect("results lock");
    results.sort_by_key(|&(_, cam, _, _)| cam);
    for (ti, cam, frames, brightness) in results.iter() {
        println!(
            "  camera {cam} ({}): {frames} frames decoded, mean luma {brightness:.1}",
            tenants[*ti]
        );
    }
}

//! Motion-compensated prediction on a panning multi-camera rig.
//!
//! A three-camera driving-style sweep pans over one shared world at
//! 7 px/frame — fast enough that a reactive t−1 region policy trails
//! every tracked object by a full motion step. Each rig runs twice,
//! once under the reactive `CycleFeature` policy and once under
//! `CyclePredictive` (ego-motion fit + forward projection), and the
//! example prints the per-rig RunReport delta: mean region IoU against
//! ground-truth tracks and the high-resolution pixel budget.
//!
//! Run with: `cargo run --release --example moving_camera`

use rhythmic_pixel_regions::trace::{diff_reports, DiffThresholds, RunReport};
use rhythmic_pixel_regions::workloads::datasets::VideoDataset;
use rhythmic_pixel_regions::workloads::{
    run_tracking, MovingCameraDataset, PolicyKind, TrackingConfig, TrackingResult,
};

/// Wraps one tracking run as a RunReport so the two policies can be
/// compared with the same diff tooling CI uses.
fn report_for(name: &str, policy: &str, res: &TrackingResult) -> RunReport {
    RunReport {
        task: "moving-camera-tracking".to_string(),
        dataset: name.to_string(),
        baseline: policy.to_string(),
        frames: res.frames_scored,
        prediction: Some(res.prediction_section()),
        ..RunReport::default()
    }
}

fn main() {
    let rigs = MovingCameraDataset::driving_sweep(3, 192, 144, 36, 7.0, 11);
    let reactive_cfg = TrackingConfig::default();
    let predictive_cfg =
        TrackingConfig { policy_kind: PolicyKind::CyclePredictive, ..TrackingConfig::default() };

    println!("driving sweep: {} rigs, 7 px/frame pan, cycle 4\n", rigs.len());
    for rig in &rigs {
        let reactive = run_tracking(rig, &reactive_cfg);
        let predictive = run_tracking(rig, &predictive_cfg);

        println!("{}:", rig.name());
        println!(
            "  reactive   IoU {:.4}  hi-res px {:>7}",
            reactive.mean_region_iou, reactive.hi_res_pixels
        );
        println!(
            "  predictive IoU {:.4}  hi-res px {:>7}  (ego inliers {:.2})",
            predictive.mean_region_iou,
            predictive.hi_res_pixels,
            predictive.mean_inlier_fraction
        );

        // The RunReport delta, reactive as the baseline: a negative
        // IoU regression percentage means prediction improved it.
        let base = report_for(rig.name(), "reactive", &reactive);
        let new = report_for(rig.name(), "predictive", &predictive);
        let diff = diff_reports(&base, &new, &DiffThresholds::default());
        for d in diff.deltas.iter().filter(|d| d.name.starts_with("prediction.")) {
            println!(
                "  delta {}: {:.4} -> {:.4} ({:+.1}%)",
                d.name, d.base, d.new, d.pct_change
            );
        }
        println!();
    }
}

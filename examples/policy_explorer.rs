//! Policy explorer: sweeps the cycle length of the paper's example
//! policy (Fig. 7) on the SLAM workload and prints the
//! traffic-vs-accuracy trade-off curve — the knob §4.3.1 identifies as
//! "an important parameter to govern the tradeoff".
//!
//! Run with: `cargo run --release --example policy_explorer`

use rhythmic_pixel_regions::workloads::datasets::VideoDataset;
use rhythmic_pixel_regions::workloads::tasks::run_slam;
use rhythmic_pixel_regions::workloads::{Baseline, SlamDataset};

fn main() {
    let dataset = SlamDataset::new(256, 192, 61, 99);
    println!(
        "cycle-length sweep on visual SLAM ({} frames of {}x{})\n",
        dataset.len(),
        dataset.width(),
        dataset.height()
    );

    let fch = run_slam(&dataset, Baseline::Fch);
    println!(
        "{:<8} {:>9} {:>13} {:>9} {:>14}",
        "policy", "ATE (mm)", "traffic MB/s", "px kept", "vs FCH traffic"
    );
    println!(
        "{:<8} {:>9.2} {:>13.2} {:>8.0}% {:>14}",
        "FCH",
        fch.ate_mm,
        fch.measurements.traffic.throughput_mb_s,
        100.0,
        "-"
    );

    for cl in [1u64, 2, 5, 10, 15, 20] {
        let out = run_slam(&dataset, Baseline::Rp { cycle_length: cl });
        let reduction = 1.0
            - out.measurements.traffic.throughput_mb_s
                / fch.measurements.traffic.throughput_mb_s;
        println!(
            "{:<8} {:>9.2} {:>13.2} {:>8.0}% {:>13.0}%",
            format!("RP{cl}"),
            out.ate_mm,
            out.measurements.traffic.throughput_mb_s,
            out.measurements.mean_captured_fraction() * 100.0,
            reduction * 100.0
        );
    }

    println!(
        "\nLonger cycles discard more pixels but accumulate tracking error\n\
         between full captures (paper: 'as the cycle length increases, system\n\
         efficiency improves, but the errors due to tracking inaccuracy also\n\
         accumulate'). Moderate cycle lengths (CL=10) balance the two."
    );
}

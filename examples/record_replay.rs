//! Record/replay: capture a synthetic sequence through the rhythmic
//! pipeline, spill the encoded stream into an in-memory `.rpr`
//! container, then replay it through a fresh decoder and check the
//! replayed task inputs are byte-identical to what the live run saw.
//!
//! Run with: `cargo run --release --example record_replay`

use rhythmic_pixel_regions::core::Feature;
use rhythmic_pixel_regions::frame::Plane;
use rhythmic_pixel_regions::wire::ContainerReader;
use rhythmic_pixel_regions::workloads::{
    replay_task_inputs, Baseline, Pipeline, PipelineConfig, Recorder,
};

fn main() {
    let (width, height) = (128u32, 96u32);
    let frames = 12u32;

    // 1. A live pipeline with a recorder tapped into its encoded
    //    branch: every EncodedFrame the capture side produces is also
    //    appended to an in-memory `.rpr` container as it streams by.
    let cfg = PipelineConfig::new(width, height, Baseline::Rp { cycle_length: 5 });
    let recorder = Recorder::new().expect("in-memory container");
    let mut pipeline = Pipeline::new(cfg);
    pipeline.set_encoded_tap(recorder.tap());

    // 2. Run a synthetic capture: a textured scene with a feature
    //    cluster drifting across it, which the policy tracks.
    let mut live_inputs = Vec::new();
    for t in 0..frames {
        let frame = Plane::from_fn(width, height, |x, y| {
            let drift = (x + 2 * t) % width;
            ((drift * 5) ^ (y * 9)) as u8
        });
        let fx = 20.0 + 2.0 * f64::from(t);
        let features = vec![
            Feature::new(fx, 30.0, 14.0).with_displacement(2.0),
            Feature::new(fx + 18.0, 52.0, 10.0).with_displacement(1.5),
        ];
        live_inputs.push(pipeline.process_frame(&frame, features, vec![]));
    }
    drop(pipeline);

    // 3. Finish the container: index chunk + trailer appended, every
    //    frame chunk CRC-guarded, frame digests sealed at encode time.
    let (bytes, stats) = recorder.finish().expect("container finalizes");
    println!(
        "recorded {} frames: {} payload bytes, masks {} B raw -> {} B written \
         ({} RLE-coded), container {} B",
        stats.frames,
        stats.payload_bytes,
        stats.raw_mask_bytes,
        stats.mask_bytes_written,
        stats.rle_frames,
        stats.container_bytes,
    );

    // 4. Zero-copy inspection: views borrow the payload straight from
    //    the container bytes, no per-frame allocation.
    let reader = ContainerReader::open(&bytes).expect("container opens");
    let borrowed = (0..reader.len())
        .filter(|&i| reader.view(i).expect("view parses").mask_is_borrowed())
        .count();
    println!(
        "container indexes {} frames ({} with zero-copy raw masks)",
        reader.len(),
        borrowed,
    );

    // 5. Replay through a fresh decoder. The decoder's output is a
    //    pure function of the encoded stream, so the replayed task
    //    inputs must equal the live run's — byte for byte.
    let replayed = replay_task_inputs(&bytes).expect("container replays");
    assert_eq!(replayed.len(), live_inputs.len());
    for (t, (live, back)) in live_inputs.iter().zip(&replayed).enumerate() {
        assert_eq!(live, back, "frame {t} diverged on replay");
    }
    println!(
        "replayed {} task inputs byte-identical to the live run — \
         the archive is a deterministic fixture",
        replayed.len(),
    );
}

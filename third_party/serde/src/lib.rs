//! Offline drop-in subset of `serde`.
//!
//! The real crates.io `serde` is unreachable in air-gapped builds, so
//! this workspace vendors a minimal value-model implementation with the
//! same surface the repo actually uses: `#[derive(Serialize,
//! Deserialize)]` plus the trait bounds `serde_json` needs. Types
//! serialize into a JSON-shaped [`Value`] tree; `serde_json` renders
//! and parses that tree.
//!
//! The wire format matches serde's external enum tagging (unit variants
//! as strings, data variants as single-key maps), so JSON produced here
//! stays compatible if the real crates are restored later.

#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped data tree: the intermediate representation every
/// serializable type converts to and from.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative numbers).
    I64(i64),
    /// Unsigned integer (non-negative numbers).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order (stable field order in output).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries when this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements when this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string when this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A deserialization failure: what was expected and what was found.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError { msg: msg.to_string() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Helpers the derive macros call; not part of the public contract.
pub mod de {
    use super::{DeError, Deserialize, Value};

    /// Looks up `name` in a struct map and deserializes it. A missing
    /// field deserializes from `Null`, so nullable targets (`Option`)
    /// tolerate documents written before the field existed; all other
    /// types keep reporting the field as missing.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the field is missing (and the target
    /// rejects `Null`) or mismatched.
    pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, DeError> {
        match map.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => T::from_value(&Value::Null)
                .map_err(|_| DeError::custom(format!("missing field `{name}`"))),
        }
    }

    /// Fetches tuple element `idx` from a sequence and deserializes it.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the element is missing or mismatched.
    pub fn element<T: Deserialize>(seq: &[Value], idx: usize) -> Result<T, DeError> {
        match seq.get(idx) {
            Some(v) => T::from_value(v),
            None => Err(DeError::custom(format!("missing tuple element {idx}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(DeError::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError::custom("unsigned value too large"))?,
                    _ => return Err(DeError::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v)?
            .try_into()
            .map_err(|_| DeError::custom("out of range for usize"))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        i64::from_value(v)?
            .try_into()
            .map_err(|_| DeError::custom("out of range for isize"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            // JSON has no NaN/Infinity literal; serde_json writes null.
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::custom("expected tuple array"))?;
                Ok(($(de::element::<$name>(seq, $idx)?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::custom("expected null")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 0.5f64);
        assert_eq!(BTreeMap::<String, f64>::from_value(&m.to_value()).unwrap(), m);
        let t = (3u32, 4.5f64);
        assert_eq!(<(u32, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn nan_serializes_to_null_and_back() {
        let v = f64::NAN.to_value();
        assert!(matches!(v, Value::F64(f) if f.is_nan()));
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }
}

//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Implemented directly on `proc_macro` token trees (the registry that
//! would provide `syn`/`quote` is unreachable offline). Supports the
//! shapes this workspace derives on: named-field structs, tuple
//! structs, unit structs, and enums with unit / named-field / tuple
//! variants, including generic type parameters.

#![deny(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored value-model trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the vendored value-model trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- model

struct Item {
    name: String,
    /// Type-parameter names (lifetimes and const params excluded).
    type_params: Vec<String>,
    /// Every generic parameter as it must appear in the impl's type
    /// argument list (type and const param names, lifetimes excluded —
    /// none of the derived types carry lifetimes).
    all_params: Vec<String>,
    kind: Kind,
}

enum Kind {
    Struct(Vec<String>),
    TupleStruct(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

// ---------------------------------------------------------------- parse

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let (type_params, all_params) = parse_generics(&tokens, &mut i);

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::Unit,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("enum without a body"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    };

    Item { name, type_params, all_params, kind }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => return,
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `<...>` after the type name, returning the type-parameter
/// names and the full parameter list for the impl's type arguments.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> (Vec<String>, Vec<String>) {
    let mut type_params = Vec::new();
    let mut all_params = Vec::new();
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return (type_params, all_params);
    }
    *i += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    let mut in_lifetime = false;
    let mut pending_const = false;
    while depth > 0 {
        let tok = tokens.get(*i).expect("generics are closed");
        *i += 1;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                at_param_start = true;
                in_lifetime = false;
                pending_const = false;
            }
            TokenTree::Punct(p) if p.as_char() == '\'' && at_param_start => {
                // A lifetime parameter: record nothing (derived types
                // in this workspace are lifetime-free).
                in_lifetime = true;
            }
            TokenTree::Ident(id) if at_param_start && !in_lifetime => {
                let s = id.to_string();
                if s == "const" {
                    pending_const = true;
                } else {
                    if !pending_const {
                        type_params.push(s.clone());
                    }
                    all_params.push(s);
                    at_param_start = false;
                }
            }
            _ => {
                if at_param_start && in_lifetime {
                    // The lifetime's identifier.
                    at_param_start = false;
                }
            }
        }
    }
    (type_params, all_params)
}

/// Parses `name: Type, ...` field lists (attributes and visibility are
/// skipped; types may contain arbitrary angle-bracket nesting).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
    }
    fields
}

/// Advances past a type, stopping after the `,` that terminates it (or
/// at end of stream).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    let mut saw_tokens_since_comma = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separator.
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// -------------------------------------------------------------- codegen

/// `impl<...> Trait for Name<...>` header with per-type-param bounds.
fn impl_header(item: &Item, trait_path: &str) -> String {
    let bounds: Vec<String> =
        item.type_params.iter().map(|p| format!("{p}: {trait_path}")).collect();
    let generics =
        if bounds.is_empty() { String::new() } else { format!("<{}>", bounds.join(", ")) };
    let args = if item.all_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.all_params.join(", "))
    };
    format!("impl{generics} {trait_path} for {}{args}", item.name)
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let entries: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let ty = &item.name;
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{ty}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{ty}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                 ::serde::Value::Map(::std::vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let entries: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
                            };
                            format!(
                                "{ty}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), {inner})])",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived] {} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(item, "::serde::Serialize")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(__map, {f:?})?"))
                .collect();
            format!(
                "let __map = __v.as_map().ok_or_else(|| \
                 ::serde::DeError::custom(concat!(\"expected map for \", {name:?})))?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> =
                (0..*n).map(|i| format!("::serde::de::element(__seq, {i})?")).collect();
            format!(
                "let __seq = __v.as_seq().ok_or_else(|| \
                 ::serde::DeError::custom(concat!(\"expected sequence for \", {name:?})))?; \
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::Unit => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("{:?} => ::std::result::Result::Ok({name}::{})", v.name, v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::de::field(__inner, {f:?})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let __inner = __payload.as_map().ok_or_else(|| \
                                 ::serde::DeError::custom(concat!(\"expected map for variant \", \
                                 {vn:?})))?; ::std::result::Result::Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            ))
                        }
                        VariantFields::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__payload)?))"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::de::element(__inner, {i})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let __inner = __payload.as_seq().ok_or_else(|| \
                                 ::serde::DeError::custom(concat!(\"expected sequence for \
                                 variant \", {vn:?})))?; \
                                 ::std::result::Result::Ok({name}::{vn}({})) }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit} \
                   _ => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\
                   \"unknown variant `{{}}` of {name}\", __s))) }}, \
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
                   let (__tag, __payload) = (&__m[0].0, &__m[0].1); \
                   match __tag.as_str() {{ {data} \
                   _ => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\
                   \"unknown variant `{{}}` of {name}\", __tag))) }} }}, \
                 _ => ::std::result::Result::Err(::serde::DeError::custom(concat!(\
                 \"expected variant of \", {name:?}))) }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                },
                data = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(", "))
                },
            )
        }
    };
    format!(
        "#[automatically_derived] {} {{ \
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}",
        impl_header(item, "::serde::Deserialize")
    )
}

//! Thread API mirroring `loom::thread` — pass-through to OS threads
//! with a perturbation point at spawn.

pub use std::thread::JoinHandle;

/// Spawns an OS thread, yielding the spawner at a seed-dependent point
/// so the child sometimes runs first.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let handle = std::thread::spawn(move || {
        crate::sched::hint();
        f()
    });
    crate::sched::hint();
    handle
}

/// Explicit scheduling point, as in real loom.
pub fn yield_now() {
    std::thread::yield_now();
}

//! The perturbation source: a deterministic splitmix-style hash over
//! (iteration seed, thread identity, per-thread operation counter)
//! decides, at every synchronization operation, whether to yield the
//! OS scheduler. Different seeds shift which operations yield, walking
//! the model through different interleavings across iterations.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static SEED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static OP_COUNTER: Cell<u64> = const { Cell::new(0) };
}

/// Fixes the perturbation seed for the next model iteration.
pub(crate) fn set_seed(seed: u64) {
    SEED.store(seed, Ordering::Relaxed);
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Called by every stub synchronization operation: maybe yield, based
/// on the current seed, the calling thread, and how many operations
/// this thread has performed.
pub(crate) fn hint() {
    let (n, tkey) = OP_COUNTER.with(|c| {
        let v = c.get().wrapping_add(1);
        c.set(v);
        // The thread-local's address distinguishes live threads.
        (v, c as *const Cell<u64> as u64)
    });
    let h = splitmix(SEED.load(Ordering::Relaxed) ^ splitmix(tkey) ^ n.wrapping_mul(0xA24B_AED4_963E_E407));
    // Yield on ~1 in 4 operations, at seed-dependent positions.
    if h & 0b11 == 0 {
        std::thread::yield_now();
    }
}

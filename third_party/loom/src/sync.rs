//! Synchronization API mirroring `loom::sync` — std primitives with
//! perturbation points injected around every operation.

pub use std::sync::Arc;

use std::sync::LockResult;

/// Re-exported guard type: the stub's [`Mutex`] is `std`'s underneath.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// `std::sync::Mutex` with scheduling hints around acquisition.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the mutex. `const` here (unlike real loom) so `static`
    /// gates build under `--cfg loom`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, with perturbation points before and while
    /// holding it.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        crate::sched::hint();
        let guard = self.0.lock();
        crate::sched::hint();
        guard
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.0.into_inner()
    }
}

/// `std::sync::Condvar` with scheduling hints around wait/notify.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates the condvar (`const`, see [`Mutex::new`]).
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified (spurious wakeups possible, as in std).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        crate::sched::hint();
        let guard = self.0.wait(guard);
        crate::sched::hint();
        guard
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        crate::sched::hint();
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        crate::sched::hint();
        self.0.notify_all();
    }
}

/// Atomic types mirroring `loom::sync::atomic`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    macro_rules! atomic_wrapper {
        ($name:ident, $std:ty, $value:ty) => {
            /// Std-backed atomic with perturbation points around every
            /// access.
            #[derive(Debug, Default)]
            pub struct $name($std);

            impl $name {
                /// Creates the atomic (`const`, unlike real loom, so
                /// statics build under `--cfg loom`).
                pub const fn new(value: $value) -> Self {
                    Self(<$std>::new(value))
                }

                /// Atomic load.
                pub fn load(&self, order: Ordering) -> $value {
                    crate::sched::hint();
                    self.0.load(order)
                }

                /// Atomic store.
                pub fn store(&self, value: $value, order: Ordering) {
                    crate::sched::hint();
                    self.0.store(value, order);
                    crate::sched::hint();
                }

                /// Atomic swap.
                pub fn swap(&self, value: $value, order: Ordering) -> $value {
                    crate::sched::hint();
                    self.0.swap(value, order)
                }
            }
        };
    }

    atomic_wrapper!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    atomic_wrapper!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    atomic_wrapper!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    impl AtomicU64 {
        /// Atomic fetch-add (wrapping).
        pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
            crate::sched::hint();
            let prev = self.0.fetch_add(value, order);
            crate::sched::hint();
            prev
        }
    }

    impl AtomicUsize {
        /// Atomic fetch-add (wrapping).
        pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
            crate::sched::hint();
            let prev = self.0.fetch_add(value, order);
            crate::sched::hint();
            prev
        }
    }
}

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicU64, Ordering};
    use super::*;

    #[test]
    fn model_runs_every_iteration() {
        static RUNS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        crate::model(|| {
            RUNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(RUNS.load(std::sync::atomic::Ordering::Relaxed), crate::iterations());
    }

    #[test]
    fn racing_increments_are_not_lost() {
        crate::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let a = Arc::clone(&n);
            let h = crate::thread::spawn(move || {
                a.fetch_add(1, Ordering::Relaxed);
            });
            n.fetch_add(1, Ordering::Relaxed);
            h.join().unwrap();
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
    }

    #[test]
    fn mutex_and_condvar_hand_off() {
        crate::model(|| {
            let slot = Arc::new((Mutex::new(None), Condvar::new()));
            let s = Arc::clone(&slot);
            let h = crate::thread::spawn(move || {
                let (m, cv) = &*s;
                *m.lock().unwrap() = Some(42u32);
                cv.notify_one();
            });
            let (m, cv) = &*slot;
            let mut guard = m.lock().unwrap();
            while guard.is_none() {
                guard = cv.wait(guard).unwrap();
            }
            assert_eq!(*guard, Some(42));
            drop(guard);
            h.join().unwrap();
        });
    }
}

//! Offline drop-in subset of [loom](https://github.com/tokio-rs/loom).
//!
//! The build environment has no registry access, so this crate
//! implements exactly the loom API surface the workspace's `--cfg
//! loom` tests use — [`model`], [`sync`] primitives, [`thread`] — but
//! with a much weaker exploration strategy than real loom:
//!
//! * Real loom runs the model closure under an *exhaustive* (bounded)
//!   enumeration of thread interleavings on a cooperative scheduler.
//! * This stub runs the closure [`iterations`] times on **real OS
//!   threads**, re-seeding a deterministic per-operation hash each
//!   iteration; every synchronization operation (lock, atomic access,
//!   condvar wait/notify) consults the hash and injects
//!   `std::thread::yield_now()` at varying points, perturbing the
//!   schedule differently every iteration.
//!
//! That is a stress/perturbation runner, not a model checker: it can
//! only ever *find* interleaving bugs, never prove their absence. The
//! API is kept source-compatible with real loom (`loom::model`,
//! `loom::sync::{Arc, Mutex, Condvar, atomic}`, `loom::thread`) so
//! that swapping in the real crate is a one-line Cargo change when a
//! registry is available. One deliberate divergence: the atomic and
//! sync constructors here are `const fn` (they wrap `std`), so
//! `static` gates build under `--cfg loom`; real loom requires
//! `loom::lazy_static` for statics.
//!
//! Iteration count defaults to 64 and can be raised with the
//! `LOOM_ITERATIONS` environment variable.

mod sched;

pub mod sync;
pub mod thread;

use std::panic::AssertUnwindSafe;

/// Number of perturbed schedules one [`model`] call explores.
pub fn iterations() -> u64 {
    std::env::var("LOOM_ITERATIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Runs `f` once per perturbed schedule. Panics propagate, prefixed
/// with the perturbation seed that exposed the failure; seeding is
/// deterministic per iteration index, though replay still depends on
/// the OS scheduler honouring the injected yields the same way.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for seed in 0..iterations() {
        sched::set_seed(seed);
        if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(&f)) {
            eprintln!("loom (stub): model failed under perturbation seed {seed}");
            std::panic::resume_unwind(payload);
        }
    }
}

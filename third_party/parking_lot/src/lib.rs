//! Offline drop-in subset of `parking_lot`: [`Mutex`], [`RwLock`] and
//! [`Condvar`] with parking_lot's poison-free API, implemented over
//! `std::sync`. Poisoned std locks are recovered transparently, which
//! is exactly parking_lot's observable behavior (locks are never
//! poisoned there in the first place).

#![deny(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly
/// (no `Result`, no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { guard: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily move
/// the underlying std guard out while re-parking; it is `Some` at every
/// point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock with parking_lot's unpoisoned API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { guard: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { guard: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Outcome of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose `wait` re-parks a [`MutexGuard`] in
/// place (parking_lot style: `wait(&mut guard)`).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Atomically releases the guard's mutex and blocks until
    /// notified; the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present outside Condvar::wait");
        let reacquired =
            self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(reacquired);
    }

    /// [`Condvar::wait`] with an upper bound on the blocking time.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard present outside Condvar::wait");
        let (reacquired, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(reacquired);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = RwLock::new(3);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 6);
        drop((r1, r2));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        drop(ready);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}

//! Offline drop-in subset of `rand` 0.8.
//!
//! Provides the trait surface this workspace uses — [`RngCore`],
//! [`SeedableRng`], and [`Rng`] with `gen_range`/`gen_bool` — without
//! touching the unreachable registry. Sampling follows the standard
//! constructions (53-bit mantissa floats, widening-multiply integer
//! ranges), so streams are statistically equivalent to upstream even
//! though they are not bit-identical to it. All experiment numbers in
//! this repo are produced and regression-tested against *these*
//! generators, which keeps every dataset deterministic.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same
    /// construction upstream rand uses) and builds the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the seed-expansion generator (public so sibling crates
/// can reuse it for lightweight seeding).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from an arbitrary state word.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        sample_unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, full-width integers, fair `bool`).
    #[allow(clippy::misnamed_getters)]
    fn r#gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `[0, 1)` double from the high 53 bits of a random word.
fn sample_unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly over their whole domain via `gen()`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        sample_unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $via as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => u64,
                   i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => u64);

/// Types with a uniform sampler over arbitrary sub-ranges. Mirrors
/// upstream rand's trait of the same name; having a *single* generic
/// [`SampleRange`] impl keyed on this trait is what lets unsuffixed
/// literals like `0.3..1.0` infer their element type.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a value in `[low, high)` (or `[low, high]` when
    /// `inclusive`) from `rng`. Callers guarantee non-emptiness.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R, low: $t, high: $t, inclusive: bool,
            ) -> $t {
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                // Widening multiply maps a 64-bit word onto [0, span).
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R, low: $t, high: $t, inclusive: bool,
            ) -> $t {
                let unit = sample_unit_f64(rng.next_u64());
                let v = (low as f64 + (high as f64 - low as f64) * unit) as $t;
                // Guard the open upper bound against rounding.
                if !inclusive && v >= high { low } else { v }
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range called with empty range");
        T::sample_uniform(rng, start, end, true)
    }
}

/// Commonly used generators (upstream `rand::rngs`).
pub mod rngs {
    pub use crate::SplitMix64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&f));
            let i = rng.gen_range(-9i32..=9);
            assert!((-9..=9).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SplitMix64::new(11);
        let mean =
            (0..4000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::new(13);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 4000.0 - 0.25).abs() < 0.05);
    }
}

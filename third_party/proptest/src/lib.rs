//! Offline drop-in subset of `proptest`.
//!
//! Supports the surface this workspace uses: the [`proptest!`] macro
//! with `#![proptest_config(...)]`, range/tuple/`Just`/`prop_map`/
//! `prop_flat_map` strategies, `collection::vec`, and the
//! `prop_assert*`/`prop_assume!` macros. Cases are generated from a
//! deterministic per-test RNG (seeded from the test's name), so runs
//! are reproducible. Failing cases are reported by panic; there is no
//! shrinking — the panic message carries the generated inputs' debug
//! formatting only when the assertion macros include them.

#![deny(missing_docs)]

/// Test-runner configuration and RNG.
pub mod test_runner {
    use rand::{RngCore, SplitMix64};

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The deterministic RNG driving strategy generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SplitMix64,
    }

    impl TestRng {
        /// Seeds the RNG from a test identifier so every run of a
        /// given property sees the same case sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xA076_1D64_78BD_642Fu64;
            for b in name.bytes() {
                seed = (seed ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
            }
            TestRng { inner: SplitMix64::new(seed) }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-exclusive bound on generated collection sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property, with optional format args.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Discards the current case when the precondition fails (the case
/// still counts toward the configured total, as a skipped run).
///
/// Expands to `continue` targeting the per-case loop [`proptest!`]
/// generates, so it must sit at the top level of the property body,
/// not inside a nested loop.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            // prop_assume! discards a case via `continue`, targeting
            // this loop.
            #[allow(clippy::redundant_else)]
            for __i in 0..__config.cases {
                let ($($pat,)+) =
                    ($($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+);
                $body
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t1");
        let strat = (1u32..5, -2.0f64..2.0).prop_map(|(a, b)| (a * 2, b));
        for _ in 0..200 {
            let (a, b) = strat.generate(&mut rng);
            assert!((2..10).contains(&a) && a % 2 == 0);
            assert!((-2.0..2.0).contains(&b));
        }
    }

    #[test]
    fn vec_and_flat_map_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("t2");
        let strat = (2u32..6).prop_flat_map(|n| {
            (Just(n), collection::vec(0u32..n, 1..4))
        });
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires patterns, assumes, and asserts together.
        #[test]
        fn macro_smoke((a, b) in (0u32..10, 0u32..10), extra in 1u32..4) {
            prop_assume!(a != b);
            prop_assert!(a < 10 && b < 10);
            prop_assert_ne!(a, b);
            prop_assert_eq!(extra + a, a + extra, "commutes for {a}, {extra}");
        }
    }
}

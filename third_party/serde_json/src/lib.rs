//! Offline drop-in subset of `serde_json` for the vendored serde
//! value model: `to_string`, `to_string_pretty`, `from_str`,
//! `to_value`, and the [`json!`] literal macro.
//!
//! Output matches serde_json's conventions where it matters: object
//! fields keep declaration order, non-finite floats render as `null`,
//! and strings are escaped per RFC 8259.

#![deny(missing_docs)]

use serde::{Deserialize, Serialize};
pub use serde::Value;
use std::fmt;

/// A serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e)
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails for the vendored value model; the `Result` keeps the
/// real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as an indented JSON string.
///
/// # Errors
///
/// Never fails for the vendored value model; the `Result` keeps the
/// real serde_json signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into the [`Value`] tree.
///
/// # Errors
///
/// Never fails for the vendored value model; the `Result` keeps the
/// real serde_json signature.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Builds a [`Value`] from a JSON-shaped literal.
///
/// Supported subset of serde_json's macro: `null`, one object literal
/// with string-literal keys, and otherwise any expression implementing
/// `Serialize` (evaluated via [`to_value`]). Nest objects through
/// inner `json!` calls — a nested `{ ... }` literal is not parsed.
///
/// ```
/// let v = serde_json::json!({
///     "name": "stream-0",
///     "fps": 30.5,
///     "queues": vec![1, 2],
///     "inner": serde_json::json!({ "depth": 4 }),
/// });
/// assert!(serde_json::to_string(&v).unwrap().contains("\"fps\":30.5"));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $( (($key).to_string(), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

/// Parses a JSON string into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// -------------------------------------------------------------- writing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep floats recognizably floats, as serde_json does.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_block(out, indent, level, '[', ']', items.len(), |out, i| {
            write_value(&items[i], out, indent, level + 1);
        }),
        Value::Map(entries) => write_block(out, indent, level, '{', '}', entries.len(), |out, i| {
            write_string(&entries[i].0, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(&entries[i].1, out, indent, level + 1);
        }),
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (level + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * level));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!("unexpected input {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(Error::new)
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(Error::new)
        } else {
            match text.parse::<u64>() {
                Ok(n) => Ok(Value::U64(n)),
                Err(_) => text.parse::<f64>().map(Value::F64).map_err(Error::new),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trips_scalars_and_collections() {
        let mut m = BTreeMap::new();
        m.insert("ate_mm".to_string(), 43.5f64);
        m.insert("map".to_string(), 0.9f64);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"ate_mm":43.5,"map":0.9}"#);
        let back: BTreeMap<String, f64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32, 2];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\"quoted\"\\".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn nan_becomes_null() {
        let json = to_string(&f64::NAN).unwrap();
        assert_eq!(json, "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let back: f64 = from_str("1.0").unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("not json").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
    }
}

//! Offline drop-in subset of `criterion`.
//!
//! Implements the group-based benchmarking API this workspace uses —
//! [`Criterion::benchmark_group`], chained `sample_size`/
//! `warm_up_time`/`measurement_time`/`throughput`, `bench_function`,
//! `bench_with_input`, [`black_box`], and the `criterion_group!`/
//! `criterion_main!` macros — with real `Instant`-based timing. Each
//! benchmark prints mean/min/max time per iteration (plus derived
//! throughput when configured) instead of criterion's statistical
//! report; there is no HTML output or regression detection.

#![deny(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timing callback handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count that
    /// fills the measurement window across the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up doubles as calibration: count how many iterations
        // fit in the warm-up window.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let total_iters =
            (self.measurement.as_secs_f64() / per_iter.max(1e-9)).max(1.0) as u64;
        self.iters_per_sample = (total_iters / self.sample_count as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples recorded");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        let fmt_t = |s: f64| {
            if s >= 1.0 {
                format!("{s:.3} s")
            } else if s >= 1e-3 {
                format!("{:.3} ms", s * 1e3)
            } else if s >= 1e-6 {
                format!("{:.3} µs", s * 1e6)
            } else {
                format!("{:.1} ns", s * 1e9)
            }
        };
        let extra = match throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:.3} Melem/s", n as f64 / mean / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{group}/{id}: time [{} {} {}]{extra}",
            fmt_t(min),
            fmt_t(mean),
            fmt_t(max)
        );
    }
}

/// A named collection of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Duration of the warm-up/calibration phase.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total duration the timed samples should span.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Enables derived throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id, self.throughput);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; reporting happens
    /// per-benchmark).
    pub fn finish(&mut self) {}
}

/// Benchmark driver; one per `criterion_group!` run.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group with default timing settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Bundles benchmark functions into a runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main()` running the named benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("test_group");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_api_runs() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("decode", 32).to_string(), "decode/32");
        assert_eq!(BenchmarkId::from_parameter("vga").to_string(), "vga");
    }
}

//! Offline drop-in subset of `bytes`: [`Bytes`], a cheaply clonable
//! immutable byte buffer backed by `Arc<[u8]>`. With the `serde`
//! feature it serializes as a byte sequence, matching the upstream
//! crate's serde integration.

#![deny(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer; clones share storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a static/borrowed slice into a buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a plain slice.
    // Mirrors the real crate's inherent method; the `AsRef` impl below
    // covers generic callers.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        *self.data == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.data == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(self.data.iter().map(|&b| serde::Value::U64(u64::from(b))).collect())
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Bytes {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let bytes: Vec<u8> = Vec::from_value(v)?;
        Ok(Bytes::from(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_and_compare_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a[1], 2);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from(vec![b'h', b'i', 0]);
        assert_eq!(format!("{b:?}"), "b\"hi\\x00\"");
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        use serde::{Deserialize, Serialize};
        let b = Bytes::from(vec![7, 8, 9]);
        let v = b.to_value();
        assert_eq!(Bytes::from_value(&v).unwrap(), b);
    }
}

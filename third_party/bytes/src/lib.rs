//! Offline drop-in subset of `bytes`: [`Bytes`], a cheaply clonable
//! immutable byte buffer backed by `Arc<Vec<u8>>`. With the `serde`
//! feature it serializes as a byte sequence, matching the upstream
//! crate's serde integration.
//!
//! Beyond the upstream API subset, this stub exposes the shared
//! backing store directly ([`Bytes::from_shared`] /
//! [`Bytes::into_shared`] / [`Bytes::try_into_vec`]) so buffer pools
//! can recycle payload allocations: `From<Vec<u8>>` is zero-copy, and
//! a uniquely-owned buffer can be taken back out without copying.

#![deny(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer; clones share storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes { data: Arc::new(Vec::new()) }
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a static/borrowed slice into a buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::new(data.to_vec()) }
    }

    /// Wraps an already-shared buffer without copying.
    pub fn from_shared(data: Arc<Vec<u8>>) -> Self {
        Bytes { data }
    }

    /// The shared backing store (clone of the `Arc`, no byte copy).
    pub fn into_shared(self) -> Arc<Vec<u8>> {
        self.data
    }

    /// Recovers the backing `Vec` when this handle is the only owner;
    /// returns `self` unchanged otherwise. The zero-copy exit path a
    /// buffer pool uses to recycle payload allocations.
    pub fn try_into_vec(self) -> Result<Vec<u8>, Bytes> {
        match Arc::try_unwrap(self.data) {
            Ok(v) => Ok(v),
            Err(data) => Err(Bytes { data }),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a plain slice.
    // Mirrors the real crate's inherent method; the `AsRef` impl below
    // covers generic callers.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(self.data.iter().map(|&b| serde::Value::U64(u64::from(b))).collect())
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Bytes {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let bytes: Vec<u8> = Vec::from_value(v)?;
        Ok(Bytes::from(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_and_compare_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a[1], 2);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from(vec![b'h', b'i', 0]);
        assert_eq!(format!("{b:?}"), "b\"hi\\x00\"");
    }

    #[test]
    fn from_vec_is_zero_copy() {
        let v = vec![1u8, 2, 3];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), ptr, "From<Vec<u8>> must not copy");
        let back = b.try_into_vec().expect("sole owner recovers the Vec");
        assert_eq!(back.as_ptr(), ptr, "try_into_vec must not copy");
    }

    #[test]
    fn try_into_vec_refuses_shared_buffers() {
        let a = Bytes::from(vec![9u8; 4]);
        let b = a.clone();
        let a = a.try_into_vec().expect_err("shared buffer must come back");
        assert_eq!(a, b);
    }

    #[test]
    fn shared_roundtrip() {
        let arc = Arc::new(vec![5u8, 6]);
        let b = Bytes::from_shared(Arc::clone(&arc));
        assert_eq!(&b[..], &[5, 6]);
        let back = b.into_shared();
        assert!(Arc::ptr_eq(&arc, &back));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        use serde::{Deserialize, Serialize};
        let b = Bytes::from(vec![7, 8, 9]);
        let v = b.to_value();
        assert_eq!(Bytes::from_value(&v).unwrap(), b);
    }
}

//! Offline drop-in subset of `rand_chacha`: [`ChaCha8Rng`] built on the
//! genuine ChaCha block function (RFC 7539 quarter-rounds, 8 rounds),
//! seeded from 32 bytes, behind the vendored `rand` traits.
//!
//! The keystream is a faithful ChaCha8 implementation but is not
//! guaranteed word-for-word identical to upstream `rand_chacha`'s
//! stream ordering; every deterministic dataset in this repo is
//! generated and tested against this implementation.

#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8-based deterministic random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key/nonce state words 4..=15 of the initial block matrix.
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, buffer: [0; 16], index: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should differ");
    }

    #[test]
    fn output_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mean = (0..4000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        let ones: u32 = (0..256).map(|_| rng.next_u32().count_ones()).sum();
        let frac = f64::from(ones) / (256.0 * 32.0);
        assert!((frac - 0.5).abs() < 0.05, "bit balance {frac}");
    }
}

//! Offline drop-in subset of `crossbeam`: the [`channel`] module with
//! `bounded`/`unbounded` constructors, built on `std::sync::mpsc`.
//!
//! The subset is MPSC (senders clone, one receiver), which matches
//! every use in this workspace. Semantics mirror crossbeam's: a
//! `bounded(n)` sender blocks once `n` messages are queued, and `recv`
//! errors only after every sender is dropped and the queue is drained.

#![deny(missing_docs)]

/// Multi-producer channels with optional capacity bounds.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone;
    /// carries the unsent message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone
    /// and the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty but senders remain.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
                Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel. Clonable; dropping the last
    /// sender disconnects the channel.
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { tx: self.tx.clone() }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message when the receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Bounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
                Tx::Unbounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when every sender is gone and the
        /// queue is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Returns a queued message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] once every sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] on timeout or disconnection.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
            self.rx.recv_timeout(timeout).map_err(|_| RecvError)
        }

        /// Iterates over messages until the channel disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.rx.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.rx.into_iter()
        }
    }

    /// Creates a channel holding at most `cap` queued messages;
    /// senders block while it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { tx: Tx::Bounded(tx) }, Receiver { rx })
    }

    /// Creates a channel with unlimited queueing.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { tx: Tx::Unbounded(tx) }, Receiver { rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_reported() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
        let (tx2, rx2) = channel::unbounded::<u8>();
        drop(rx2);
        assert_eq!(tx2.send(9), Err(channel::SendError(9)));
    }

    #[test]
    fn clones_feed_one_receiver() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || tx2.send(7).unwrap());
        tx.send(3).unwrap();
        h.join().unwrap();
        let mut got: Vec<i32> = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, [3, 7]);
    }

    #[test]
    fn bounded_sender_blocks_until_drained() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2).unwrap());
        // The second send can only complete after this recv.
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap();
    }
}

//! Rhythmic pixel regions — a full-system Rust reproduction of
//! *Rhythmic Pixel Regions: Multi-resolution Visual Sensing System
//! towards High-Precision Visual Computing at Low Power* (ASPLOS '21).
//!
//! This umbrella crate re-exports the workspace so examples and
//! downstream users get everything through a single dependency:
//!
//! * [`core`] — the paper's contribution: region labels, the streaming
//!   encoder, the EncMask/per-row-offset metadata, the decoder and
//!   PMMU, the runtime, and the region-selection policies;
//! * [`frame`] — pixel/plane/geometry primitives;
//! * [`sensor`] — synthetic scenes, Bayer sensor model, raster-scan
//!   streaming;
//! * [`isp`] — demosaic/gamma/CCM pipeline at 2 pixels per clock;
//! * [`memsim`] — DRAM traffic, framebuffer footprint, and the Table 6
//!   energy model;
//! * [`hwsim`] — FPGA resource/power/cycle models of the hardware
//!   blocks;
//! * [`vision`] — FAST/ORB features, matching, RANSAC, blobs, metrics;
//! * [`predict`] — motion-compensated region prediction: global
//!   ego-motion estimation over block-matching vectors, per-region
//!   forward projection, and the predictive policy wrapper;
//! * [`workloads`] — the three evaluation workloads, baselines, and
//!   the experiment runner;
//! * [`stream`] — the staged multi-camera executor: per-stage workers,
//!   bounded queues with backpressure, and per-stage telemetry;
//! * [`wire`] — the `.rpr` wire format: a canonical little-endian
//!   bitstream for encoded frames and a chunked, CRC-guarded container
//!   with an O(1)-seek index, powering record/replay of capture
//!   streams;
//! * [`serve`] — the multi-tenant ingestion service: a non-blocking
//!   event loop accepting camera sessions that stream `.rpr`
//!   containers, with per-tenant admission control, token-bucket
//!   quotas, and QoS backpressure;
//! * [`trace`] — cross-layer tracing and the unified [`trace::RunReport`]
//!   metrics schema with its regression-diff tooling.
//!
//! # Quick start
//!
//! ```
//! use rhythmic_pixel_regions::core::{RegionLabel, RegionRuntime, SoftwareDecoder};
//! use rhythmic_pixel_regions::frame::Plane;
//!
//! let mut runtime = RegionRuntime::new(64, 48);
//! runtime.set_region_labels(vec![RegionLabel::new(8, 8, 16, 16, 1, 1)])?;
//!
//! let frame = Plane::from_fn(64, 48, |x, y| (x + y) as u8);
//! let encoded = runtime.encode_frame(&frame);
//! assert_eq!(encoded.pixel_count(), 256);
//!
//! let mut decoder = SoftwareDecoder::new(64, 48);
//! let decoded = decoder.decode(&encoded);
//! assert_eq!(decoded.get(10, 10), frame.get(10, 10));
//! # Ok::<(), rhythmic_pixel_regions::core::CoreError>(())
//! ```

#![deny(missing_docs)]

pub use rpr_core as core;
pub use rpr_frame as frame;
pub use rpr_hwsim as hwsim;
pub use rpr_isp as isp;
pub use rpr_memsim as memsim;
pub use rpr_predict as predict;
pub use rpr_sensor as sensor;
pub use rpr_serve as serve;
pub use rpr_stream as stream;
pub use rpr_trace as trace;
pub use rpr_vision as vision;
pub use rpr_wire as wire;
pub use rpr_workloads as workloads;

//! Property tests for the staged executor's determinism contract: under
//! blocking backpressure, a 1-stream staged run is byte-identical
//! (compared through serialized JSON) to the synchronous reference loop
//! for any dataset seed and baseline.

use proptest::prelude::*;
use rhythmic_pixel_regions::stream::StreamConfig;
use rhythmic_pixel_regions::workloads::tasks::{run_face_with, run_pose_with, run_slam_with};
use rhythmic_pixel_regions::workloads::{
    run_face_staged, run_pose_staged, run_slam_staged, Baseline, FaceDataset, PipelineConfig,
    PoseDataset, SlamDataset,
};

const W: u32 = 96;
const H: u32 = 72;

fn baseline_strategy() -> impl Strategy<Value = Baseline> {
    (0u8..5, 1u64..8).prop_map(|(kind, cycle)| match kind {
        0 => Baseline::Fch,
        1 => Baseline::Fcl { factor: 2 },
        2 => Baseline::MultiRoi { max_regions: 4, cycle_length: cycle },
        3 => Baseline::H264 { quality: rhythmic_pixel_regions::workloads::H264Quality::Medium },
        _ => Baseline::Rp { cycle_length: cycle },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Staged == synchronous for the pose workload.
    #[test]
    fn staged_pose_equals_synchronous(
        baseline in baseline_strategy(),
        seed in 0u64..1000,
        frames in 4usize..9,
    ) {
        let ds = PoseDataset::new(W, H, frames, seed);
        let cfg = PipelineConfig::new(W, H, baseline);
        let sync = run_pose_with(&ds, cfg);
        let (staged, telemetry) = run_pose_staged(&ds, cfg, StreamConfig::blocking());
        prop_assert_eq!(
            serde_json::to_string(&staged).unwrap(),
            serde_json::to_string(&sync).unwrap()
        );
        prop_assert_eq!(telemetry.frames_out, frames as u64);
        prop_assert_eq!(telemetry.frames_dropped, 0);
    }

    /// Staged == synchronous for the face workload.
    #[test]
    fn staged_face_equals_synchronous(
        baseline in baseline_strategy(),
        seed in 0u64..1000,
        frames in 4usize..9,
    ) {
        let ds = FaceDataset::new(W, H, frames, 2, seed);
        let cfg = PipelineConfig::new(W, H, baseline);
        let sync = run_face_with(&ds, cfg);
        let (staged, _) = run_face_staged(&ds, cfg, StreamConfig::blocking());
        prop_assert_eq!(
            serde_json::to_string(&staged).unwrap(),
            serde_json::to_string(&sync).unwrap()
        );
    }

    /// Staged == synchronous for the SLAM workload (the deepest state:
    /// ORB features, RANSAC seeding, and the estimated trajectory all
    /// must line up frame for frame).
    #[test]
    fn staged_slam_equals_synchronous(
        baseline in baseline_strategy(),
        seed in 0u64..1000,
        frames in 4usize..9,
    ) {
        let ds = SlamDataset::new(W, H, frames, seed);
        let cfg = PipelineConfig::new(W, H, baseline);
        let sync = run_slam_with(&ds, cfg);
        let (staged, _) = run_slam_staged(&ds, cfg, StreamConfig::blocking());
        prop_assert_eq!(
            serde_json::to_string(&staged).unwrap(),
            serde_json::to_string(&sync).unwrap()
        );
    }
}

//! Cross-crate property tests: invariants that must hold for any
//! region configuration across the whole capture pipeline.

use proptest::prelude::*;
use rhythmic_pixel_regions::core::{
    Feature, RegionLabel, RegionList, RhythmicEncoder, SoftwareDecoder,
};
use rhythmic_pixel_regions::frame::{GrayFrame, Plane, Rect};
use rhythmic_pixel_regions::hwsim::EncoderPipelineModel;
use rhythmic_pixel_regions::workloads::{Baseline, Pipeline, PipelineConfig};

fn frame(w: u32, h: u32, seed: u32) -> GrayFrame {
    Plane::from_fn(w, h, |x, y| {
        (x.wrapping_mul(23) ^ y.wrapping_mul(41) ^ seed.wrapping_mul(7)) as u8
    })
}

fn labels_strategy(w: u32, h: u32) -> impl Strategy<Value = Vec<RegionLabel>> {
    let region = (0..w, 0..h, 1u32..32, 1u32..32, 1u32..5, 1u32..4)
        .prop_map(|(x, y, rw, rh, st, sk)| RegionLabel::new(x, y, rw, rh, st, sk));
    proptest::collection::vec(region, 0..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Traffic, footprint, and fraction accounting are mutually
    /// consistent for arbitrary rhythmic configurations.
    #[test]
    fn pipeline_accounting_is_consistent(
        labels in labels_strategy(48, 40),
        cycle in 1u64..8,
        frames in 1usize..8,
    ) {
        let mut pipeline = Pipeline::new(PipelineConfig::new(
            48, 40, Baseline::Rp { cycle_length: cycle },
        ));
        let features: Vec<Feature> = labels
            .iter()
            .map(|r| {
                Feature::new(f64::from(r.x), f64::from(r.y), f64::from(r.w.max(1)))
                    .with_displacement(f64::from(r.skip))
            })
            .collect();
        for t in 0..frames {
            let _ = pipeline.process_frame(&frame(48, 40, t as u32), features.clone(), vec![]);
        }
        let m = pipeline.finish();
        prop_assert_eq!(m.captured_fractions.len(), frames);
        for &f in &m.captured_fractions {
            prop_assert!((0.0..=1.0).contains(&f));
        }
        // Write traffic always includes the per-frame metadata floor.
        let meta_floor = (48 * 40 / 4 + 40 * 4) as u64 * frames as u64;
        prop_assert!(m.traffic.write_bytes >= meta_floor);
        // Reads mirror writes in this symmetric consumer model.
        prop_assert_eq!(m.traffic.read_bytes, m.traffic.write_bytes);
        prop_assert!(m.peak_footprint_bytes as f64 >= m.mean_footprint_bytes);
    }

    /// The decoded frame is always bit-exact with the original inside
    /// full-resolution, every-frame regions — through the entire
    /// pipeline, on every frame.
    #[test]
    fn dense_regions_are_always_exact(
        x in 0u32..30, y in 0u32..22, w in 4u32..16, h in 4u32..16,
        frames in 1usize..6,
    ) {
        let regions = RegionList::new_lossy(48, 40, vec![RegionLabel::new(x, y, w, h, 1, 1)]);
        prop_assume!(!regions.is_empty());
        let clamped = regions.labels()[0];
        let mut enc = RhythmicEncoder::new(48, 40);
        let mut dec = SoftwareDecoder::new(48, 40);
        for t in 0..frames {
            let f = frame(48, 40, t as u32 * 13);
            let decoded = dec.decode(&enc.encode(&f, t as u64, &regions));
            for yy in clamped.y..clamped.bottom() {
                for xx in clamped.x..clamped.right() {
                    prop_assert_eq!(decoded.get(xx, yy), f.get(xx, yy));
                }
            }
        }
    }

    /// The cycle model never reports more than the configured
    /// pixels-per-clock and never loses pixels.
    #[test]
    fn pipeline_model_is_sane(labels in labels_strategy(64, 48)) {
        let regions = RegionList::new_lossy(64, 48, labels);
        let model = EncoderPipelineModel::paper_config();
        let report = model.simulate(&frame(64, 48, 5), 0, &regions);
        prop_assert_eq!(report.pixels, 64 * 48);
        prop_assert!(report.effective_ppc <= f64::from(model.pixels_per_clock) + 1e-9);
        prop_assert!(report.cycles >= report.pixels / u64::from(model.pixels_per_clock));
    }

    /// Multi-ROI clustering respects the camera's region limit for any
    /// feature population.
    #[test]
    fn multiroi_respects_region_cap(n_features in 0usize..60) {
        let mut pipeline = Pipeline::new(PipelineConfig::new(
            64, 48, Baseline::MultiRoi { max_regions: 4, cycle_length: 100 },
        ));
        let features: Vec<Feature> = (0..n_features)
            .map(|i| Feature::new(
                ((i * 29) % 60) as f64,
                ((i * 37) % 44) as f64,
                6.0,
            ))
            .collect();
        // Frame 1 is a regional frame (frame 0 would be the full scan).
        let _ = pipeline.process_frame(&frame(64, 48, 0), features.clone(), vec![]);
        let out = pipeline.process_frame(&frame(64, 48, 1), features, vec![]);
        // Decoded output only shows pixels inside at most 4 boxes; we
        // can't see the boxes directly, but the non-black pixel count
        // must be <= 4 * the largest possible clamped box area.
        let lit = out.as_slice().iter().filter(|&&v| v != 0).count();
        prop_assert!(lit <= 64 * 48, "lit {lit}");
    }

    /// Detection boxes fed back as policy input never crash the
    /// pipeline, whatever their geometry.
    #[test]
    fn arbitrary_detections_are_safe(
        bx in 0u32..64, by in 0u32..48, bw in 0u32..80, bh in 0u32..60,
        disp in 0.0f64..20.0,
    ) {
        let mut pipeline = Pipeline::new(PipelineConfig::new(
            64, 48, Baseline::Rp { cycle_length: 3 },
        ));
        for t in 0..4u32 {
            let _ = pipeline.process_frame(
                &frame(64, 48, t),
                vec![],
                vec![(Rect::new(bx, by, bw, bh), disp)],
            );
        }
        let m = pipeline.finish();
        prop_assert_eq!(m.captured_fractions.len(), 4);
    }
}
